//! Closed-loop auto-scaling: DS2 + a placement strategy + the simulator.
//!
//! Drives the experiments of §6.4: the simulation runs under a variable
//! rate schedule; every policy interval DS2 re-evaluates the optimal
//! parallelism from live task metrics, and when the recommendation
//! changes (and the activation period has elapsed since the last action),
//! the job is reconfigured — a new physical graph is expanded and the
//! configured placement strategy computes a new plan.
//!
//! # Durability
//!
//! The loop is a *durable* controller: every decision it takes can be
//! journaled to a write-ahead [`DecisionJournal`], reconfigurations run
//! a two-phase protocol (`Prepare` journaled before the cluster is
//! touched, `Commit` after), and deployments are fenced by a
//! monotonically increasing epoch ([`capsys_sim::EpochFence`]). A
//! controller killed at any decision point — including *between*
//! `Prepare` and `Commit` — is rebuilt by
//! [`ClosedLoop::recover_from_journal`], which re-simulates from t=0,
//! re-applying journaled decisions instead of re-running placement
//! searches, and goes live past the journal tail. The recovered run's
//! trace is byte-identical to the uninterrupted run's. A pre-crash
//! zombie controller that tries to reconfigure after being superseded
//! fails deterministically with [`ControllerError::FencedEpoch`],
//! leaving the cluster untouched.

use std::collections::{HashMap, VecDeque};

use capsys_ds2::{Ds2Config, Ds2Controller};
use capsys_model::{
    Cluster, OperatorId, PhysicalGraph, Placement, PlanDiff, RateSchedule, StateModel, TaskId,
    TaskMove, WorkerId,
};
use capsys_placement::{PlacementContext, PlacementStrategy, SearchDescriptor};
use capsys_queries::Query;
use capsys_sim::{
    sanitize_rates, EpochFence, FaultPlan, KillPoint, MetricPoint, ModelSkew, SimConfig, SimError,
    Simulation, TaskRateStats, TaskTransfer,
};
use capsys_util::json::{Json, ToJson};
use capsys_util::rng::SeedableRng;
use capsys_util::rng::SmallRng;

use crate::guard::{GuardConfig, PlanSnapshot, RollbackEvent, RollbackRequest, SafetyGovernor};
use crate::journal::{DecisionJournal, DecisionRecord, RedeployReason};
use crate::shed::{ShedConfig, ShedController, ShedEvent, ShedRequest};
use crate::recovery::{
    descends, place_with_ladder, place_with_movemin, FailureDetector, LadderRung, RecoveryConfig,
    RecoveryEvent,
};
use crate::ControllerError;

/// One reconfiguration event in a closed-loop run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingEvent {
    /// Simulated time of the action, seconds.
    pub time: f64,
    /// New per-operator parallelism.
    pub parallelism: Vec<usize>,
    /// Total slots after the action.
    pub slots: usize,
}

impl ToJson for ScalingEvent {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("time".into(), Json::Num(self.time)),
            (
                "parallelism".into(),
                Json::Arr(self.parallelism.iter().map(|&p| Json::Num(p as f64)).collect()),
            ),
            ("slots".into(), Json::Num(self.slots as f64)),
        ])
    }
}

/// Incremental-migration policy settings (see
/// [`ClosedLoop::with_incremental_migration`]).
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationConfig {
    /// Absolute cost tolerance of the minimum-movement search: the
    /// migration target may cost at most `epsilon` more (on the cost
    /// vector's maximum component, each dimension in `[0, 1]`) than the
    /// best plan the search found.
    pub epsilon: f64,
    /// Tasks moved per wave. Each wave pauses only its own tasks while
    /// their state drains.
    pub wave_size: usize,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            epsilon: 0.05,
            wave_size: 2,
        }
    }
}

/// One completed state-transfer wave, as recorded in the trace: a wave
/// of an incremental migration, or (wave 0) the full restore of a
/// whole-plan redeploy when state-transfer charging is enabled.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationWave {
    /// Fencing epoch of the reconfiguration the wave belongs to.
    pub epoch: u64,
    /// Zero-based wave index within that reconfiguration.
    pub wave: usize,
    /// Tasks whose state this wave transferred.
    pub tasks_moved: usize,
    /// State bytes transferred.
    pub bytes: u64,
    /// Paused-task seconds charged while the wave drained (one paused
    /// task for one second = 1.0).
    pub downtime: f64,
    /// Simulated time the wave finished draining.
    pub completed_at: f64,
}

impl ToJson for MigrationWave {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("epoch".into(), Json::Num(self.epoch as f64)),
            ("wave".into(), Json::Num(self.wave as f64)),
            ("tasks_moved".into(), Json::Num(self.tasks_moved as f64)),
            ("bytes".into(), Json::Num(self.bytes as f64)),
            ("downtime".into(), Json::Num(self.downtime)),
            ("completed_at".into(), Json::Num(self.completed_at)),
        ])
    }
}

/// What one policy window of [`ClosedLoop::step`] observed — the
/// per-window summary a fleet-level driver consumes to compute
/// cross-shard contention and aggregate goodput without touching the
/// shard's internals.
#[derive(Debug, Clone, PartialEq)]
pub struct StepReport {
    /// Controller time at the end of the window, seconds.
    pub time: f64,
    /// Average admitted source throughput over the window, records/s.
    pub avg_throughput: f64,
    /// Average target rate over the window, records/s.
    pub avg_target: f64,
    /// Average source backpressure over the window, in `[0, 1]`.
    pub avg_backpressure: f64,
    /// Per-worker CPU utilization over the window, in `[0, 1]`
    /// (indexed by this shard's cluster worker ids).
    pub worker_cpu_util: Vec<f64>,
    /// Per-worker heartbeat bits at the end of the window.
    pub worker_alive: Vec<bool>,
}

/// The trace of a closed-loop run.
#[derive(Debug, Clone)]
pub struct ClosedLoopTrace {
    /// All metric samples, in time order across reconfigurations.
    pub points: Vec<MetricPoint>,
    /// Scaling actions DS2 took.
    pub events: Vec<ScalingEvent>,
    /// Completed failure recoveries (empty unless recovery was enabled
    /// via [`ClosedLoop::with_recovery`]).
    pub recovery_events: Vec<RecoveryEvent>,
    /// Governor rollbacks (empty unless the safety governor was enabled
    /// via [`ClosedLoop::with_guard`]).
    pub rollback_events: Vec<RollbackEvent>,
    /// Task-rate samples the metrics-ingestion sanitizer clamped before
    /// they could reach DS2 or the governor.
    pub sanitized_samples: u64,
    /// Completed state-transfer waves (empty unless state-transfer
    /// charging was enabled via [`ClosedLoop::with_state_transfer`]).
    pub migration_waves: Vec<MigrationWave>,
    /// Applied admission-shedding changes (empty unless overload
    /// protection was enabled via [`ClosedLoop::with_shedding`]).
    pub shed_events: Vec<ShedEvent>,
    /// Final per-operator parallelism.
    pub final_parallelism: Vec<usize>,
}

impl ClosedLoopTrace {
    /// Number of scaling actions taken.
    pub fn num_scalings(&self) -> usize {
        self.events.len()
    }

    /// Average throughput over samples in `[from, to)` seconds.
    pub fn avg_throughput(&self, from: f64, to: f64) -> f64 {
        let pts: Vec<&MetricPoint> = self
            .points
            .iter()
            .filter(|p| p.time >= from && p.time < to)
            .collect();
        if pts.is_empty() {
            return 0.0;
        }
        pts.iter().map(|p| p.source_throughput).sum::<f64>() / pts.len() as f64
    }

    /// Average target rate over samples in `[from, to)` seconds.
    pub fn avg_target(&self, from: f64, to: f64) -> f64 {
        let pts: Vec<&MetricPoint> = self
            .points
            .iter()
            .filter(|p| p.time >= from && p.time < to)
            .collect();
        if pts.is_empty() {
            return 0.0;
        }
        pts.iter().map(|p| p.target_rate).sum::<f64>() / pts.len() as f64
    }

    /// Mean time to recover across completed recoveries: detector
    /// declaration to replacement-plan deployment, simulated seconds.
    /// `None` when no recovery completed.
    pub fn mttr(&self) -> Option<f64> {
        if self.recovery_events.is_empty() {
            return None;
        }
        let sum: f64 = self.recovery_events.iter().map(|e| e.time_to_recover).sum();
        Some(sum / self.recovery_events.len() as f64)
    }

    /// Number of governor rollbacks — the oscillation counter a bounded
    /// churn guarantee is stated over.
    pub fn oscillations(&self) -> usize {
        self.rollback_events.len()
    }

    /// Total paused-task seconds across all completed state-transfer
    /// waves (one task paused for one second = 1.0). The per-wave
    /// breakdown is in [`ClosedLoopTrace::migration_waves`].
    pub fn downtime(&self) -> f64 {
        // Fold from +0.0: `Iterator::sum` for f64 starts at -0.0, which
        // leaks a negative zero into reports when no waves ran.
        self.migration_waves
            .iter()
            .fold(0.0, |acc, w| acc + w.downtime)
    }

    /// Total state bytes moved across all completed state-transfer
    /// waves.
    pub fn bytes_moved(&self) -> u64 {
        self.migration_waves.iter().map(|w| w.bytes).sum()
    }

    /// Total simulated seconds spent running regressed canary plans:
    /// for each rollback, deploy of the canary to its restoration.
    pub fn time_in_degraded(&self) -> f64 {
        // Fold from +0.0: `Iterator::sum` for f64 starts at -0.0, which
        // leaks a negative zero into reports when nothing rolled back.
        self.rollback_events
            .iter()
            .fold(0.0, |acc, e| acc + e.degraded_for)
    }

    /// Total simulated seconds spent shedding (shed fraction above
    /// zero), up to `end` (the run's horizon — an engaged shed with no
    /// later release event is charged through to `end`).
    pub fn time_shedding(&self, end: f64) -> f64 {
        let mut total = 0.0;
        let mut engaged_at: Option<f64> = None;
        for ev in &self.shed_events {
            match (engaged_at, ev.to_fraction > 0.0) {
                (None, true) => engaged_at = Some(ev.time),
                (Some(t0), false) => {
                    total += (ev.time - t0).max(0.0);
                    engaged_at = None;
                }
                _ => {}
            }
        }
        if let Some(t0) = engaged_at {
            total += (end - t0).max(0.0);
        }
        total
    }

    /// Integral of the throughput shortfall `max(0, target - throughput)`
    /// over samples in `[from, to)`, in records. Each sample is weighted
    /// by the gap to the previous sample, so the first sample in range
    /// contributes nothing.
    pub fn throughput_loss_area(&self, from: f64, to: f64) -> f64 {
        let mut area = 0.0;
        let mut prev: Option<f64> = None;
        for p in self.points.iter().filter(|p| p.time >= from && p.time < to) {
            if let Some(t) = prev {
                area += (p.target_rate - p.source_throughput).max(0.0) * (p.time - t).max(0.0);
            }
            prev = Some(p.time);
        }
        area
    }

    /// Maximum slots occupied at any point in `[from, to)`.
    pub fn max_slots(&self, from: f64, to: f64) -> usize {
        let mut slots = self
            .events
            .iter()
            .rev()
            .find(|e| e.time < from)
            .map(|e| e.slots)
            .unwrap_or(0);
        let mut max = slots;
        for e in self.events.iter().filter(|e| e.time >= from && e.time < to) {
            slots = e.slots;
            max = max.max(slots);
        }
        max
    }

    /// Serializes the full trace as canonical JSON. Two traces are equal
    /// iff their serializations are byte-identical (`Json` encodes floats
    /// shortest-roundtrip), which is what the crash-recovery sweep diffs
    /// against its golden run.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("points".into(), self.points.to_json()),
            ("events".into(), self.events.to_json()),
            ("recovery_events".into(), self.recovery_events.to_json()),
            ("rollback_events".into(), self.rollback_events.to_json()),
            ("sanitized_samples".into(), Json::Num(self.sanitized_samples as f64)),
            ("migration_waves".into(), self.migration_waves.to_json()),
            ("shed_events".into(), self.shed_events.to_json()),
            (
                "final_parallelism".into(),
                Json::Arr(self.final_parallelism.iter().map(|&p| Json::Num(p as f64)).collect()),
            ),
        ])
    }
}

/// A closed-loop DS2 + placement runner.
pub struct ClosedLoop<'a> {
    query: Query,
    cluster: &'a Cluster,
    strategy: &'a dyn PlacementStrategy,
    ds2: Ds2Controller,
    sim_config: SimConfig,
    schedule: RateSchedule,
    rng: SmallRng,
    // Live state.
    time: f64,
    physical: PhysicalGraph,
    placement: Placement,
    sim: Simulation,
    last_action: f64,
    events: Vec<ScalingEvent>,
    points: Vec<MetricPoint>,
    /// Rolling window of recent task metrics `(window seconds, rates)`;
    /// DS2 decisions average over it so short-window noise and
    /// burst-cycle aliasing do not flip the parallelism ceiling.
    recent: VecDeque<(f64, Vec<TaskRateStats>)>,
    /// Global-time fault schedule; re-installed (shifted) into every
    /// replacement simulation.
    fault_plan: Option<FaultPlan>,
    /// Self-healing state when recovery is enabled.
    recovery: Option<RecoveryState>,
    /// The reconfiguration safety governor, when enabled.
    guard: Option<SafetyGovernor>,
    /// Applied governor rollbacks, for the trace.
    rollback_events: Vec<RollbackEvent>,
    /// The overload admission controller, when enabled.
    shedder: Option<ShedController>,
    /// Applied shed changes, for the trace.
    shed_events: Vec<ShedEvent>,
    /// Deploy-time view of the fault plan's model-skew fault.
    skew: Option<SkewState>,
    /// Task-rate samples clamped by the ingestion sanitizer so far.
    sanitized: u64,
    /// Retained records per key group when state-transfer charging is
    /// on: sizes every task's state for restores and migrations.
    state_transfer: Option<f64>,
    /// Incremental-migration policy, when enabled.
    migration_cfg: Option<MigrationConfig>,
    /// The in-flight incremental migration, if one is running.
    migration: Option<MigrationState>,
    /// Trace bookkeeping for the state-transfer wave draining right now.
    open_wave: Option<OpenWave>,
    /// Completed state-transfer waves, for the trace.
    migration_waves: Vec<MigrationWave>,
    // Durability state.
    /// Epoch of the current deployment (0 = initial). Burned (advanced)
    /// by every `Prepare`, even one whose deployment later fails, so
    /// each `Prepare` in a journal carries a distinct epoch.
    epoch: u64,
    /// The cluster-side fence live deployments must win. Share one fence
    /// between two controllers (see [`ClosedLoop::with_fence`]) to model
    /// a zombie racing its replacement.
    fence: EpochFence,
    /// Every decision taken so far, in order; the journal's in-memory
    /// twin. `log.len()` is the next record's sequence number.
    log: Vec<DecisionRecord>,
    /// Write-ahead sink; `None` runs without durability.
    sink: Option<DecisionJournal>,
    /// Decisions still to be replayed (crash recovery). Empty = live.
    replay: VecDeque<DecisionRecord>,
    /// Time of the last journaled decision at recovery (`-inf` for a
    /// fresh run); disarms wall-clock kill points the crashed run
    /// already survived or died to.
    resume_time: f64,
    /// Injected controller-kill point, taken from the fault plan.
    kill: Option<KillPoint>,
}

/// Live state of the self-healing policy.
struct RecoveryState {
    config: RecoveryConfig,
    detector: FailureDetector,
    pending: Option<PendingRecovery>,
    events: Vec<RecoveryEvent>,
}

/// Controller-side state of a [`ModelSkew`] fault.
struct SkewState {
    fault: ModelSkew,
    /// The `(parallelism, assignment)` live when the skew began. That
    /// plan's behavior has been *measured*, so re-deploying it (a
    /// rollback) is unskewed; anything else deployed after the onset is
    /// a prediction of a stale model and runs skewed. Captured at the
    /// first window boundary past the onset.
    trusted: Option<(Vec<usize>, Vec<usize>)>,
}

/// Live state of an in-flight incremental migration.
struct MigrationState {
    /// The migration's fencing epoch.
    epoch: u64,
    /// The rung reported in the recovery event at commit.
    rung: LadderRung,
    /// Target task-to-worker assignment; becomes `self.placement` at
    /// commit.
    assignment: Vec<usize>,
    /// Every task relocation, in ascending task order; waves are
    /// contiguous `wave_len`-sized chunks of this list.
    moves: Vec<TaskMove>,
    /// Tasks per wave (at least 1).
    wave_len: usize,
    /// Next wave to start — or, while `in_flight`, the wave draining
    /// now.
    next_wave: usize,
    /// Whether a wave is currently draining in the simulator.
    in_flight: bool,
    /// Workers already down when the migration was planned. A *new*
    /// death invalidates the target plan and abandons the migration.
    known_down_at_start: Vec<WorkerId>,
}

/// Trace bookkeeping for the state-transfer wave draining right now.
struct OpenWave {
    epoch: u64,
    wave: usize,
    tasks: usize,
    bytes: u64,
    /// `paused_task_seconds()` of the draining simulation at wave start.
    paused_base: f64,
}

/// A detected failure awaiting a successful re-placement.
struct PendingRecovery {
    /// Workers covered by this recovery, each with the time its
    /// heartbeat first went missing (grows if more die while pending).
    workers: Vec<(WorkerId, f64)>,
    /// Simulated time of the first detection.
    detected_at: f64,
    /// Failed re-placement attempts so far.
    attempts: usize,
    /// Earliest simulated time of the next attempt (exponential backoff).
    next_attempt_at: f64,
}

/// How many policy windows the metrics average spans.
const METRICS_WINDOWS: usize = 12;

/// Slack when matching journaled decision times against the replaying
/// loop's clock. Both sides derive from identical float arithmetic, so
/// this guards only against encoding bugs, not real drift.
const REPLAY_TIME_EPS: f64 = 1e-6;

fn replay_due(record_time: f64, now: f64) -> bool {
    (record_time - now).abs() <= REPLAY_TIME_EPS
}

/// Whether a failed re-placement should be retried with backoff rather
/// than aborting the run. Fencing, injected kills, and journal faults
/// must propagate — retrying them would mask a superseded or dead
/// controller.
fn retryable(e: &ControllerError) -> bool {
    matches!(
        e,
        ControllerError::Placement(_) | ControllerError::Model(_) | ControllerError::Sim(_)
    )
}

/// Time-weighted average of task metrics across windows.
fn average_rates(recent: &VecDeque<(f64, Vec<TaskRateStats>)>) -> Vec<TaskRateStats> {
    let total: f64 = recent.iter().map(|(t, _)| *t).sum();
    let n = recent.back().map(|(_, r)| r.len()).unwrap_or(0);
    let mut avg = vec![TaskRateStats::default(); n];
    if total <= 0.0 {
        return avg;
    }
    for (t, rates) in recent {
        let w = t / total;
        for (a, r) in avg.iter_mut().zip(rates) {
            a.observed_rate += w * r.observed_rate;
            a.true_rate += w * r.true_rate;
            a.observed_output_rate += w * r.observed_output_rate;
            a.true_output_rate += w * r.true_output_rate;
            a.busy_fraction += w * r.busy_fraction;
        }
    }
    avg
}

impl<'a> ClosedLoop<'a> {
    /// Builds a closed loop starting from the query's current parallelism
    /// and an initial plan chosen by `strategy`.
    ///
    /// `schedule` is the aggregate source-rate schedule; it is split
    /// across sources by the query's mix.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        query: &Query,
        cluster: &'a Cluster,
        strategy: &'a dyn PlacementStrategy,
        ds2_config: Ds2Config,
        sim_config: SimConfig,
        schedule: RateSchedule,
        seed: u64,
    ) -> Result<ClosedLoop<'a>, ControllerError> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let physical = query.physical();
        let rate_now = schedule.rate_at(0.0).max(1.0);
        let loads = query
            .load_model_at(&physical, rate_now)
            .map_err(ControllerError::Model)?;
        let ctx = PlacementContext {
            logical: query.logical(),
            physical: &physical,
            cluster,
            loads: &loads,
        };
        let placement = strategy
            .place(&ctx, &mut rng)
            .map_err(ControllerError::Placement)?;
        let sim = Simulation::new(
            query.logical(),
            &physical,
            cluster,
            &placement,
            &query.schedules_from(&schedule),
            sim_config.clone(),
        )
        .map_err(ControllerError::Sim)?;
        // Decision zero: the initial deployment, with the RNG state
        // after the initial search — recovery rebuilds the loop from
        // this record without re-running the search.
        let init = DecisionRecord::Init {
            seed,
            query: query.name().to_string(),
            workers: cluster.num_workers(),
            parallelism: query.logical().parallelism_vector(),
            assignment: placement.assignment().iter().map(|w| w.0).collect(),
            rng: rng.state(),
        };
        Ok(ClosedLoop {
            query: query.clone(),
            cluster,
            strategy,
            ds2: Ds2Controller::new(ds2_config),
            sim_config,
            schedule,
            rng,
            time: 0.0,
            physical,
            placement,
            sim,
            last_action: f64::NEG_INFINITY,
            events: Vec::new(),
            points: Vec::new(),
            recent: VecDeque::new(),
            fault_plan: None,
            recovery: None,
            guard: None,
            rollback_events: Vec::new(),
            shedder: None,
            shed_events: Vec::new(),
            skew: None,
            sanitized: 0,
            state_transfer: None,
            migration_cfg: None,
            migration: None,
            open_wave: None,
            migration_waves: Vec::new(),
            epoch: 0,
            fence: EpochFence::new(),
            log: vec![init],
            sink: None,
            replay: VecDeque::new(),
            resume_time: f64::NEG_INFINITY,
            kill: None,
        })
    }

    /// Rebuilds a controller from a crashed run's journal.
    ///
    /// The caller supplies the same inputs the crashed run was
    /// constructed with — the journal records decisions, not the whole
    /// world. The recovered loop re-simulates from t=0, re-applying
    /// journaled decisions (restoring the journaled RNG state) instead
    /// of re-running placement searches, and goes live past the journal
    /// tail; with the same seeds and fault plan, its full trace is
    /// byte-identical to the uninterrupted run's. An in-doubt
    /// reconfiguration (a `Prepare` at the tail — the crash hit between
    /// `Prepare` and `Commit`) is rolled forward; one the crashed run
    /// abandoned (a `Retry` follows it) is not deployed. Re-attach the
    /// fault plan and recovery config after this call, exactly as for a
    /// fresh loop; a wall-clock kill point at or before the resume time
    /// is automatically disarmed.
    #[allow(clippy::too_many_arguments)]
    pub fn recover_from_journal(
        query: &Query,
        cluster: &'a Cluster,
        strategy: &'a dyn PlacementStrategy,
        ds2_config: Ds2Config,
        sim_config: SimConfig,
        schedule: RateSchedule,
        journal_text: &str,
    ) -> Result<ClosedLoop<'a>, ControllerError> {
        let parsed = crate::journal::parse_journal(journal_text)?;
        let resume_time = parsed.records.last().map(|r| r.time()).unwrap_or(0.0);
        let mut replay: VecDeque<DecisionRecord> = parsed.records.into_iter().collect();
        let Some(init) = replay.pop_front() else {
            return Err(ControllerError::JournalReplay(
                "journal is empty — nothing to recover".into(),
            ));
        };
        let DecisionRecord::Init {
            seed: _,
            query: ref journal_query,
            workers,
            ref parallelism,
            ref assignment,
            rng: rng_state,
        } = init
        else {
            return Err(ControllerError::JournalReplay(
                "journal does not start with an init record".into(),
            ));
        };
        if journal_query != query.name() {
            return Err(ControllerError::JournalReplay(format!(
                "journal was written for query `{journal_query}`, not `{}`",
                query.name()
            )));
        }
        if workers != cluster.num_workers() {
            return Err(ControllerError::JournalReplay(format!(
                "journal expects {workers} workers, cluster has {}",
                cluster.num_workers()
            )));
        }
        if *parallelism != query.logical().parallelism_vector() {
            return Err(ControllerError::JournalReplay(format!(
                "journal starts at parallelism {parallelism:?}, query is at {:?}",
                query.logical().parallelism_vector()
            )));
        }
        let rng = SmallRng::try_from_state(rng_state).ok_or_else(|| {
            ControllerError::JournalReplay("journaled RNG state is invalid (all zero)".into())
        })?;
        let physical = query.physical();
        let placement = Placement::new(assignment.iter().map(|&w| WorkerId(w)).collect());
        placement.validate(&physical, cluster).map_err(|e| {
            ControllerError::JournalReplay(format!("journaled initial placement is invalid: {e}"))
        })?;
        let sim = Simulation::new(
            query.logical(),
            &physical,
            cluster,
            &placement,
            &query.schedules_from(&schedule),
            sim_config.clone(),
        )
        .map_err(ControllerError::Sim)?;
        Ok(ClosedLoop {
            query: query.clone(),
            cluster,
            strategy,
            ds2: Ds2Controller::new(ds2_config),
            sim_config,
            schedule,
            rng,
            time: 0.0,
            physical,
            placement,
            sim,
            last_action: f64::NEG_INFINITY,
            events: Vec::new(),
            points: Vec::new(),
            recent: VecDeque::new(),
            fault_plan: None,
            recovery: None,
            guard: None,
            rollback_events: Vec::new(),
            shedder: None,
            shed_events: Vec::new(),
            skew: None,
            sanitized: 0,
            state_transfer: None,
            migration_cfg: None,
            migration: None,
            open_wave: None,
            migration_waves: Vec::new(),
            epoch: 0,
            fence: EpochFence::new(),
            log: vec![init],
            sink: None,
            replay,
            resume_time,
            kill: None,
        })
    }

    /// Installs a deterministic fault schedule (global simulated time).
    /// The schedule survives reconfigurations: every replacement
    /// simulation gets the not-yet-fired suffix, shifted to its local
    /// clock, plus the chaos state accumulated so far. A
    /// [`KillPoint`] in the plan arms the controller-kill switch.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Result<Self, ControllerError> {
        self.sim
            .install_faults(plan.clone())
            .map_err(ControllerError::Sim)?;
        self.kill = plan.controller_kill;
        self.skew = plan.model_skew.map(|fault| SkewState {
            fault,
            trusted: None,
        });
        self.fault_plan = Some(plan);
        Ok(self)
    }

    /// Enables the reconfiguration safety governor: every scaling
    /// redeploy becomes a canary judged against the pre-deploy baseline,
    /// regressions roll back to the last-known-good plan (journaled as
    /// `Rollback` records), regressed plans are quarantined, and a
    /// growing cooldown damps churn. The current deployment is the
    /// first trusted plan. Re-attach with the same config to a loop
    /// built by [`ClosedLoop::recover_from_journal`] — replay drives
    /// the governor through the same transitions the crashed run took.
    pub fn with_guard(mut self, config: GuardConfig) -> Result<Self, ControllerError> {
        let initial = self.snapshot();
        self.guard = Some(SafetyGovernor::new(config, initial)?);
        Ok(self)
    }

    /// Enables overload protection: when sustained backpressure shows
    /// the offered load exceeding the demonstrated sustainable capacity,
    /// a bounded fraction of offered traffic is shed at the sources.
    /// Every change to the shed fraction is journaled as a two-phase
    /// `Shed` record, so a recovered controller replays the same
    /// admission decisions. Re-attach with the same config to a loop
    /// built by [`ClosedLoop::recover_from_journal`].
    pub fn with_shedding(mut self, config: ShedConfig) -> Result<Self, ControllerError> {
        self.shedder = Some(ShedController::new(config)?);
        Ok(self)
    }

    /// Enables failure detection and self-healing re-placement.
    pub fn with_recovery(mut self, config: RecoveryConfig) -> Self {
        self.recovery = Some(RecoveryState {
            detector: FailureDetector::new(self.cluster.num_workers(), config.detector.clone()),
            config,
            pending: None,
            events: Vec::new(),
        });
        self
    }

    /// Charges state movement as real simulated traffic. Every task's
    /// state is sized by the deterministic [`StateModel`] (operator type
    /// and key skew, `retained_records` retained records per key group),
    /// and every whole-plan redeploy becomes a restore-from-savepoint:
    /// all stateful tasks of the new plan pause while their state loads
    /// from their target worker's disk. Completed restores appear as
    /// waves in [`ClosedLoopTrace::migration_waves`]. Re-attach to a
    /// loop built by [`ClosedLoop::recover_from_journal`] with the same
    /// value.
    pub fn with_state_transfer(mut self, retained_records: f64) -> Result<Self, ControllerError> {
        if !retained_records.is_finite() || retained_records < 0.0 {
            return Err(ControllerError::InvalidConfig(
                "retained_records must be finite and non-negative".into(),
            ));
        }
        self.state_transfer = Some(retained_records);
        Ok(self)
    }

    /// Enables incremental task migration for recovery re-placements.
    /// Instead of restarting the whole job on a fresh plan, the
    /// controller picks a minimum-movement target within
    /// `config.epsilon` of the best survivable plan and moves only the
    /// differing tasks, in waves of `config.wave_size`, pausing only
    /// the moving wave while its state drains. Each migration is
    /// journaled as `MigratePrepare` / per-wave `MigrateStep`s /
    /// `MigrateCommit` and is crash-recoverable at every record.
    /// Requires [`ClosedLoop::with_state_transfer`]. Scalings and
    /// governor rollbacks stay whole-plan.
    pub fn with_incremental_migration(
        mut self,
        config: MigrationConfig,
    ) -> Result<Self, ControllerError> {
        if self.state_transfer.is_none() {
            return Err(ControllerError::InvalidConfig(
                "incremental migration requires state-transfer charging \
                 (call with_state_transfer first)"
                    .into(),
            ));
        }
        if !config.epsilon.is_finite() || config.epsilon < 0.0 {
            return Err(ControllerError::InvalidConfig(
                "migration epsilon must be finite and non-negative".into(),
            ));
        }
        if config.wave_size == 0 {
            return Err(ControllerError::InvalidConfig(
                "migration wave_size must be at least 1".into(),
            ));
        }
        self.migration_cfg = Some(config);
        Ok(self)
    }

    /// Attaches a write-ahead decision journal. Decisions already taken
    /// (at minimum the initial deployment; for a recovered loop, the
    /// whole replayed history as it is consumed) are written through, so
    /// the sink must be fresh. Attach before [`ClosedLoop::run`].
    pub fn with_journal(mut self, mut sink: DecisionJournal) -> Result<Self, ControllerError> {
        if sink.next_seq() != 0 {
            return Err(ControllerError::InvalidConfig(
                "journal sink already holds records; a recovered loop re-journals \
                 its whole history into a fresh sink itself"
                    .into(),
            ));
        }
        for rec in &self.log {
            sink.append(rec)?;
        }
        self.sink = Some(sink);
        Ok(self)
    }

    /// Shares an external epoch fence — the cluster-side "who may
    /// reconfigure" state. Deployments from this loop must advance the
    /// fence past its current epoch or fail with
    /// [`ControllerError::FencedEpoch`]. Hand clones of one fence to two
    /// controllers to model a zombie racing the controller that
    /// superseded it.
    pub fn with_fence(mut self, fence: EpochFence) -> Self {
        self.fence = fence;
        self
    }

    /// Current simulated time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The current placement plan.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The fencing epoch of the current deployment (0 = initial).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The epoch fence this controller deploys through.
    pub fn fence(&self) -> &EpochFence {
        &self.fence
    }

    /// Sets a worker's cross-job contention multiplier on the live
    /// simulation (`1.0` = uncontended). A fleet driver calls this each
    /// window to charge the shard for the CPU its neighbours consume on
    /// shared workers; the factor survives redeployments like the other
    /// chaos state.
    pub fn set_contention(&mut self, w: WorkerId, factor: f64) {
        self.sim.set_contention(w, factor);
    }

    /// Revokes a worker from this shard's pool: the arbiter reassigned
    /// it, so from this shard's perspective the worker fails — the
    /// failure detector declares it down and the normal recovery
    /// machinery re-places its tasks on the shard's remaining workers.
    /// The revocation survives redeployments (failed-worker state is
    /// carried across), so the shard never places tasks there again
    /// unless the arbiter returns the worker via
    /// [`ClosedLoop::restore_worker`].
    pub fn revoke_worker(&mut self, w: WorkerId) {
        self.sim.fail_worker(w);
    }

    /// Returns a previously revoked (or crashed) worker to service.
    pub fn restore_worker(&mut self, w: WorkerId) {
        self.sim.restore_worker(w);
    }

    /// The current deployment, frozen for the governor.
    fn snapshot(&self) -> PlanSnapshot {
        PlanSnapshot {
            parallelism: self.query.logical().parallelism_vector(),
            assignment: self.placement.assignment().iter().map(|w| w.0).collect(),
            epoch: self.epoch,
        }
    }

    /// Workers the failure detector currently considers down (empty when
    /// recovery is disabled).
    fn known_down(&self) -> Vec<WorkerId> {
        self.recovery
            .as_ref()
            .map(|r| r.detector.down_workers())
            .unwrap_or_default()
    }

    /// Per-worker free slots with the given workers excluded.
    fn free_slots(&self, down: &[WorkerId]) -> Vec<usize> {
        let mut free = vec![self.cluster.slots_per_worker(); self.cluster.num_workers()];
        for w in down {
            if let Some(s) = free.get_mut(w.0) {
                *s = 0;
            }
        }
        free
    }

    /// Journals a live decision, enforcing any armed controller-kill
    /// point. The record reaches the sink (and is flushed) *before* the
    /// kill fires: a killed controller's last decision is exactly the
    /// last line of its journal.
    fn record(&mut self, rec: DecisionRecord) -> Result<(), ControllerError> {
        let seq = self.log.len() as u64;
        if let Some(sink) = &mut self.sink {
            sink.append(&rec)?;
        }
        let killed = match self.kill {
            Some(KillPoint::AfterRecord(k)) => seq == k,
            Some(KillPoint::MidReconfig(e)) => {
                matches!(
                    &rec,
                    DecisionRecord::Prepare { epoch, .. }
                    | DecisionRecord::Rollback { epoch, .. }
                    | DecisionRecord::Shed { epoch, .. }
                    | DecisionRecord::MigratePrepare { epoch, .. } if *epoch == e
                )
            }
            _ => false,
        };
        self.log.push(rec);
        if killed {
            return Err(ControllerError::ControllerKilled {
                seq: self.log.len() as u64,
                time: self.time,
            });
        }
        Ok(())
    }

    /// Re-journals a decision consumed from the replay cursor. Replayed
    /// records never trip kill points — the controller that wrote them
    /// already survived past them.
    fn record_replayed(&mut self, rec: DecisionRecord) -> Result<(), ControllerError> {
        if let Some(sink) = &mut self.sink {
            sink.append(&rec)?;
        }
        self.log.push(rec);
        Ok(())
    }

    /// Runs the loop for `duration` simulated seconds.
    pub fn run(mut self, duration: f64) -> Result<ClosedLoopTrace, ControllerError> {
        let interval = self.policy_window();
        let end = self.time + duration;
        while self.time < end - 1e-9 {
            let window = interval.min(end - self.time);
            self.step(window)?;
        }
        self.into_trace()
    }

    /// The loop's natural policy window: the DS2 policy interval,
    /// floored at one simulation tick. [`ClosedLoop::run`] advances in
    /// windows of this size; an external driver stepping the loop via
    /// [`ClosedLoop::step`] must use the same window for journal replay
    /// times to line up.
    pub fn policy_window(&self) -> f64 {
        self.ds2.config.policy_interval.max(self.sim_config.tick)
    }

    /// Advances the loop one policy window of `window` simulated
    /// seconds: simulate, observe, and make at most one control
    /// decision. This is exactly one iteration of [`ClosedLoop::run`]'s
    /// loop, exposed so a fleet-level driver can interleave many shard
    /// controllers in lockstep on one global clock.
    pub fn step(&mut self, window: f64) -> Result<StepReport, ControllerError> {
        {
            let report = self.sim.advance(window, 0.0);
            self.time += window;
            let summary = StepReport {
                time: self.time,
                avg_throughput: report.avg_throughput,
                avg_target: report.avg_target,
                avg_backpressure: report.avg_backpressure,
                worker_cpu_util: report.worker_cpu_util.clone(),
                worker_alive: report.worker_alive.clone(),
            };

            // Injected wall-clock controller kill: the process dies at
            // the next window boundary. Replayed spans are immune (the
            // crashed controller survived them up to its journal tail),
            // as is anything at or before a recovered loop's resume
            // point.
            if let Some(KillPoint::AtTime(t)) = self.kill {
                if self.replay.is_empty() && self.time + 1e-9 >= t && t > self.resume_time {
                    return Err(ControllerError::ControllerKilled {
                        seq: self.log.len() as u64,
                        time: self.time,
                    });
                }
            }

            for mut p in report.points.clone() {
                p.time = self.time;
                self.points.push(p);
            }
            // Ingestion sanitizer: clamp poisoned samples before the
            // rates can reach DS2 or the online profiler.
            let mut task_rates = report.task_rates.clone();
            self.sanitized += sanitize_rates(&mut task_rates) as u64;
            self.recent.push_back((window, task_rates));
            while self.recent.len() > METRICS_WINDOWS {
                self.recent.pop_front();
            }

            // A model-skew fault makes the *plan model* stale, not the
            // cluster: the plan live at the onset keeps its measured
            // behavior, so remember it as the trusted rollback target.
            if let Some(skew) = &mut self.skew {
                if skew.trusted.is_none() && self.time + 1e-9 >= skew.fault.time {
                    skew.trusted = Some((
                        self.query.logical().parallelism_vector(),
                        self.placement.assignment().iter().map(|w| w.0).collect(),
                    ));
                }
            }

            // Failure detection: heartbeats ride the metrics report,
            // with out-of-band activity evidence so a partitioned
            // worker (still running, fenced writes landing) is
            // classified isolated rather than crashed — re-placing its
            // tasks would double-place them.
            if let Some(rec) = &mut self.recovery {
                let det = rec.detector.observe_with_evidence(
                    &report.worker_alive,
                    &report.worker_activity,
                    report.metrics_ok,
                    self.time,
                );
                for w in det.newly_down {
                    let since = rec.detector.stale_since(w).unwrap_or(self.time);
                    match &mut rec.pending {
                        Some(p) => {
                            if !p.workers.iter().any(|(pw, _)| *pw == w) {
                                p.workers.push((w, since));
                            }
                        }
                        None => {
                            rec.pending = Some(PendingRecovery {
                                workers: vec![(w, since)],
                                detected_at: self.time,
                                attempts: 0,
                                next_attempt_at: self.time,
                            });
                        }
                    }
                }
            }

            // Whole-plan restores: close the trace's open wave once the
            // restore finishes draining.
            if self.migration.is_none()
                && self.open_wave.is_some()
                && !self.sim.state_transfer_active()
            {
                self.close_open_wave();
            }

            // An in-flight incremental migration owns the control loop:
            // one wave at a time, journaled as it lands. Scaling, the
            // governor, and new recovery attempts wait for its commit
            // (or abandonment); failure detection above keeps running.
            if self.migration.is_some() {
                self.advance_migration()?;
                return Ok(summary);
            }

            // Recovery re-placement, with bounded exponential backoff.
            let attempt_due = self
                .recovery
                .as_ref()
                .and_then(|r| r.pending.as_ref())
                .is_some_and(|p| self.time + 1e-9 >= p.next_attempt_at);
            if attempt_due {
                if self.replay.is_empty() {
                    self.attempt_recovery()?;
                } else {
                    self.replay_recovery_step()?;
                }
            }

            // Overload protection: the admission controller sizes the
            // shed fraction from this window's metrics. It runs even
            // while a recovery is pending and is exempt from governor
            // cooldown and the activation period — shedding is load
            // control, not a plan change, and an overloaded job cannot
            // wait for either clock. It does not touch `last_action`:
            // scaling out is the real fix and must not be delayed by a
            // shed. Offered load is measured at the sources, pre-shed.
            let offered = self.schedule.rate_at(self.time).max(0.0);
            let shed_req = match &mut self.shedder {
                Some(shed) => shed.observe_window(
                    self.time,
                    report.avg_throughput,
                    offered,
                    report.avg_backpressure,
                ),
                None => None,
            };
            if let Some(req) = shed_req {
                if self.replay.is_empty() {
                    self.shed_redeploy(&req)?;
                } else {
                    self.replay_shed_step(&req)?;
                }
            }

            // DS2 policy evaluation. A pending recovery takes priority:
            // scaling decisions wait until the job is re-placed.
            if self.recovery.as_ref().is_some_and(|r| r.pending.is_some()) {
                return Ok(summary);
            }

            // Safety governor: judge the current probation window before
            // the policy decides anything. A rollback verdict preempts
            // DS2 and is exempt from the activation period — a regressed
            // canary must not linger because the loop just acted.
            let verdict = match &mut self.guard {
                Some(gov) => gov.observe_window(
                    self.time,
                    report.avg_throughput,
                    report.avg_target,
                    report.avg_backpressure,
                ),
                None => None,
            };
            if let Some(req) = verdict {
                if self.replay.is_empty() {
                    self.rollback_redeploy(&req)?;
                } else {
                    self.replay_rollback_step(&req)?;
                }
                return Ok(summary);
            }
            // Hysteresis: no reconfiguration of any kind inside the
            // post-rollback cooldown.
            if self.guard.as_ref().is_some_and(|g| g.in_cooldown(self.time)) {
                return Ok(summary);
            }

            if self.time - self.last_action < self.ds2.config.activation_period {
                return Ok(summary);
            }
            if !self.replay.is_empty() {
                // Replay stands in for the DS2 evaluation: the journal
                // already says whether (and how) this step scaled.
                self.replay_scaling_step()?;
                return Ok(summary);
            }
            let rates = average_rates(&self.recent);
            let rate_now = self.schedule.rate_at(self.time).max(1.0);
            let targets: HashMap<OperatorId, f64> = self.query.source_rates(rate_now);
            let decision = self
                .ds2
                .decide(self.query.logical(), &self.physical, &rates, &targets)
                .map_err(ControllerError::Ds2)?;
            if !decision.changed {
                return Ok(summary);
            }
            let down = self.known_down();
            let capacity_ok = if down.is_empty() {
                self.cluster.check_capacity(decision.total_tasks()).is_ok()
            } else {
                decision.total_tasks() <= self.free_slots(&down).iter().sum::<usize>()
            };
            if !capacity_ok {
                // Cannot deploy the recommendation; skip this action.
                return Ok(summary);
            }
            // Quarantine veto *before* the placement search: vetoing
            // after it would consume RNG with no journal record and fork
            // any replay of this run.
            if self
                .guard
                .as_ref()
                .is_some_and(|g| g.is_quarantined(&decision.parallelism, self.time))
            {
                return Ok(summary);
            }
            self.redeploy(decision.parallelism, rate_now, true)?;
            Ok(summary)
        }
    }

    /// Finishes the run: checks every journaled decision was consumed
    /// and assembles the trace. Call after the final
    /// [`ClosedLoop::step`] (or let [`ClosedLoop::run`] do both).
    pub fn into_trace(self) -> Result<ClosedLoopTrace, ControllerError> {
        if !self.replay.is_empty() {
            // The journal records decisions from beyond this run's end:
            // the caller replayed with a shorter horizon. Surface it
            // rather than silently dropping journaled decisions.
            return Err(ControllerError::JournalReplay(format!(
                "{} journaled decision(s) left unreplayed at the end of the run",
                self.replay.len()
            )));
        }
        Ok(ClosedLoopTrace {
            points: self.points,
            events: self.events,
            recovery_events: self.recovery.map(|r| r.events).unwrap_or_default(),
            rollback_events: self.rollback_events,
            shed_events: self.shed_events,
            sanitized_samples: self.sanitized,
            migration_waves: self.migration_waves,
            final_parallelism: self.query.logical().parallelism_vector(),
        })
    }

    /// Runs one re-placement attempt for the pending recovery. Success
    /// records a [`RecoveryEvent`] per covered worker; a retryable
    /// failure backs off exponentially (journaled as a `Retry`) and,
    /// once `max_retries` attempts are spent, gives up and lets the job
    /// continue degraded — the loop never crashes on an unplaceable
    /// cluster. Fencing and injected kills propagate.
    fn attempt_recovery(&mut self) -> Result<(), ControllerError> {
        let parallelism = self.query.logical().parallelism_vector();
        let rate_now = self.schedule.rate_at(self.time).max(1.0);
        if self.migration_cfg.is_some() {
            match self.migrate_redeploy(rate_now) {
                // Migration started; it commits (and resolves the
                // pending recovery) once every wave has drained.
                Ok(true) => return Ok(()),
                // No tolerance band on the survivors: fall through to a
                // whole-plan redeploy.
                Ok(false) => {}
                Err(e) if retryable(&e) => return self.note_failed_attempt(),
                Err(e) => return Err(e),
            }
        }
        match self.redeploy(parallelism, rate_now, false) {
            Ok(rung) => {
                self.finish_recovery(rung);
                Ok(())
            }
            Err(e) if retryable(&e) => self.note_failed_attempt(),
            Err(e) => Err(e),
        }
    }

    /// Books one failed re-placement attempt: exponential backoff (or
    /// give-up past `max_retries`) plus a journaled `Retry`.
    fn note_failed_attempt(&mut self) -> Result<(), ControllerError> {
        let mut bookkeeping = None;
        if let Some(rec) = &mut self.recovery {
            if let Some(p) = &mut rec.pending {
                p.attempts += 1;
                if p.attempts > rec.config.max_retries {
                    bookkeeping = Some((p.attempts, true, None));
                    rec.pending = None;
                } else {
                    p.next_attempt_at = self.time + rec.config.backoff(p.attempts);
                    bookkeeping = Some((p.attempts, false, Some(p.next_attempt_at)));
                }
            }
        }
        if let Some((attempts, gave_up, next_attempt_at)) = bookkeeping {
            self.record(DecisionRecord::Retry {
                time: self.time,
                attempts,
                gave_up,
                next_attempt_at,
                rng: self.rng.state(),
            })?;
        }
        Ok(())
    }

    /// Resolves the pending recovery into trace events.
    fn finish_recovery(&mut self, rung: LadderRung) {
        if let Some(rec) = &mut self.recovery {
            if let Some(p) = rec.pending.take() {
                for &(w, since) in &p.workers {
                    rec.events.push(RecoveryEvent {
                        worker: w,
                        stale_since: since,
                        detected_at: p.detected_at,
                        detection_lag: p.detected_at - since,
                        recovered_at: self.time,
                        time_to_recover: self.time - since,
                        plans_tried: p.attempts + 1,
                        rung,
                    });
                }
            }
        }
        // A recovery redeploy is forced, never canaried: the governor
        // aborts any probation and adopts the forced plan as trusted.
        let snap = self.snapshot();
        if let Some(gov) = &mut self.guard {
            gov.on_recovery_deploy(self.time, snap);
        }
    }

    /// Plans and starts an incremental migration for the pending
    /// recovery: picks a minimum-movement target within the configured
    /// tolerance of the best survivable plan, journals a
    /// `MigratePrepare` (phase one), binds the epoch fence, and begins
    /// the first wave inside the *live* simulation — nothing restarts;
    /// only the moving wave's tasks pause. Returns `Ok(false)` when the
    /// search cannot produce a tolerance band (infeasible or budget
    /// exhausted): the caller falls back to a whole-plan redeploy.
    fn migrate_redeploy(&mut self, rate_now: f64) -> Result<bool, ControllerError> {
        let Some(cfg) = self.migration_cfg.clone() else {
            return Ok(false);
        };
        let Some(retained) = self.state_transfer else {
            return Ok(false);
        };
        let Some(mut search) = self.recovery.as_ref().map(|r| r.config.search.clone()) else {
            return Ok(false);
        };
        let down = self.known_down();
        search.free_slots = Some(self.free_slots(&down));
        let state = StateModel::derive(self.query.logical(), &self.physical, retained)
            .map_err(ControllerError::Model)?;
        let loads = self
            .query
            .load_model_at(&self.physical, rate_now)
            .map_err(ControllerError::Model)?;
        let ctx = PlacementContext {
            logical: self.query.logical(),
            physical: &self.physical,
            cluster: self.cluster,
            loads: &loads,
        };
        let (target, diff) =
            match place_with_movemin(&ctx, &search, cfg.epsilon, &self.placement, &state) {
                Ok(found) => found,
                Err(e) if descends(&e) => return Ok(false),
                Err(e) => return Err(ControllerError::Placement(e)),
            };

        let epoch = self.epoch + 1;
        self.epoch = epoch;
        self.record(DecisionRecord::MigratePrepare {
            epoch,
            time: self.time,
            reason: RedeployReason::Recovery,
            parallelism: self.query.logical().parallelism_vector(),
            assignment: target.assignment().iter().map(|w| w.0).collect(),
            rung: LadderRung::Caps,
            moved: diff.moves().iter().map(|m| m.task.0).collect(),
            wave_len: cfg.wave_size,
            rate: rate_now,
            rng: self.rng.state(),
            search: Some(SearchDescriptor::of(&search)),
        })?;
        // The live simulation keeps running across the migration, but
        // the migration itself must win the fence: a superseded zombie
        // must not move tasks around.
        self.sim.bind_epoch(&self.fence, epoch).map_err(|e| match e {
            SimError::StaleEpoch { attempted, current } => {
                ControllerError::FencedEpoch { attempted, current }
            }
            other => ControllerError::Sim(other),
        })?;
        self.begin_migration(
            epoch,
            LadderRung::Caps,
            target.assignment().iter().map(|w| w.0).collect(),
            diff.moves().to_vec(),
            cfg.wave_size,
            down,
        )?;
        Ok(true)
    }

    /// Installs the migration state and starts its first wave (shared
    /// by the live and replay paths; the caller has already journaled
    /// or consumed the `MigratePrepare` and fenced/stamped the epoch).
    fn begin_migration(
        &mut self,
        epoch: u64,
        rung: LadderRung,
        assignment: Vec<usize>,
        moves: Vec<TaskMove>,
        wave_len: usize,
        known_down_at_start: Vec<WorkerId>,
    ) -> Result<(), ControllerError> {
        self.migration = Some(MigrationState {
            epoch,
            rung,
            assignment,
            moves,
            wave_len: wave_len.max(1),
            next_wave: 0,
            in_flight: false,
            known_down_at_start,
        });
        // Start the first wave now; an empty diff commits immediately.
        self.advance_migration()
    }

    /// Drives the in-flight migration one window forward: abandons it
    /// if a fresh worker death invalidated the target plan, waits while
    /// the current wave drains, journals a `MigrateStep` when a wave
    /// lands, starts the next wave, and commits — `MigrateCommit`,
    /// target placement installed, pending recovery resolved — once
    /// every wave is done.
    fn advance_migration(&mut self) -> Result<(), ControllerError> {
        // A worker dying *mid-migration* invalidates the target plan
        // (it may assign tasks to the new corpse). Abandon: unpause in
        // place, book a failed attempt. The detector has already folded
        // the new death into the pending recovery, so the next attempt
        // re-plans against the updated survivor set.
        let invalidated = match &self.migration {
            Some(mig) => {
                let down_now = self.known_down();
                down_now
                    .iter()
                    .any(|w| !mig.known_down_at_start.contains(w))
            }
            None => return Ok(()),
        };
        if invalidated {
            self.sim.cancel_state_transfer();
            self.migration = None;
            self.open_wave = None;
            return self.journal_abandoned_migration();
        }
        if self.sim.state_transfer_active() {
            return Ok(()); // the current wave is still draining
        }

        // The wave that was in flight has landed: trace it, journal it.
        if self.migration.as_ref().is_some_and(|m| m.in_flight) {
            self.close_open_wave();
            let mut landed = None;
            if let Some(m) = &mut self.migration {
                m.in_flight = false;
                landed = Some((m.epoch, m.next_wave));
                m.next_wave += 1;
            }
            if let Some((epoch, wave)) = landed {
                self.migrate_record(DecisionRecord::MigrateStep {
                    epoch,
                    wave,
                    time: self.time,
                })?;
            }
        }

        // Start the next wave, or commit.
        let next = match &self.migration {
            Some(m) if m.next_wave * m.wave_len < m.moves.len() => {
                let start = m.next_wave * m.wave_len;
                let end = (start + m.wave_len).min(m.moves.len());
                Some((m.epoch, m.next_wave, m.moves[start..end].to_vec()))
            }
            Some(_) => None,
            None => return Ok(()),
        };
        match next {
            Some((epoch, wave, chunk)) => {
                let transfers: Vec<TaskTransfer> = chunk
                    .iter()
                    .map(|m| TaskTransfer {
                        task: m.task.0,
                        to: m.to.0,
                        bytes: m.bytes as f64,
                    })
                    .collect();
                let paused_base = self.sim.paused_task_seconds();
                self.sim
                    .begin_state_transfer(&transfers, false)
                    .map_err(ControllerError::Sim)?;
                self.open_wave = Some(OpenWave {
                    epoch,
                    wave,
                    tasks: chunk.len(),
                    bytes: chunk.iter().map(|m| m.bytes).sum(),
                    paused_base,
                });
                if let Some(m) = &mut self.migration {
                    m.in_flight = true;
                }
                Ok(())
            }
            None => {
                let Some(mig) = self.migration.take() else {
                    return Ok(());
                };
                self.migrate_record(DecisionRecord::MigrateCommit {
                    epoch: mig.epoch,
                    time: self.time,
                })?;
                self.placement =
                    Placement::new(mig.assignment.iter().map(|&w| WorkerId(w)).collect());
                self.last_action = self.time;
                self.finish_recovery(mig.rung);
                Ok(())
            }
        }
    }

    /// Journals the abandonment of a migration as a failed attempt: a
    /// live run books backoff and writes a `Retry` (which, following
    /// the `MigratePrepare`/`MigrateStep`s, marks the migration
    /// abandoned for any future replay); a replaying run consumes the
    /// journaled `Retry` instead.
    fn journal_abandoned_migration(&mut self) -> Result<(), ControllerError> {
        let due_retry = matches!(
            self.replay.front(),
            Some(DecisionRecord::Retry { time, .. }) if replay_due(*time, self.time)
        );
        if due_retry {
            if let Some(r) = self.replay.pop_front() {
                return self.apply_replayed_retry(r);
            }
        }
        if let Some(other) = self.replay.front() {
            return Err(ControllerError::JournalReplay(format!(
                "migration abandoned at t={:.3}, but the journal's next decision is from \
                 t={:.3}: the replay diverged from the run that wrote the journal",
                self.time,
                other.time()
            )));
        }
        self.note_failed_attempt()
    }

    /// Journals a migration step or commit, consuming the journal's
    /// matching front record when replaying. A journal that ends
    /// mid-migration (the crash hit between records) rolls forward:
    /// past the tail the records are written live.
    fn migrate_record(&mut self, rec: DecisionRecord) -> Result<(), ControllerError> {
        let matches_front = match (self.replay.front(), &rec) {
            (
                Some(DecisionRecord::MigrateStep {
                    epoch: je,
                    wave: jw,
                    time: jt,
                }),
                DecisionRecord::MigrateStep { epoch, wave, .. },
            ) => je == epoch && jw == wave && replay_due(*jt, self.time),
            (
                Some(DecisionRecord::MigrateCommit {
                    epoch: je,
                    time: jt,
                }),
                DecisionRecord::MigrateCommit { epoch, .. },
            ) => je == epoch && replay_due(*jt, self.time),
            _ => false,
        };
        if matches_front {
            if let Some(front) = self.replay.pop_front() {
                return self.record_replayed(front);
            }
        }
        if let Some(other) = self.replay.front() {
            return Err(ControllerError::JournalReplay(format!(
                "migration record due at t={:.3}, but the journal's next decision is from \
                 t={:.3}: the replay diverged from the run that wrote the journal",
                self.time,
                other.time()
            )));
        }
        self.record(rec)
    }

    /// Closes the trace's open state-transfer wave against the current
    /// simulation's paused-seconds clock.
    fn close_open_wave(&mut self) {
        if let Some(w) = self.open_wave.take() {
            self.migration_waves.push(MigrationWave {
                epoch: w.epoch,
                wave: w.wave,
                tasks_moved: w.tasks,
                bytes: w.bytes,
                downtime: (self.sim.paused_task_seconds() - w.paused_base).max(0.0),
                completed_at: self.time,
            });
        }
    }

    /// Consumes the journal's front `MigratePrepare` and restarts its
    /// migration: RNG and epoch restored from the record, the move list
    /// re-derived from the deterministic state model, the first wave
    /// begun. Subsequent `MigrateStep`s and the `MigrateCommit` (or the
    /// `Retry` of an abandoned migration) are consumed as the replaying
    /// loop reaches them.
    fn apply_replayed_migrate(&mut self) -> Result<(), ControllerError> {
        let Some(rec) = self.replay.pop_front() else {
            return Err(ControllerError::JournalReplay(
                "no migrate-prepare to replay".into(),
            ));
        };
        let DecisionRecord::MigratePrepare {
            epoch,
            parallelism,
            assignment,
            rung,
            moved,
            wave_len,
            rng,
            ..
        } = rec.clone()
        else {
            return Err(ControllerError::JournalReplay(
                "expected a migrate-prepare record".into(),
            ));
        };
        self.rng = SmallRng::try_from_state(rng).ok_or_else(|| {
            ControllerError::JournalReplay("journaled RNG state is invalid (all zero)".into())
        })?;
        self.epoch = epoch;
        self.record_replayed(rec)?;
        if parallelism != self.query.logical().parallelism_vector() {
            return Err(ControllerError::JournalReplay(
                "journaled migration changes parallelism — migrations move tasks, they do \
                 not scale"
                    .into(),
            ));
        }
        let target = Placement::new(assignment.iter().map(|&w| WorkerId(w)).collect());
        target.validate(&self.physical, self.cluster).map_err(|e| {
            ControllerError::JournalReplay(format!("journaled migration target is invalid: {e}"))
        })?;
        let Some(retained) = self.state_transfer else {
            return Err(ControllerError::JournalReplay(
                "journal contains a migration but state-transfer charging is not configured"
                    .into(),
            ));
        };
        let state = StateModel::derive(self.query.logical(), &self.physical, retained)
            .map_err(ControllerError::Model)?;
        let diff = PlanDiff::between(&self.placement, &target, &state)
            .map_err(ControllerError::Model)?;
        let expected: Vec<usize> = diff.moves().iter().map(|m| m.task.0).collect();
        if moved != expected {
            return Err(ControllerError::JournalReplay(
                "journaled move set does not match the difference between the incumbent and \
                 target plans"
                    .into(),
            ));
        }
        self.sim.stamp_epoch(epoch);
        let down = self.known_down();
        self.begin_migration(epoch, rung, assignment, diff.moves().to_vec(), wave_len, down)
    }

    /// Applies a parallelism vector through the two-phase protocol.
    ///
    /// Phase 0 computes the whole plan (new physical graph, placement
    /// from the degradation ladder when workers are down, otherwise the
    /// configured strategy) into locals, so a failed search leaves the
    /// running deployment intact. Phase 1 journals a `Prepare` with the
    /// plan and post-search RNG state *before* anything is touched.
    /// Phase 2 deploys under the epoch fence and journals the `Commit`.
    /// A crash between the phases leaves the `Prepare` at the journal
    /// tail; recovery rolls it forward. A deployment failure after the
    /// `Prepare` is followed (on the recovery path) by a journaled
    /// `Retry`, which marks the `Prepare` abandoned.
    fn redeploy(
        &mut self,
        parallelism: Vec<usize>,
        rate_now: f64,
        record_scaling: bool,
    ) -> Result<LadderRung, ControllerError> {
        let query = self
            .query
            .with_parallelism(&parallelism)
            .map_err(ControllerError::Model)?;
        let physical = query.physical();
        let loads = query
            .load_model_at(&physical, rate_now)
            .map_err(ControllerError::Model)?;
        let ctx = PlacementContext {
            logical: query.logical(),
            physical: &physical,
            cluster: self.cluster,
            loads: &loads,
        };
        let down = self.known_down();
        let (placement, rung, search_desc) = match (&self.recovery, down.is_empty()) {
            (Some(rec), false) => {
                let mut search = rec.config.search.clone();
                search.free_slots = Some(self.free_slots(&down));
                let (p, r) = place_with_ladder(&ctx, &search, &mut self.rng)
                    .map_err(ControllerError::Placement)?;
                (p, r, Some(SearchDescriptor::of(&search)))
            }
            _ => (
                self.strategy
                    .place(&ctx, &mut self.rng)
                    .map_err(ControllerError::Placement)?,
                LadderRung::Caps,
                self.strategy.search_descriptor(),
            ),
        };

        let epoch = self.epoch + 1;
        self.epoch = epoch;
        let reason = if record_scaling {
            RedeployReason::Scaling
        } else {
            RedeployReason::Recovery
        };
        self.record(DecisionRecord::Prepare {
            epoch,
            time: self.time,
            reason,
            parallelism: parallelism.clone(),
            assignment: placement.assignment().iter().map(|w| w.0).collect(),
            rung,
            rate: rate_now,
            rng: self.rng.state(),
            search: search_desc,
        })?;

        self.deploy(query, physical, placement, epoch, true)?;
        self.record(DecisionRecord::Commit {
            epoch,
            time: self.time,
        })?;
        if record_scaling {
            self.events.push(ScalingEvent {
                time: self.time,
                parallelism,
                slots: self.physical.num_tasks(),
            });
            let snap = self.snapshot();
            if let Some(gov) = &mut self.guard {
                gov.on_scaling_deploy(self.time, snap);
            }
        }
        Ok(rung)
    }

    /// Swaps in a new deployment: a fresh simulation (the
    /// restart-from-savepoint analogue) with the chaos state accumulated
    /// so far and the unfired fault-schedule suffix carried over. With
    /// `fenced`, the new simulation must win the epoch fence first — a
    /// stale epoch leaves the current deployment untouched and surfaces
    /// as [`ControllerError::FencedEpoch`]. Replay deploys unfenced: the
    /// journal, not the fence, is the authority on what was deployed.
    fn deploy(
        &mut self,
        query: Query,
        physical: PhysicalGraph,
        placement: Placement,
        epoch: u64,
        fenced: bool,
    ) -> Result<(), ControllerError> {
        // Chaos state accumulated before the restart must survive it.
        let failed: Vec<bool> = self.sim.failed_workers().to_vec();
        let slowdowns: Vec<f64> = self.sim.slowdowns().to_vec();
        let blackout = self.sim.in_blackout();
        let shed_fraction = self.sim.shed_fraction();
        let partitioned: Vec<bool> = self.sim.partitioned_workers().to_vec();
        let net_degrades: Vec<f64> = self.sim.net_degrades().to_vec();
        let contentions: Vec<f64> = self.sim.contentions().to_vec();
        // Shift the schedule so the new simulation continues at the
        // current wall-clock position.
        let offset = self.time;
        let shifted = shift_schedule(&self.schedule, offset);
        let mut sim = Simulation::new(
            query.logical(),
            &physical,
            self.cluster,
            &placement,
            &query.schedules_from(&shifted),
            self.sim_config.clone(),
        )
        .map_err(ControllerError::Sim)?;
        for (w, f) in failed.iter().enumerate() {
            if *f {
                sim.fail_worker(WorkerId(w));
            }
        }
        for (w, s) in slowdowns.iter().enumerate() {
            if *s > 1.0 {
                sim.set_slowdown(WorkerId(w), *s);
            }
        }
        sim.set_blackout(blackout);
        sim.set_shed_fraction(shed_fraction);
        for (w, on) in partitioned.iter().enumerate() {
            if *on {
                sim.set_partitioned(WorkerId(w), true);
            }
        }
        for (w, f) in net_degrades.iter().enumerate() {
            if *f < 1.0 {
                sim.set_net_degrade(WorkerId(w), *f);
            }
        }
        for (w, c) in contentions.iter().enumerate() {
            if *c > 1.0 {
                sim.set_contention(WorkerId(w), *c);
            }
        }
        if let Some(plan) = &self.fault_plan {
            sim.install_faults(plan.shifted(offset))
                .map_err(ControllerError::Sim)?;
        }
        // Deploys after the model-skew onset run on the stale model
        // unless they restore the trusted (measured) plan.
        if let Some(skew) = &self.skew {
            if self.time + 1e-9 >= skew.fault.time {
                let key = (
                    query.logical().parallelism_vector(),
                    placement.assignment().iter().map(|w| w.0).collect::<Vec<_>>(),
                );
                if skew.trusted.as_ref() != Some(&key) {
                    sim.set_model_skew(skew.fault.factor);
                }
            }
        }
        // With state-transfer charging on, a whole-plan redeploy is a
        // restore-from-savepoint: every stateful task of the new plan
        // pauses while its state loads from its target worker's disk.
        let mut restore_wave = None;
        if let Some(retained) = self.state_transfer {
            let state = StateModel::derive(query.logical(), &physical, retained)
                .map_err(ControllerError::Model)?;
            let transfers: Vec<TaskTransfer> = (0..physical.num_tasks())
                .filter_map(|t| {
                    let bytes = state.state_bytes(TaskId(t));
                    (bytes > 0).then(|| TaskTransfer {
                        task: t,
                        to: placement.worker_of(TaskId(t)).0,
                        bytes: bytes as f64,
                    })
                })
                .collect();
            if !transfers.is_empty() {
                let bytes: u64 = transfers.iter().map(|t| t.bytes as u64).sum();
                sim.begin_state_transfer(&transfers, true)
                    .map_err(ControllerError::Sim)?;
                restore_wave = Some(OpenWave {
                    epoch,
                    wave: 0,
                    tasks: transfers.len(),
                    bytes,
                    paused_base: 0.0,
                });
            }
        }
        if fenced {
            sim.bind_epoch(&self.fence, epoch).map_err(|e| match e {
                SimError::StaleEpoch { attempted, current } => {
                    ControllerError::FencedEpoch { attempted, current }
                }
                other => ControllerError::Sim(other),
            })?;
        } else {
            sim.stamp_epoch(epoch);
        }
        // A still-draining wave of the outgoing deployment ends here:
        // close it against the old simulation before it is dropped.
        self.close_open_wave();
        self.query = query;
        self.physical = physical;
        self.placement = placement;
        self.sim = sim;
        self.open_wave = restore_wave;
        self.last_action = self.time;
        self.recent.clear();
        Ok(())
    }

    /// Replay counterpart of [`ClosedLoop::attempt_recovery`]: consumes
    /// the journal's record of what this attempt did — a `Retry`
    /// (failed attempt: restore backoff bookkeeping) or a recovery
    /// `Prepare` (apply its fate). An exhausted cursor means the crashed
    /// run died before this attempt: take it live.
    fn replay_recovery_step(&mut self) -> Result<(), ControllerError> {
        let front = match self.replay.front().cloned() {
            None => return self.attempt_recovery(),
            Some(r) => r,
        };
        match front {
            DecisionRecord::Retry { time, .. } if replay_due(time, self.time) => {
                self.replay.pop_front();
                self.apply_replayed_retry(front)
            }
            DecisionRecord::MigratePrepare { time, .. } if replay_due(time, self.time) => {
                self.apply_replayed_migrate()
            }
            DecisionRecord::Prepare {
                reason: RedeployReason::Recovery,
                time,
                ..
            } if replay_due(time, self.time) => {
                match self.apply_replayed_redeploy()? {
                    Some(rung) => {
                        self.finish_recovery(rung);
                        Ok(())
                    }
                    // Abandoned prepare: the crashed run failed to
                    // deploy it; the following Retry carries the
                    // backoff bookkeeping.
                    None => match self.replay.front().cloned() {
                        Some(r @ DecisionRecord::Retry { .. }) => {
                            self.replay.pop_front();
                            self.apply_replayed_retry(r)
                        }
                        _ => Err(ControllerError::JournalReplay(
                            "abandoned prepare not followed by a retry".into(),
                        )),
                    },
                }
            }
            other => Err(ControllerError::JournalReplay(format!(
                "recovery attempt due at t={:.3}, but the journal's next decision is from t={:.3}: \
                 the replay diverged from the run that wrote the journal",
                self.time,
                other.time()
            ))),
        }
    }

    /// Replay counterpart of a DS2 evaluation step: applies the
    /// journal's scaling `Prepare` when one is due now; otherwise (the
    /// live run decided nothing here) does nothing. A journaled decision
    /// strictly in the past means the replay diverged.
    fn replay_scaling_step(&mut self) -> Result<(), ControllerError> {
        let Some(front) = self.replay.front() else {
            return Ok(());
        };
        if front.time() < self.time - REPLAY_TIME_EPS {
            return Err(ControllerError::JournalReplay(format!(
                "journaled decision at t={:.3} was never replayed (clock is at t={:.3}): \
                 the replay diverged from the run that wrote the journal",
                front.time(),
                self.time
            )));
        }
        let due_scaling = matches!(
            front,
            DecisionRecord::Prepare {
                reason: RedeployReason::Scaling,
                time,
                ..
            } if replay_due(*time, self.time)
        );
        if due_scaling && self.apply_replayed_redeploy()?.is_none() {
            // A scaling redeploy that fails to deploy aborts the live
            // run — it can never leave an abandoned Prepare behind.
            return Err(ControllerError::JournalReplay(
                "a journaled scaling reconfiguration was abandoned mid-flight".into(),
            ));
        }
        Ok(())
    }

    /// Restores one journaled `Retry`: the crashed run's failed
    /// re-placement attempt, with its post-search RNG state and backoff
    /// bookkeeping.
    fn apply_replayed_retry(&mut self, rec: DecisionRecord) -> Result<(), ControllerError> {
        let DecisionRecord::Retry {
            attempts,
            gave_up,
            next_attempt_at,
            rng,
            ..
        } = rec
        else {
            return Err(ControllerError::JournalReplay(
                "expected a retry record".into(),
            ));
        };
        self.rng = SmallRng::try_from_state(rng).ok_or_else(|| {
            ControllerError::JournalReplay("journaled RNG state is invalid (all zero)".into())
        })?;
        if let Some(state) = &mut self.recovery {
            if gave_up {
                state.pending = None;
            } else if let Some(p) = &mut state.pending {
                p.attempts = attempts;
                if let Some(t) = next_attempt_at {
                    p.next_attempt_at = t;
                }
            }
        }
        self.record_replayed(DecisionRecord::Retry {
            time: self.time,
            attempts,
            gave_up,
            next_attempt_at,
            rng,
        })
    }

    /// Consumes the journal's front `Prepare` and settles its fate:
    ///
    /// * followed by its `Commit` — the reconfiguration was applied;
    ///   deploy the journaled plan (no search, RNG restored from the
    ///   record) and consume the `Commit`;
    /// * followed by a `Retry` — the crashed run failed to deploy it;
    ///   do **not** deploy (returns `None`, the `Retry` stays for the
    ///   caller);
    /// * at the journal tail — in doubt: the crash hit between the
    ///   phases. Roll forward: deploy and journal the `Commit` live,
    ///   finishing the protocol the dead controller started.
    ///
    /// Replayed deploys stamp their epoch without consulting the fence —
    /// the journal is the authority on what was deployed.
    fn apply_replayed_redeploy(&mut self) -> Result<Option<LadderRung>, ControllerError> {
        let Some(rec) = self.replay.pop_front() else {
            return Err(ControllerError::JournalReplay("no prepare to replay".into()));
        };
        let DecisionRecord::Prepare {
            epoch,
            reason,
            parallelism,
            assignment,
            rung,
            rng,
            ..
        } = rec.clone()
        else {
            return Err(ControllerError::JournalReplay(
                "expected a prepare record".into(),
            ));
        };
        self.rng = SmallRng::try_from_state(rng).ok_or_else(|| {
            ControllerError::JournalReplay("journaled RNG state is invalid (all zero)".into())
        })?;
        self.epoch = epoch;
        self.record_replayed(rec)?;

        let committed = match self.replay.front() {
            Some(DecisionRecord::Commit { epoch: e, .. }) if *e == epoch => true,
            Some(DecisionRecord::Commit { epoch: e, .. }) => {
                return Err(ControllerError::JournalReplay(format!(
                    "commit epoch {e} does not match prepare epoch {epoch}"
                )));
            }
            Some(DecisionRecord::Retry { .. }) => return Ok(None),
            Some(other) => {
                return Err(ControllerError::JournalReplay(format!(
                    "prepare (epoch {epoch}) followed by a decision from t={:.3} \
                     that is neither its commit nor a retry",
                    other.time()
                )));
            }
            None => false,
        };

        let query = self.query.with_parallelism(&parallelism).map_err(|e| {
            ControllerError::JournalReplay(format!(
                "journaled parallelism does not fit the query: {e}"
            ))
        })?;
        let physical = query.physical();
        let placement = Placement::new(assignment.iter().map(|&w| WorkerId(w)).collect());
        placement.validate(&physical, self.cluster).map_err(|e| {
            ControllerError::JournalReplay(format!("journaled placement is invalid: {e}"))
        })?;
        self.deploy(query, physical, placement, epoch, false)?;
        if committed {
            if let Some(c) = self.replay.pop_front() {
                self.record_replayed(c)?;
            }
        } else {
            // In doubt, rolled forward: we are the surviving controller
            // now — journal the commit live.
            self.record(DecisionRecord::Commit {
                epoch,
                time: self.time,
            })?;
        }
        if matches!(reason, RedeployReason::Scaling) {
            self.events.push(ScalingEvent {
                time: self.time,
                parallelism,
                slots: self.physical.num_tasks(),
            });
            let snap = self.snapshot();
            if let Some(gov) = &mut self.guard {
                gov.on_scaling_deploy(self.time, snap);
            }
        }
        Ok(Some(rung))
    }

    /// Rolls the deployment back to the governor's last-known-good plan
    /// through the two-phase protocol: journal the `Rollback` (restored
    /// plan plus pre-deploy RNG state), deploy under the epoch fence,
    /// journal the `Commit`. A crash between the phases leaves the
    /// `Rollback` at the journal tail; recovery rolls it forward exactly
    /// like an in-doubt `Prepare`.
    fn rollback_redeploy(&mut self, req: &RollbackRequest) -> Result<(), ControllerError> {
        let query = self
            .query
            .with_parallelism(&req.to.parallelism)
            .map_err(|e| {
                ControllerError::InvalidConfig(format!(
                    "rollback target plan is no longer deployable: {e}"
                ))
            })?;
        let physical = query.physical();
        let placement = Placement::new(req.to.assignment.iter().map(|&w| WorkerId(w)).collect());
        placement.validate(&physical, self.cluster).map_err(|e| {
            ControllerError::InvalidConfig(format!(
                "rollback target plan is no longer deployable: {e}"
            ))
        })?;
        let epoch = self.epoch + 1;
        self.epoch = epoch;
        self.record(DecisionRecord::Rollback {
            epoch,
            time: self.time,
            from_epoch: req.regressed.epoch,
            parallelism: req.to.parallelism.clone(),
            assignment: req.to.assignment.clone(),
            rng: self.rng.state(),
        })?;
        self.deploy(query, physical, placement, epoch, true)?;
        self.record(DecisionRecord::Commit {
            epoch,
            time: self.time,
        })?;
        self.finish_rollback(req, epoch);
        Ok(())
    }

    /// Settles a completed rollback: quarantine and cooldown bookkeeping
    /// in the governor, plus a [`RollbackEvent`] on the trace.
    fn finish_rollback(&mut self, req: &RollbackRequest, to_epoch: u64) {
        let cooldown_until = match &mut self.guard {
            Some(gov) => gov.on_rollback(self.time, req),
            None => self.time,
        };
        self.rollback_events.push(RollbackEvent {
            time: self.time,
            from_epoch: req.regressed.epoch,
            to_epoch,
            deployed_at: req.deployed_at,
            degraded_for: self.time - req.deployed_at,
            baseline_tracking: req.baseline_tracking,
            observed_tracking: req.observed_tracking,
            cooldown_until,
        });
    }

    /// Replay counterpart of [`ClosedLoop::rollback_redeploy`]: the
    /// governor re-derived the same verdict the crashed run journaled, so
    /// the cursor's front must be the matching `Rollback`. Deploys
    /// unfenced from the record; a `Rollback` at the journal tail is
    /// rolled forward — its `Commit` is journaled live. An exhausted
    /// cursor means the crashed run died before this verdict: take it
    /// live.
    fn replay_rollback_step(&mut self, req: &RollbackRequest) -> Result<(), ControllerError> {
        let Some(front) = self.replay.front().cloned() else {
            return self.rollback_redeploy(req);
        };
        let DecisionRecord::Rollback {
            epoch,
            time,
            from_epoch,
            parallelism,
            assignment,
            rng,
        } = front.clone()
        else {
            return Err(ControllerError::JournalReplay(format!(
                "governor rollback due at t={:.3}, but the journal's next decision is from \
                 t={:.3}: the replay diverged from the run that wrote the journal",
                self.time,
                front.time()
            )));
        };
        if !replay_due(time, self.time) {
            return Err(ControllerError::JournalReplay(format!(
                "governor rollback due at t={:.3}, but the journaled rollback is from t={time:.3}: \
                 the replay diverged from the run that wrote the journal",
                self.time
            )));
        }
        if parallelism != req.to.parallelism
            || assignment != req.to.assignment
            || from_epoch != req.regressed.epoch
        {
            return Err(ControllerError::JournalReplay(
                "journaled rollback does not match the re-derived governor verdict".into(),
            ));
        }
        self.replay.pop_front();
        self.rng = SmallRng::try_from_state(rng).ok_or_else(|| {
            ControllerError::JournalReplay("journaled RNG state is invalid (all zero)".into())
        })?;
        self.epoch = epoch;
        self.record_replayed(front)?;

        let committed = match self.replay.front() {
            Some(DecisionRecord::Commit { epoch: e, .. }) if *e == epoch => true,
            Some(DecisionRecord::Commit { epoch: e, .. }) => {
                return Err(ControllerError::JournalReplay(format!(
                    "commit epoch {e} does not match rollback epoch {epoch}"
                )));
            }
            Some(other) => {
                return Err(ControllerError::JournalReplay(format!(
                    "rollback (epoch {epoch}) followed by a decision from t={:.3} \
                     that is not its commit",
                    other.time()
                )));
            }
            None => false,
        };
        let query = self.query.with_parallelism(&parallelism).map_err(|e| {
            ControllerError::JournalReplay(format!(
                "journaled parallelism does not fit the query: {e}"
            ))
        })?;
        let physical = query.physical();
        let placement = Placement::new(assignment.iter().map(|&w| WorkerId(w)).collect());
        placement.validate(&physical, self.cluster).map_err(|e| {
            ControllerError::JournalReplay(format!("journaled placement is invalid: {e}"))
        })?;
        self.deploy(query, physical, placement, epoch, false)?;
        if committed {
            if let Some(c) = self.replay.pop_front() {
                self.record_replayed(c)?;
            }
        } else {
            // In doubt, rolled forward: we are the surviving controller
            // now — journal the commit live.
            self.record(DecisionRecord::Commit {
                epoch,
                time: self.time,
            })?;
        }
        self.finish_rollback(req, epoch);
        Ok(())
    }

    /// Applies an admission-controller verdict through the two-phase
    /// protocol: journal the `Shed` (new fraction plus RNG state), fence
    /// the running simulation to the new epoch, set the source-side shed
    /// fraction, journal the `Commit`. No plan changes and no sim swap —
    /// the fence binds on the existing simulation, exactly like a
    /// migration wave. A crash between the phases leaves the `Shed` at
    /// the journal tail; recovery rolls it forward.
    fn shed_redeploy(&mut self, req: &ShedRequest) -> Result<(), ControllerError> {
        let epoch = self.epoch + 1;
        self.epoch = epoch;
        self.record(DecisionRecord::Shed {
            epoch,
            time: self.time,
            fraction: req.fraction,
            rng: self.rng.state(),
        })?;
        self.sim.bind_epoch(&self.fence, epoch).map_err(|e| match e {
            SimError::StaleEpoch { attempted, current } => {
                ControllerError::FencedEpoch { attempted, current }
            }
            other => ControllerError::Sim(other),
        })?;
        let from_fraction = self.sim.shed_fraction();
        self.sim.set_shed_fraction(req.fraction);
        self.record(DecisionRecord::Commit {
            epoch,
            time: self.time,
        })?;
        self.finish_shed(req, epoch, from_fraction);
        Ok(())
    }

    /// Settles an applied shed change: admission-controller bookkeeping
    /// plus a [`ShedEvent`] on the trace. `from_fraction` is the
    /// fraction in force before this change.
    fn finish_shed(&mut self, req: &ShedRequest, epoch: u64, from_fraction: f64) {
        if let Some(shed) = &mut self.shedder {
            shed.on_applied(req.fraction);
        }
        self.shed_events.push(ShedEvent {
            time: self.time,
            epoch,
            from_fraction,
            to_fraction: req.fraction,
            offered: req.offered,
            capacity: req.capacity,
        });
    }

    /// Replay counterpart of [`ClosedLoop::shed_redeploy`]: the admission
    /// controller re-derived the same verdict from the identical metric
    /// stream, so the cursor's front must be the matching `Shed`. A
    /// `Shed` at the journal tail is rolled forward — its `Commit` is
    /// journaled live. An exhausted cursor means the crashed run died
    /// before this verdict: take it live.
    fn replay_shed_step(&mut self, req: &ShedRequest) -> Result<(), ControllerError> {
        let Some(front) = self.replay.front().cloned() else {
            return self.shed_redeploy(req);
        };
        let DecisionRecord::Shed {
            epoch,
            time,
            fraction,
            rng,
        } = front.clone()
        else {
            return Err(ControllerError::JournalReplay(format!(
                "shed change due at t={:.3}, but the journal's next decision is from \
                 t={:.3}: the replay diverged from the run that wrote the journal",
                self.time,
                front.time()
            )));
        };
        if !replay_due(time, self.time) {
            return Err(ControllerError::JournalReplay(format!(
                "shed change due at t={:.3}, but the journaled shed is from t={time:.3}: \
                 the replay diverged from the run that wrote the journal",
                self.time
            )));
        }
        if (fraction - req.fraction).abs() > 1e-12 {
            return Err(ControllerError::JournalReplay(format!(
                "journaled shed fraction {fraction} does not match the re-derived \
                 verdict {}",
                req.fraction
            )));
        }
        self.replay.pop_front();
        self.rng = SmallRng::try_from_state(rng).ok_or_else(|| {
            ControllerError::JournalReplay("journaled RNG state is invalid (all zero)".into())
        })?;
        self.epoch = epoch;
        self.record_replayed(front)?;

        let committed = match self.replay.front() {
            Some(DecisionRecord::Commit { epoch: e, .. }) if *e == epoch => true,
            Some(DecisionRecord::Commit { epoch: e, .. }) => {
                return Err(ControllerError::JournalReplay(format!(
                    "commit epoch {e} does not match shed epoch {epoch}"
                )));
            }
            Some(other) => {
                return Err(ControllerError::JournalReplay(format!(
                    "shed (epoch {epoch}) followed by a decision from t={:.3} \
                     that is not its commit",
                    other.time()
                )));
            }
            None => false,
        };
        self.sim.stamp_epoch(epoch);
        let from_fraction = self.sim.shed_fraction();
        self.sim.set_shed_fraction(fraction);
        if committed {
            if let Some(c) = self.replay.pop_front() {
                self.record_replayed(c)?;
            }
        } else {
            // In doubt, rolled forward: we are the surviving controller
            // now — journal the commit live.
            self.record(DecisionRecord::Commit {
                epoch,
                time: self.time,
            })?;
        }
        self.finish_shed(req, epoch, from_fraction);
        Ok(())
    }
}

/// Shifts a schedule left by `offset` seconds (the new simulation's t=0
/// corresponds to global time `offset`).
fn shift_schedule(schedule: &RateSchedule, offset: f64) -> RateSchedule {
    match schedule {
        RateSchedule::Constant(r) => RateSchedule::Constant(*r),
        RateSchedule::Steps(steps) => {
            let mut shifted: Vec<(f64, f64)> = Vec::new();
            let mut current = steps.first().map(|&(_, r)| r).unwrap_or(0.0);
            for &(t, r) in steps {
                if t <= offset {
                    current = r;
                } else {
                    shifted.push((t - offset, r));
                }
            }
            shifted.insert(0, (0.0, current));
            RateSchedule::Steps(shifted)
        }
        RateSchedule::SquareWave {
            high,
            low,
            period_sec,
        } => {
            // Re-express as steps covering a long horizon.
            let mut steps = Vec::new();
            let horizon = 100.0 * period_sec;
            let mut t = 0.0;
            while t < horizon {
                let global = t + offset;
                let phase = (global / period_sec).floor() as i64;
                let rate = if phase % 2 == 0 { *high } else { *low };
                steps.push((t, rate));
                let next_boundary = ((global / period_sec).floor() + 1.0) * period_sec;
                t = next_boundary - offset;
            }
            RateSchedule::Steps(steps)
        }
        RateSchedule::Program(p) => RateSchedule::Program(p.shifted(offset)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsys_core::SearchConfig;
    use capsys_model::{RateProgram, TaskId, WorkerSpec};
    use capsys_placement::{CapsStrategy, FlinkDefault};
    use capsys_queries::q1_sliding;
    use capsys_sim::{FaultEvent, FaultKind};
    use capsys_util::forall;
    use capsys_util::prop::{ints, vec_of, Config};
    use std::time::Duration;

    fn small_cluster() -> Cluster {
        Cluster::homogeneous(4, WorkerSpec::m5d_2xlarge(8)).unwrap()
    }

    fn fast_ds2() -> Ds2Config {
        Ds2Config {
            activation_period: 20.0,
            policy_interval: 5.0,
            max_parallelism: 8,
            headroom: 1.0,
        }
    }

    #[test]
    fn shift_schedule_preserves_rates() {
        let s = RateSchedule::Steps(vec![(0.0, 10.0), (100.0, 20.0), (200.0, 5.0)]);
        let shifted = shift_schedule(&s, 150.0);
        assert_eq!(shifted.rate_at(0.0), 20.0);
        assert_eq!(shifted.rate_at(49.0), 20.0);
        assert_eq!(shifted.rate_at(50.0), 5.0);
        let w = RateSchedule::SquareWave {
            high: 100.0,
            low: 40.0,
            period_sec: 60.0,
        };
        let ws = shift_schedule(&w, 90.0);
        // Global t=90 is in the low phase (60..120).
        assert_eq!(ws.rate_at(0.0), 40.0);
        assert_eq!(ws.rate_at(29.0), 40.0);
        assert_eq!(ws.rate_at(30.0), 100.0);
    }

    /// Builds a sorted integer-valued step schedule from generated
    /// pairs. Integer-valued times keep float subtraction exact, so the
    /// shift properties below can assert strict equality: for reals,
    /// `(t - a) - b` and `t - (a + b)` differ by an ulp.
    fn steps_from(pairs: &[(u32, u32)]) -> RateSchedule {
        let mut s: Vec<(f64, f64)> = pairs
            .iter()
            .map(|&(t, r)| (t as f64, (r + 1) as f64))
            .collect();
        s.sort_by(|a, b| a.0.total_cmp(&b.0));
        RateSchedule::Steps(s)
    }

    #[test]
    fn prop_shift_by_zero_is_identity() {
        forall!(Config::default().cases(64), (
            pairs in vec_of((ints(0u32..400), ints(0u32..1000)), 1..=6),
            probe in ints(0u32..500),
        ) => {
            let sched = steps_from(pairs);
            let shifted = shift_schedule(&sched, 0.0);
            assert_eq!(
                sched.rate_at(*probe as f64),
                shifted.rate_at(*probe as f64),
                "shift-by-0 changed the rate at t={probe} for {sched:?}"
            );
        });
    }

    #[test]
    fn prop_shifts_compose() {
        forall!(Config::default().cases(64), (
            pairs in vec_of((ints(0u32..400), ints(0u32..1000)), 1..=6),
            a in ints(0u32..200),
            b in ints(0u32..200),
            probe in ints(0u32..500),
        ) => {
            let sched = steps_from(pairs);
            let twice = shift_schedule(&shift_schedule(&sched, *a as f64), *b as f64);
            let once = shift_schedule(&sched, (*a + *b) as f64);
            assert_eq!(
                twice.rate_at(*probe as f64),
                once.rate_at(*probe as f64),
                "shift {a} then {b} != shift {} at t={probe} for {sched:?}",
                a + b
            );
        });
    }

    #[test]
    fn closed_loop_scales_up_on_rate_increase() {
        // Start tiny (parallelism 1 everywhere) and let DS2 grow the job.
        let query = q1_sliding().with_parallelism(&[1, 1, 1, 1]).unwrap();
        let cluster = small_cluster();
        let target = q1_sliding().capacity_rate(&cluster, 0.5).unwrap();
        let strategy = CapsStrategy::default();
        let loop_ = ClosedLoop::new(
            &query,
            &cluster,
            &strategy,
            fast_ds2(),
            SimConfig {
                duration: 1.0,
                warmup: 0.0,
                ..SimConfig::default()
            },
            RateSchedule::Constant(target),
            7,
        )
        .unwrap();
        let trace = loop_.run(300.0).unwrap();
        assert!(trace.num_scalings() >= 1, "DS2 never scaled");
        let final_tasks: usize = trace.final_parallelism.iter().sum();
        assert!(
            final_tasks > 4,
            "parallelism did not grow: {:?}",
            trace.final_parallelism
        );
        // After convergence the job should track the target.
        let late_tp = trace.avg_throughput(200.0, 300.0);
        let late_target = trace.avg_target(200.0, 300.0);
        assert!(
            late_tp >= 0.85 * late_target,
            "converged throughput {late_tp} vs target {late_target}"
        );
    }

    #[test]
    fn closed_loop_with_random_placement_also_runs() {
        let query = q1_sliding().with_parallelism(&[1, 1, 1, 1]).unwrap();
        let cluster = small_cluster();
        let target = q1_sliding().capacity_rate(&cluster, 0.5).unwrap();
        let strategy = FlinkDefault;
        let loop_ = ClosedLoop::new(
            &query,
            &cluster,
            &strategy,
            fast_ds2(),
            SimConfig {
                duration: 1.0,
                warmup: 0.0,
                ..SimConfig::default()
            },
            RateSchedule::Constant(target),
            3,
        )
        .unwrap();
        let trace = loop_.run(200.0).unwrap();
        assert!(!trace.points.is_empty());
    }

    /// Builds a chaos run: q1 at its paper parallelism on 6 workers, a
    /// seeded crash of the worker hosting task 0 at t=60s, recovery
    /// enabled. Returns the victim and the trace.
    fn chaos_run(recovery: RecoveryConfig) -> (WorkerId, ClosedLoopTrace) {
        let query = q1_sliding();
        let cluster = Cluster::homogeneous(6, WorkerSpec::r5d_xlarge(4)).unwrap();
        let target = q1_sliding().capacity_rate(&cluster, 0.5).unwrap();
        let strategy = CapsStrategy::default();
        let loop_ = ClosedLoop::new(
            &query,
            &cluster,
            &strategy,
            Ds2Config {
                activation_period: 60.0,
                ..fast_ds2()
            },
            SimConfig {
                duration: 1.0,
                warmup: 0.0,
                ..SimConfig::default()
            },
            RateSchedule::Constant(target),
            7,
        )
        .unwrap();
        let victim = loop_.placement().worker_of(TaskId(0));
        let plan = FaultPlan::new(vec![FaultEvent {
            time: 60.0,
            kind: FaultKind::Crash(victim),
        }])
        .unwrap();
        let trace = loop_
            .with_fault_plan(plan)
            .unwrap()
            .with_recovery(recovery)
            .run(300.0)
            .unwrap();
        (victim, trace)
    }

    #[test]
    fn chaos_crash_is_detected_and_recovered() {
        let (victim, trace) = chaos_run(RecoveryConfig::default());
        assert_eq!(trace.recovery_events.len(), 1, "one recovery expected");
        let ev = &trace.recovery_events[0];
        assert_eq!(ev.worker, victim);
        assert!(
            ev.detected_at > 60.0,
            "detected before the crash: {}",
            ev.detected_at
        );
        assert!(
            ev.detected_at <= 90.0,
            "detection took too long: {}",
            ev.detected_at
        );
        assert_eq!(ev.plans_tried, 1);
        assert_eq!(ev.rung, LadderRung::Caps);
        // With miss_threshold 2 and 5s windows, declaration trails the
        // first silent heartbeat by one window.
        assert!(ev.detection_lag > 0.0, "no detection lag recorded");
        assert!(ev.time_to_recover >= ev.detection_lag);
        assert_eq!(trace.mttr(), Some(ev.time_to_recover));
        // After recovery settles, the job tracks >= 95% of its target on
        // the surviving workers.
        let tp = trace.avg_throughput(ev.recovered_at + 60.0, 300.0);
        let tgt = trace.avg_target(ev.recovered_at + 60.0, 300.0);
        assert!(
            tp >= 0.95 * tgt,
            "post-recovery throughput {tp} below 95% of target {tgt}"
        );
        // The outage left a visible loss footprint.
        assert!(trace.throughput_loss_area(60.0, ev.recovered_at + 30.0) > 0.0);
    }

    #[test]
    fn chaos_runs_are_deterministic() {
        let (v1, t1) = chaos_run(RecoveryConfig::default());
        let (v2, t2) = chaos_run(RecoveryConfig::default());
        assert_eq!(v1, v2);
        assert_eq!(t1.recovery_events, t2.recovery_events);
        assert_eq!(t1.events, t2.events);
        assert_eq!(t1.points, t2.points);
    }

    #[test]
    fn zero_search_budget_degrades_to_round_robin() {
        // A recovery policy whose CAPS rungs get no time at all must fall
        // through to the round-robin rung, never error.
        let cfg = RecoveryConfig {
            search: SearchConfig {
                time_budget: Some(Duration::ZERO),
                ..SearchConfig::auto_tuned()
            },
            ..RecoveryConfig::default()
        };
        let (victim, trace) = chaos_run(cfg);
        assert_eq!(trace.recovery_events.len(), 1);
        let ev = &trace.recovery_events[0];
        assert_eq!(ev.worker, victim);
        assert_eq!(ev.rung, LadderRung::RoundRobin);
        // Even the degraded plan keeps the job alive.
        let tp = trace.avg_throughput(ev.recovered_at + 60.0, 300.0);
        assert!(tp > 0.0, "round-robin recovery produced no throughput");
    }

    #[test]
    fn activation_period_limits_scaling_frequency() {
        let query = q1_sliding().with_parallelism(&[1, 1, 1, 1]).unwrap();
        let cluster = small_cluster();
        let target = q1_sliding().capacity_rate(&cluster, 0.5).unwrap();
        let strategy = CapsStrategy::default();
        let cfg = Ds2Config {
            activation_period: 1000.0,
            ..fast_ds2()
        };
        let loop_ = ClosedLoop::new(
            &query,
            &cluster,
            &strategy,
            cfg,
            SimConfig {
                duration: 1.0,
                warmup: 0.0,
                ..SimConfig::default()
            },
            RateSchedule::Constant(target),
            7,
        )
        .unwrap();
        let trace = loop_.run(120.0).unwrap();
        // Only the very first evaluation can fire.
        assert!(trace.num_scalings() <= 1);
    }

    // ---- durability ----------------------------------------------------

    /// The chaos scenario of `chaos_run` with a journal attached and an
    /// optional controller kill. Returns the run outcome and the journal
    /// text (which survives the loop's death).
    fn journaled_chaos_run(
        kill: Option<KillPoint>,
    ) -> (Result<ClosedLoopTrace, ControllerError>, String) {
        let query = q1_sliding();
        let cluster = Cluster::homogeneous(6, WorkerSpec::r5d_xlarge(4)).unwrap();
        let target = q1_sliding().capacity_rate(&cluster, 0.5).unwrap();
        let strategy = CapsStrategy::default();
        let loop_ = ClosedLoop::new(
            &query,
            &cluster,
            &strategy,
            Ds2Config {
                activation_period: 60.0,
                ..fast_ds2()
            },
            SimConfig {
                duration: 1.0,
                warmup: 0.0,
                ..SimConfig::default()
            },
            RateSchedule::Constant(target),
            7,
        )
        .unwrap();
        let victim = loop_.placement().worker_of(TaskId(0));
        let mut plan = FaultPlan::new(vec![FaultEvent {
            time: 60.0,
            kind: FaultKind::Crash(victim),
        }])
        .unwrap();
        if let Some(k) = kill {
            plan = plan.with_controller_kill(k).unwrap();
        }
        let (journal, buf) = DecisionJournal::in_memory();
        let result = loop_
            .with_fault_plan(plan)
            .unwrap()
            .with_recovery(RecoveryConfig::default())
            .with_journal(journal)
            .unwrap()
            .run(300.0);
        (result, buf.text())
    }

    /// Recovers from `journal_text` and runs to the scenario's end,
    /// returning the trace and the recovered run's (fresh) journal.
    fn recover_and_finish(journal_text: &str) -> (ClosedLoopTrace, String) {
        let query = q1_sliding();
        let cluster = Cluster::homogeneous(6, WorkerSpec::r5d_xlarge(4)).unwrap();
        let target = q1_sliding().capacity_rate(&cluster, 0.5).unwrap();
        let strategy = CapsStrategy::default();
        let loop_ = ClosedLoop::recover_from_journal(
            &query,
            &cluster,
            &strategy,
            Ds2Config {
                activation_period: 60.0,
                ..fast_ds2()
            },
            SimConfig {
                duration: 1.0,
                warmup: 0.0,
                ..SimConfig::default()
            },
            RateSchedule::Constant(target),
            journal_text,
        )
        .unwrap();
        // The same fault plan the crashed run had, minus its kill.
        let victim = loop_.placement().worker_of(TaskId(0));
        let plan = FaultPlan::new(vec![FaultEvent {
            time: 60.0,
            kind: FaultKind::Crash(victim),
        }])
        .unwrap();
        let (journal, buf) = DecisionJournal::in_memory();
        let trace = loop_
            .with_fault_plan(plan)
            .unwrap()
            .with_recovery(RecoveryConfig::default())
            .with_journal(journal)
            .unwrap()
            .run(300.0)
            .unwrap();
        (trace, buf.text())
    }

    #[test]
    fn journaled_mcts_decision_rederives_byte_identically() {
        // ISSUE acceptance: a Prepare journaled by an MCTS-backed
        // strategy records backend + seed + budget, and re-running the
        // search they describe re-derives the journaled assignment
        // byte-for-byte.
        use capsys_core::{CapsSearch, MctsConfig, SearchBackend};

        let query = q1_sliding().with_parallelism(&[1, 1, 1, 1]).unwrap();
        let cluster = small_cluster();
        let target = q1_sliding().capacity_rate(&cluster, 0.5).unwrap();
        let mcts_search = SearchConfig {
            node_budget: Some(20_000),
            backend: SearchBackend::Mcts(MctsConfig::seeded(0xFEED)),
            ..SearchConfig::auto_tuned()
        };
        let strategy = CapsStrategy::new(mcts_search.clone());
        let loop_ = ClosedLoop::new(
            &query,
            &cluster,
            &strategy,
            fast_ds2(),
            SimConfig {
                duration: 1.0,
                warmup: 0.0,
                ..SimConfig::default()
            },
            RateSchedule::Constant(target),
            7,
        )
        .unwrap();
        let (journal, buf) = DecisionJournal::in_memory();
        loop_.with_journal(journal).unwrap().run(150.0).unwrap();

        let parsed = crate::journal::parse_journal(&buf.text()).unwrap();
        let mut checked = 0;
        for rec in &parsed.records {
            let DecisionRecord::Prepare {
                parallelism,
                assignment,
                rate,
                search,
                ..
            } = rec
            else {
                continue;
            };
            let desc = search
                .as_ref()
                .expect("the CAPS strategy must journal its search descriptor");
            assert_eq!(desc.backend, "mcts");
            assert_eq!(desc.seed, Some(0xFEED));
            assert_eq!(desc.node_budget, Some(20_000));
            // Re-run the journaled search: the descriptor pins backend,
            // seed, and budget; the rest of the configuration comes from
            // the strategy, exactly as recovery reconstructs the loop.
            let q = q1_sliding().with_parallelism(parallelism).unwrap();
            let p = q.physical();
            let loads = q.load_model_at(&p, *rate).unwrap();
            let config = SearchConfig {
                node_budget: desc.node_budget,
                backend: SearchBackend::Mcts(MctsConfig::seeded(desc.seed.unwrap())),
                ..mcts_search.clone()
            };
            let outcome = CapsSearch::new(q.logical(), &p, &cluster, &loads)
                .unwrap()
                .run(&config)
                .unwrap();
            let rederived: Vec<usize> = outcome
                .best_plan()
                .unwrap()
                .assignment()
                .iter()
                .map(|w| w.0)
                .collect();
            assert_eq!(
                &rederived, assignment,
                "journaled MCTS plan must re-derive byte-identically"
            );
            checked += 1;
        }
        assert!(checked >= 1, "scenario journaled no Prepare records");
    }

    #[test]
    fn journal_records_prepare_commit_pairs() {
        let (result, text) = journaled_chaos_run(None);
        result.unwrap();
        let parsed = crate::journal::parse_journal(&text).unwrap();
        assert!(!parsed.torn);
        assert!(matches!(parsed.records[0], DecisionRecord::Init { .. }));
        let mut last_epoch = 0u64;
        let mut prepares = 0;
        let mut i = 1;
        while i < parsed.records.len() {
            match &parsed.records[i] {
                DecisionRecord::Prepare { epoch, .. } => {
                    prepares += 1;
                    assert!(*epoch > last_epoch, "epochs must increase strictly");
                    last_epoch = *epoch;
                    // Every applied prepare is immediately committed.
                    match parsed.records.get(i + 1) {
                        Some(DecisionRecord::Commit { epoch: e, .. }) => assert_eq!(e, epoch),
                        Some(DecisionRecord::Retry { .. }) => {} // abandoned
                        other => panic!("prepare followed by {other:?}"),
                    }
                    i += 2;
                }
                DecisionRecord::Retry { .. } => i += 1,
                other => panic!("unexpected record {other:?}"),
            }
        }
        assert!(prepares >= 1, "the crash recovery must journal a prepare");
    }

    #[test]
    fn kill_at_each_decision_recovers_byte_identically() {
        // The headline property, sampled at three decision points (the
        // exhaustive sweep lives in exp_recovery): a controller killed
        // right after journaling record k, then recovered from the
        // journal, finishes with a byte-identical trace — and writes a
        // byte-identical journal.
        let (baseline, golden_journal) = journaled_chaos_run(None);
        let golden = baseline.unwrap().to_json().to_string();
        let n = golden_journal.lines().count() as u64;
        assert!(n >= 3, "scenario too quiet to test kills ({n} records)");
        // First prepare's sequence number: killing there is a kill
        // between Prepare and Commit.
        let parsed = crate::journal::parse_journal(&golden_journal).unwrap();
        let prepare_seq = parsed
            .records
            .iter()
            .position(|r| matches!(r, DecisionRecord::Prepare { .. }))
            .expect("no prepare in golden journal") as u64;
        for k in [1, prepare_seq, n - 1] {
            let (result, partial) = journaled_chaos_run(Some(KillPoint::AfterRecord(k)));
            match result {
                Err(ControllerError::ControllerKilled { seq, .. }) => assert_eq!(seq, k + 1),
                other => panic!("kill at record {k} did not fire: {other:?}"),
            }
            assert_eq!(
                partial.lines().count() as u64,
                k + 1,
                "journal must hold exactly the records up to the kill"
            );
            let (trace, rewritten) = recover_and_finish(&partial);
            assert_eq!(
                trace.to_json().to_string(),
                golden,
                "recovered trace diverged after kill at record {k}"
            );
            assert_eq!(
                rewritten, golden_journal,
                "recovered journal diverged after kill at record {k}"
            );
        }
    }

    #[test]
    fn kill_between_prepare_and_commit_rolls_forward() {
        let (baseline, golden_journal) = journaled_chaos_run(None);
        let golden = baseline.unwrap().to_json().to_string();
        let parsed = crate::journal::parse_journal(&golden_journal).unwrap();
        let first_epoch = parsed
            .records
            .iter()
            .find_map(|r| match r {
                DecisionRecord::Prepare { epoch, .. } => Some(*epoch),
                _ => None,
            })
            .expect("no prepare in golden journal");
        let (result, partial) = journaled_chaos_run(Some(KillPoint::MidReconfig(first_epoch)));
        assert!(
            matches!(result, Err(ControllerError::ControllerKilled { .. })),
            "mid-reconfiguration kill did not fire"
        );
        // The journal tail is the in-doubt Prepare.
        let tail = crate::journal::parse_journal(&partial).unwrap();
        assert!(
            matches!(tail.records.last(), Some(DecisionRecord::Prepare { epoch, .. }) if *epoch == first_epoch),
            "journal tail is not the prepared epoch"
        );
        // Recovery rolls it forward and the run finishes identically.
        let (trace, rewritten) = recover_and_finish(&partial);
        assert_eq!(trace.to_json().to_string(), golden);
        assert_eq!(rewritten, golden_journal);
    }

    // ---- incremental migration -----------------------------------------

    /// Retained records per key group for the migration scenarios:
    /// sizes the sliding window's state at 100 MB per subtask.
    const RETAINED_RECORDS: f64 = 2e5;

    fn migration_ds2() -> Ds2Config {
        // A huge activation period keeps DS2 quiet: the journal holds
        // only the crash recovery, whichever form it takes.
        Ds2Config {
            activation_period: 1000.0,
            ..fast_ds2()
        }
    }

    fn migration_config() -> MigrationConfig {
        MigrationConfig {
            epsilon: 0.05,
            wave_size: 1,
        }
    }

    /// The chaos scenario with state-transfer charging (and optionally
    /// incremental migration), a journal, and an optional kill.
    fn migration_run(
        kill: Option<KillPoint>,
        incremental: bool,
    ) -> (Result<ClosedLoopTrace, ControllerError>, String) {
        let query = q1_sliding();
        let cluster = Cluster::homogeneous(6, WorkerSpec::r5d_xlarge(4)).unwrap();
        let target = q1_sliding().capacity_rate(&cluster, 0.5).unwrap();
        let strategy = CapsStrategy::default();
        let loop_ = ClosedLoop::new(
            &query,
            &cluster,
            &strategy,
            migration_ds2(),
            SimConfig {
                duration: 1.0,
                warmup: 0.0,
                ..SimConfig::default()
            },
            RateSchedule::Constant(target),
            7,
        )
        .unwrap();
        let victim = loop_.placement().worker_of(TaskId(0));
        let mut plan = FaultPlan::new(vec![FaultEvent {
            time: 60.0,
            kind: FaultKind::Crash(victim),
        }])
        .unwrap();
        if let Some(k) = kill {
            plan = plan.with_controller_kill(k).unwrap();
        }
        let (journal, buf) = DecisionJournal::in_memory();
        let mut loop_ = loop_
            .with_fault_plan(plan)
            .unwrap()
            .with_recovery(RecoveryConfig::default())
            .with_state_transfer(RETAINED_RECORDS)
            .unwrap();
        if incremental {
            loop_ = loop_.with_incremental_migration(migration_config()).unwrap();
        }
        let result = loop_.with_journal(journal).unwrap().run(300.0);
        (result, buf.text())
    }

    /// Recovers the incremental-migration scenario from `journal_text`
    /// and runs to its end.
    fn migration_recover_and_finish(journal_text: &str) -> (ClosedLoopTrace, String) {
        let query = q1_sliding();
        let cluster = Cluster::homogeneous(6, WorkerSpec::r5d_xlarge(4)).unwrap();
        let target = q1_sliding().capacity_rate(&cluster, 0.5).unwrap();
        let strategy = CapsStrategy::default();
        let loop_ = ClosedLoop::recover_from_journal(
            &query,
            &cluster,
            &strategy,
            migration_ds2(),
            SimConfig {
                duration: 1.0,
                warmup: 0.0,
                ..SimConfig::default()
            },
            RateSchedule::Constant(target),
            journal_text,
        )
        .unwrap();
        let victim = loop_.placement().worker_of(TaskId(0));
        let plan = FaultPlan::new(vec![FaultEvent {
            time: 60.0,
            kind: FaultKind::Crash(victim),
        }])
        .unwrap();
        let (journal, buf) = DecisionJournal::in_memory();
        let trace = loop_
            .with_fault_plan(plan)
            .unwrap()
            .with_recovery(RecoveryConfig::default())
            .with_state_transfer(RETAINED_RECORDS)
            .unwrap()
            .with_incremental_migration(migration_config())
            .unwrap()
            .with_journal(journal)
            .unwrap()
            .run(300.0)
            .unwrap();
        (trace, buf.text())
    }

    #[test]
    fn incremental_migration_moves_less_and_pauses_less() {
        let (whole, _) = migration_run(None, false);
        let whole = whole.unwrap();
        let (inc, text) = migration_run(None, true);
        let inc = inc.unwrap();
        // Both recovered the crash exactly once.
        assert_eq!(whole.recovery_events.len(), 1);
        assert_eq!(inc.recovery_events.len(), 1);
        // The whole-plan redeploy reloads every stateful byte; the
        // migration moves only the displaced tasks'.
        assert!(inc.bytes_moved() > 0, "migration moved no state");
        assert!(
            inc.bytes_moved() < whole.bytes_moved(),
            "incremental moved {} bytes, whole-plan restored {}",
            inc.bytes_moved(),
            whole.bytes_moved()
        );
        assert!(whole.downtime() > 0.0, "whole-plan restore paused nothing");
        assert!(
            inc.downtime() < whole.downtime(),
            "incremental downtime {} not below whole-plan {}",
            inc.downtime(),
            whole.downtime()
        );
        // Per-wave accounting sums to the trace total.
        let sum: f64 = inc.migration_waves.iter().map(|w| w.downtime).sum();
        assert_eq!(inc.downtime(), sum);

        // Journal protocol: one MigratePrepare, one MigrateStep per
        // moved task (wave_size 1), one MigrateCommit — and the move
        // set is exactly the tasks whose worker changed relative to the
        // incumbent (the last whole-plan deploy before the migration).
        let parsed = crate::journal::parse_journal(&text).unwrap();
        let mut incumbent = match &parsed.records[0] {
            DecisionRecord::Init { assignment, .. } => assignment.clone(),
            other => panic!("journal does not start with init: {other:?}"),
        };
        let mut migrate = None;
        for r in &parsed.records {
            match r {
                DecisionRecord::Prepare { assignment, .. } => incumbent = assignment.clone(),
                DecisionRecord::MigratePrepare {
                    epoch,
                    assignment,
                    moved,
                    ..
                } => {
                    migrate = Some((*epoch, assignment.clone(), moved.clone()));
                    break;
                }
                _ => {}
            }
        }
        let (migrate_epoch, target_assignment, moved) =
            migrate.expect("no migrate-prepare journaled");
        let steps = parsed
            .records
            .iter()
            .filter(|r| matches!(r, DecisionRecord::MigrateStep { .. }))
            .count();
        assert_eq!(steps, moved.len(), "one step per task at wave_size 1");
        assert_eq!(
            parsed
                .records
                .iter()
                .filter(|r| matches!(r, DecisionRecord::MigrateCommit { .. }))
                .count(),
            1
        );
        assert!(
            !moved.is_empty() && moved.len() < incumbent.len(),
            "migration should move some but not all tasks: {moved:?}"
        );
        assert_eq!(incumbent.len(), target_assignment.len());
        for t in 0..incumbent.len() {
            if moved.contains(&t) {
                assert_ne!(
                    incumbent[t], target_assignment[t],
                    "task {t} journaled as moved but kept its worker"
                );
            } else {
                assert_eq!(
                    incumbent[t], target_assignment[t],
                    "task {t} moved without being journaled"
                );
            }
        }
        // Migration waves land in order, one trace entry each. (Waves
        // from earlier whole-plan restores carry other epochs.)
        let wave_list: Vec<usize> = inc
            .migration_waves
            .iter()
            .filter(|w| w.epoch == migrate_epoch)
            .map(|w| w.wave)
            .collect();
        assert_eq!(wave_list, (0..steps).collect::<Vec<_>>());
    }

    #[test]
    fn whole_plan_restores_are_traced_as_waves() {
        let (whole, text) = migration_run(None, false);
        let whole = whole.unwrap();
        // Every whole-plan deploy — the early DS2 downscale and the
        // crash-recovery redeploy — reloads the full state model. The
        // operator's total state is parallelism-invariant:
        // state_bytes_per_record (4000) x retained records.
        let total_state = (4000.0 * RETAINED_RECORDS) as u64;
        assert_eq!(whole.migration_waves.len(), 2);
        for wave in &whole.migration_waves {
            assert_eq!(wave.wave, 0, "whole-plan restores are single-wave");
            assert_eq!(wave.bytes, total_state);
            assert!(wave.downtime > 0.0, "restore paused nothing: {wave:?}");
            // A restore reloads exactly the stateful tasks: the window
            // operator's subtasks at the parallelism its deploy chose.
            let parsed = crate::journal::parse_journal(&text).unwrap();
            let parallelism = parsed
                .records
                .iter()
                .find_map(|r| match r {
                    DecisionRecord::Prepare {
                        epoch, parallelism, ..
                    } if *epoch == wave.epoch => Some(parallelism.clone()),
                    _ => None,
                })
                .expect("restore wave without a matching prepare");
            assert_eq!(wave.tasks_moved, parallelism[2]);
        }
        let sum: f64 = whole.migration_waves.iter().map(|w| w.downtime).sum();
        assert_eq!(whole.downtime(), sum);
        // The recovery restore completed after the crash at t=60.
        assert!(whole.migration_waves[1].completed_at > 60.0);
    }

    #[test]
    fn no_state_transfer_means_no_waves() {
        let (_, trace) = chaos_run(RecoveryConfig::default());
        assert!(trace.migration_waves.is_empty());
        assert_eq!(trace.downtime(), 0.0);
        assert_eq!(trace.bytes_moved(), 0);
    }

    #[test]
    fn migration_kill_sweep_recovers_byte_identically() {
        // Kill after every migration record — after the MigratePrepare
        // (in-doubt migration rolls forward whole), after each
        // MigrateStep (mid-wave: the remaining waves roll forward), and
        // after the MigrateCommit — plus the journal tail. Every
        // recovery must finish with a byte-identical trace and rewrite
        // a byte-identical journal.
        let (baseline, golden_journal) = migration_run(None, true);
        let golden = baseline.unwrap().to_json().to_string();
        let parsed = crate::journal::parse_journal(&golden_journal).unwrap();
        let n = golden_journal.lines().count() as u64;
        let mut kill_seqs: Vec<u64> = Vec::new();
        let mut migrate_epoch = None;
        for (i, r) in parsed.records.iter().enumerate() {
            match r {
                DecisionRecord::MigratePrepare { epoch, .. } => {
                    migrate_epoch = Some(*epoch);
                    kill_seqs.push(i as u64);
                }
                DecisionRecord::MigrateStep { .. } | DecisionRecord::MigrateCommit { .. } => {
                    kill_seqs.push(i as u64);
                }
                _ => {}
            }
        }
        assert!(
            kill_seqs.len() >= 3,
            "migration journaled too few records to sweep: {kill_seqs:?}"
        );
        kill_seqs.push(n - 1);
        for &k in &kill_seqs {
            let (result, partial) = migration_run(Some(KillPoint::AfterRecord(k)), true);
            match result {
                Err(ControllerError::ControllerKilled { seq, .. }) => assert_eq!(seq, k + 1),
                other => panic!("kill at record {k} did not fire: {other:?}"),
            }
            assert_eq!(
                partial.lines().count() as u64,
                k + 1,
                "journal must hold exactly the records up to the kill"
            );
            let (trace, rewritten) = migration_recover_and_finish(&partial);
            assert_eq!(
                trace.to_json().to_string(),
                golden,
                "recovered trace diverged after kill at record {k}"
            );
            assert_eq!(
                rewritten, golden_journal,
                "recovered journal diverged after kill at record {k}"
            );
        }
        // Mid-reconfiguration kill on the migration's own epoch: the
        // controller dies at the MigratePrepare and the whole migration
        // rolls forward in the recovered run.
        let epoch = migrate_epoch.expect("no migrate-prepare in golden journal");
        let (result, partial) = migration_run(Some(KillPoint::MidReconfig(epoch)), true);
        assert!(
            matches!(result, Err(ControllerError::ControllerKilled { .. })),
            "mid-migration kill did not fire"
        );
        let tail = crate::journal::parse_journal(&partial).unwrap();
        assert!(
            matches!(
                tail.records.last(),
                Some(DecisionRecord::MigratePrepare { epoch: e, .. }) if *e == epoch
            ),
            "journal tail is not the in-doubt migrate-prepare"
        );
        let (trace, rewritten) = migration_recover_and_finish(&partial);
        assert_eq!(trace.to_json().to_string(), golden);
        assert_eq!(rewritten, golden_journal);
    }

    #[test]
    fn migration_builders_validate_their_inputs() {
        let query = q1_sliding();
        let cluster = small_cluster();
        let strategy = CapsStrategy::default();
        let build = || {
            ClosedLoop::new(
                &query,
                &cluster,
                &strategy,
                fast_ds2(),
                SimConfig {
                    duration: 1.0,
                    warmup: 0.0,
                    ..SimConfig::default()
                },
                RateSchedule::Constant(1000.0),
                7,
            )
            .unwrap()
        };
        // Incremental migration without state-transfer charging would
        // migrate zero-byte state: reject it outright.
        assert!(matches!(
            build().with_incremental_migration(MigrationConfig::default()),
            Err(ControllerError::InvalidConfig(_))
        ));
        assert!(matches!(
            build().with_state_transfer(f64::NAN),
            Err(ControllerError::InvalidConfig(_))
        ));
        assert!(matches!(
            build().with_state_transfer(-1.0),
            Err(ControllerError::InvalidConfig(_))
        ));
        let armed = build().with_state_transfer(RETAINED_RECORDS).unwrap();
        assert!(matches!(
            armed.with_incremental_migration(MigrationConfig {
                epsilon: f64::INFINITY,
                wave_size: 1,
            }),
            Err(ControllerError::InvalidConfig(_))
        ));
        let armed = build().with_state_transfer(RETAINED_RECORDS).unwrap();
        assert!(matches!(
            armed.with_incremental_migration(MigrationConfig {
                epsilon: 0.05,
                wave_size: 0,
            }),
            Err(ControllerError::InvalidConfig(_))
        ));
    }

    #[test]
    fn stale_epoch_deployment_is_fenced() {
        // A controller whose fence has been advanced from outside (a
        // newer controller superseded it) must fail its next deployment
        // with FencedEpoch, not retry or deploy.
        let query = q1_sliding().with_parallelism(&[1, 1, 1, 1]).unwrap();
        let cluster = small_cluster();
        let target = q1_sliding().capacity_rate(&cluster, 0.5).unwrap();
        let strategy = CapsStrategy::default();
        let loop_ = ClosedLoop::new(
            &query,
            &cluster,
            &strategy,
            fast_ds2(),
            SimConfig {
                duration: 1.0,
                warmup: 0.0,
                ..SimConfig::default()
            },
            RateSchedule::Constant(target),
            7,
        )
        .unwrap();
        let fence = loop_.fence().clone();
        fence.advance_to(1000).unwrap();
        match loop_.run(300.0) {
            Err(ControllerError::FencedEpoch { attempted, current }) => {
                assert!(attempted <= 1000);
                assert_eq!(current, 1000);
            }
            other => panic!("expected FencedEpoch, got {other:?}"),
        }
    }

    #[test]
    fn recovery_validates_journal_against_inputs() {
        let (result, text) = journaled_chaos_run(None);
        result.unwrap();
        let cluster = Cluster::homogeneous(6, WorkerSpec::r5d_xlarge(4)).unwrap();
        let small = small_cluster();
        let strategy = CapsStrategy::default();
        let cfg = Ds2Config {
            activation_period: 60.0,
            ..fast_ds2()
        };
        let sim_cfg = SimConfig {
            duration: 1.0,
            warmup: 0.0,
            ..SimConfig::default()
        };
        // Wrong worker count.
        let err = ClosedLoop::recover_from_journal(
            &q1_sliding(),
            &small,
            &strategy,
            cfg.clone(),
            sim_cfg.clone(),
            RateSchedule::Constant(1000.0),
            &text,
        )
        .err()
        .expect("recovery on the wrong cluster must fail");
        assert!(matches!(err, ControllerError::JournalReplay(_)), "{err}");
        // Wrong starting parallelism.
        let err = ClosedLoop::recover_from_journal(
            &q1_sliding().with_parallelism(&[1, 1, 1, 1]).unwrap(),
            &cluster,
            &strategy,
            cfg,
            sim_cfg,
            RateSchedule::Constant(1000.0),
            &text,
        )
        .err()
        .expect("recovery with the wrong parallelism must fail");
        assert!(matches!(err, ControllerError::JournalReplay(_)), "{err}");
    }

    /// A governed scenario that reliably rolls back: the model goes
    /// stale at t=70, a rate step at t=80 goads DS2 onto the stale
    /// model, and the governor restores the trusted plan. Returns the
    /// trace and the journal text.
    fn guard_run(seed: u64, guard: bool) -> (ClosedLoopTrace, String) {
        let query = q1_sliding();
        let cluster = Cluster::homogeneous(6, WorkerSpec::r5d_xlarge(4)).unwrap();
        let base = q1_sliding().capacity_rate(&cluster, 0.5).unwrap();
        let strategy = CapsStrategy::default();
        let plan = FaultPlan::new(vec![])
            .unwrap()
            .with_model_skew(ModelSkew {
                time: 70.0,
                factor: 3.5,
            })
            .unwrap();
        let mut loop_ = ClosedLoop::new(
            &query,
            &cluster,
            &strategy,
            Ds2Config {
                activation_period: 60.0,
                ..fast_ds2()
            },
            SimConfig {
                duration: 1.0,
                warmup: 0.0,
                ..SimConfig::default()
            },
            RateSchedule::Steps(vec![(0.0, base), (80.0, 1.8 * base)]),
            seed,
        )
        .unwrap()
        .with_fault_plan(plan)
        .unwrap();
        if guard {
            loop_ = loop_.with_guard(GuardConfig::default()).unwrap();
        }
        let (journal, buf) = DecisionJournal::in_memory();
        let trace = loop_.with_journal(journal).unwrap().run(200.0).unwrap();
        (trace, buf.text())
    }

    #[test]
    fn prop_rollback_keeps_epochs_monotonic_and_seqs_contiguous() {
        forall!(Config::default().cases(6), (
            seed in ints(0u64..1000),
        ) => {
            let (trace, text) = guard_run(*seed, true);
            assert!(
                !trace.rollback_events.is_empty(),
                "scenario must roll back (seed {seed})"
            );
            // Frame level: sequence numbers are contiguous from 0.
            for (i, line) in text.lines().enumerate() {
                let frame = Json::parse(line).unwrap();
                assert_eq!(
                    frame.get("seq").and_then(Json::as_f64),
                    Some(i as f64),
                    "sequence gap at journal line {i} (seed {seed})"
                );
            }
            // Record level: every epoch-burning record — Prepare or
            // Rollback alike — uses a strictly increasing epoch.
            let parsed = crate::journal::parse_journal(&text).unwrap();
            assert!(!parsed.torn);
            let mut last = 0u64;
            let mut saw_rollback = false;
            for rec in &parsed.records {
                let e = match rec {
                    DecisionRecord::Prepare { epoch, .. } => *epoch,
                    DecisionRecord::Rollback { epoch, .. } => {
                        saw_rollback = true;
                        *epoch
                    }
                    _ => continue,
                };
                assert!(
                    e > last,
                    "epoch {e} did not increase past {last} (seed {seed})"
                );
                last = e;
            }
            assert!(saw_rollback, "journal holds no rollback record (seed {seed})");
        });
    }

    #[test]
    fn prop_no_redeploy_inside_cooldown() {
        forall!(Config::default().cases(6), (
            seed in ints(0u64..1000),
        ) => {
            let (trace, _) = guard_run(*seed, true);
            assert!(!trace.rollback_events.is_empty(), "scenario must roll back");
            for rb in &trace.rollback_events {
                for ev in &trace.events {
                    assert!(
                        ev.time <= rb.time + 1e-9 || ev.time + 1e-9 >= rb.cooldown_until,
                        "scaling redeploy at t={} inside cooldown ({}, {}) (seed {seed})",
                        ev.time,
                        rb.time,
                        rb.cooldown_until
                    );
                }
                for other in &trace.rollback_events {
                    assert!(
                        other.time <= rb.time + 1e-9 || other.time + 1e-9 >= rb.cooldown_until,
                        "rollback at t={} inside another rollback's cooldown (seed {seed})",
                        other.time
                    );
                }
            }
        });
    }

    #[test]
    fn prop_quarantined_plan_never_redeployed_before_ttl() {
        forall!(Config::default().cases(6), (
            seed in ints(0u64..1000),
        ) => {
            let (trace, text) = guard_run(*seed, true);
            let parsed = crate::journal::parse_journal(&text).unwrap();
            let ttl = GuardConfig::default().quarantine_ttl;
            for rb in &trace.rollback_events {
                // The regressed plan is the Prepare that burned the
                // rollback's from_epoch.
                let regressed = parsed
                    .records
                    .iter()
                    .find_map(|r| match r {
                        DecisionRecord::Prepare {
                            epoch, parallelism, ..
                        } if *epoch == rb.from_epoch => Some(parallelism.clone()),
                        _ => None,
                    })
                    .expect("rollback's from_epoch has a journaled prepare");
                for ev in &trace.events {
                    if ev.time > rb.time && ev.time < rb.time + ttl {
                        assert_ne!(
                            ev.parallelism, regressed,
                            "quarantined plan redeployed at t={} before its TTL (seed {seed})",
                            ev.time
                        );
                    }
                }
            }
        });
    }

    #[test]
    fn idle_guard_leaves_the_trace_byte_identical() {
        // Healthy scenario (no skew): every canary commits, so the
        // governed run must behave — and serialize — exactly like the
        // unguarded one.
        let run = |guard: bool| {
            let query = q1_sliding().with_parallelism(&[1, 1, 1, 1]).unwrap();
            let cluster = small_cluster();
            let target = q1_sliding().capacity_rate(&cluster, 0.5).unwrap();
            let strategy = CapsStrategy::default();
            let mut loop_ = ClosedLoop::new(
                &query,
                &cluster,
                &strategy,
                fast_ds2(),
                SimConfig {
                    duration: 1.0,
                    warmup: 0.0,
                    ..SimConfig::default()
                },
                RateSchedule::Constant(target),
                7,
            )
            .unwrap();
            if guard {
                loop_ = loop_.with_guard(GuardConfig::default()).unwrap();
            }
            loop_.run(200.0).unwrap()
        };
        let off = run(false);
        let on = run(true);
        assert!(on.num_scalings() >= 1, "scenario must actually reconfigure");
        assert!(on.rollback_events.is_empty(), "healthy canaries must commit");
        assert_eq!(off.to_json().to_string(), on.to_json().to_string());
    }

    #[test]
    fn governed_crash_recovery_is_byte_identical() {
        // Kill the governed scenario right after its first Rollback
        // record: recovery must re-derive the same verdict, finish the
        // interrupted rollback, and reproduce the golden trace and
        // journal byte-for-byte.
        let (golden_trace, golden_journal) = guard_run(7, true);
        assert!(!golden_trace.rollback_events.is_empty());
        let golden = golden_trace.to_json().to_string();
        let parsed = crate::journal::parse_journal(&golden_journal).unwrap();
        let rollback_at = parsed
            .records
            .iter()
            .position(|r| matches!(r, DecisionRecord::Rollback { .. }))
            .expect("governed journal holds a rollback") as u64;

        let rerun = |kill: Option<KillPoint>,
                     journal_text: Option<&str>|
         -> (Result<ClosedLoopTrace, ControllerError>, String) {
            let query = q1_sliding();
            let cluster = Cluster::homogeneous(6, WorkerSpec::r5d_xlarge(4)).unwrap();
            let base = q1_sliding().capacity_rate(&cluster, 0.5).unwrap();
            let strategy = CapsStrategy::default();
            let schedule = RateSchedule::Steps(vec![(0.0, base), (80.0, 1.8 * base)]);
            let ds2 = Ds2Config {
                activation_period: 60.0,
                ..fast_ds2()
            };
            let sim_cfg = SimConfig {
                duration: 1.0,
                warmup: 0.0,
                ..SimConfig::default()
            };
            let loop_ = match journal_text {
                None => ClosedLoop::new(
                    &query, &cluster, &strategy, ds2, sim_cfg, schedule, 7,
                )
                .unwrap(),
                Some(t) => ClosedLoop::recover_from_journal(
                    &query, &cluster, &strategy, ds2, sim_cfg, schedule, t,
                )
                .unwrap(),
            };
            let mut plan = FaultPlan::new(vec![])
                .unwrap()
                .with_model_skew(ModelSkew {
                    time: 70.0,
                    factor: 3.5,
                })
                .unwrap();
            if let Some(k) = kill {
                plan = plan.with_controller_kill(k).unwrap();
            }
            let (journal, buf) = DecisionJournal::in_memory();
            let result = loop_
                .with_fault_plan(plan)
                .unwrap()
                .with_guard(GuardConfig::default())
                .unwrap()
                .with_journal(journal)
                .unwrap()
                .run(200.0);
            (result, buf.text())
        };

        // Die with the Rollback at the journal tail (in doubt).
        let (result, partial) = rerun(Some(KillPoint::AfterRecord(rollback_at)), None);
        assert!(
            matches!(result, Err(ControllerError::ControllerKilled { .. })),
            "kill after the rollback record did not fire"
        );
        let tail = crate::journal::parse_journal(&partial).unwrap();
        assert!(
            matches!(tail.records.last(), Some(DecisionRecord::Rollback { .. })),
            "partial journal does not end at the in-doubt rollback"
        );
        let (recovered, rewritten) = rerun(None, Some(&partial));
        assert_eq!(recovered.unwrap().to_json().to_string(), golden);
        assert_eq!(rewritten, golden_journal);
    }

    /// A flash crowd far beyond any deployable capacity: base rate at
    /// half capacity, one trapezoid episode multiplying it by 8 for a
    /// minute. DS2 is pinned (huge activation period) so overload
    /// protection is the only control that can act. Returns the run
    /// outcome and the journal text.
    fn shed_run(
        kill: Option<KillPoint>,
        journal_text: Option<&str>,
    ) -> (Result<ClosedLoopTrace, ControllerError>, String) {
        let query = q1_sliding();
        let cluster = Cluster::homogeneous(6, WorkerSpec::r5d_xlarge(4)).unwrap();
        let base = q1_sliding().capacity_rate(&cluster, 0.5).unwrap();
        let strategy = CapsStrategy::default();
        let schedule = RateSchedule::Program(RateProgram {
            base,
            origin: 0.0,
            growth_per_sec: 0.0,
            diurnal_amplitude: 0.0,
            diurnal_period: 0.0,
            diurnal_phase: 0.0,
            flashes: vec![capsys_model::FlashCrowd {
                start: 60.0,
                ramp: 5.0,
                hold: 60.0,
                decay: 5.0,
                magnitude: 7.0,
            }],
            horizon: 240.0,
        });
        let ds2 = Ds2Config {
            activation_period: 1e6,
            ..fast_ds2()
        };
        let sim_cfg = SimConfig {
            duration: 1.0,
            warmup: 0.0,
            ..SimConfig::default()
        };
        let loop_ = match journal_text {
            None => {
                ClosedLoop::new(&query, &cluster, &strategy, ds2, sim_cfg, schedule, 7).unwrap()
            }
            Some(t) => ClosedLoop::recover_from_journal(
                &query, &cluster, &strategy, ds2, sim_cfg, schedule, t,
            )
            .unwrap(),
        };
        let mut plan = FaultPlan::new(vec![]).unwrap();
        if let Some(k) = kill {
            plan = plan.with_controller_kill(k).unwrap();
        }
        let (journal, buf) = DecisionJournal::in_memory();
        let result = loop_
            .with_fault_plan(plan)
            .unwrap()
            .with_shedding(ShedConfig::default())
            .unwrap()
            .with_journal(journal)
            .unwrap()
            .run(200.0);
        (result, buf.text())
    }

    #[test]
    fn shedding_engages_and_releases_under_a_flash_crowd() {
        let (result, journal) = shed_run(None, None);
        let trace = result.unwrap();
        assert!(
            !trace.shed_events.is_empty(),
            "an 8x flash crowd must engage overload protection"
        );
        let first = &trace.shed_events[0];
        assert!(
            first.to_fraction > 0.0 && first.to_fraction < 1.0,
            "engage fraction {} out of range",
            first.to_fraction
        );
        assert!(
            first.offered > first.capacity,
            "shedding engaged while offered {} fit capacity {}",
            first.offered,
            first.capacity
        );
        let last = trace.shed_events.last().unwrap();
        assert_eq!(
            last.to_fraction, 0.0,
            "full admission must be restored once the crowd decays"
        );
        assert!(
            trace.time_shedding(200.0) > 0.0,
            "the trace must account the shedding span"
        );
        // While shedding, admitted pressure is relieved: after the first
        // engage, backpressure returns below the engage threshold well
        // before the crowd decays (an unshedded run pins it near 1).
        let engaged_at = first.time;
        assert!(
            trace
                .points
                .iter()
                .any(|p| p.time > engaged_at
                    && p.time < 120.0
                    && p.backpressure < ShedConfig::default().engage_threshold),
            "shedding never relieved backpressure during the crowd"
        );
        // Every shed decision is journaled and committed.
        let parsed = crate::journal::parse_journal(&journal).unwrap();
        let sheds: Vec<u64> = parsed
            .records
            .iter()
            .filter_map(|r| match r {
                DecisionRecord::Shed { epoch, .. } => Some(*epoch),
                _ => None,
            })
            .collect();
        assert_eq!(sheds.len(), trace.shed_events.len());
        for e in sheds {
            assert!(
                parsed
                    .records
                    .iter()
                    .any(|r| matches!(r, DecisionRecord::Commit { epoch, .. } if *epoch == e)),
                "shed epoch {e} has no commit"
            );
        }
    }

    #[test]
    fn idle_shedder_leaves_the_trace_byte_identical() {
        // Healthy scenario: offered load always fits, so the armed
        // admission controller must never act — and the trace must
        // serialize exactly like the unprotected run's.
        let run = |shed: bool| {
            let query = q1_sliding().with_parallelism(&[1, 1, 1, 1]).unwrap();
            let cluster = small_cluster();
            let target = q1_sliding().capacity_rate(&cluster, 0.5).unwrap();
            let strategy = CapsStrategy::default();
            let mut loop_ = ClosedLoop::new(
                &query,
                &cluster,
                &strategy,
                fast_ds2(),
                SimConfig {
                    duration: 1.0,
                    warmup: 0.0,
                    ..SimConfig::default()
                },
                RateSchedule::Constant(target),
                7,
            )
            .unwrap();
            if shed {
                loop_ = loop_.with_shedding(ShedConfig::default()).unwrap();
            }
            loop_.run(200.0).unwrap()
        };
        let off = run(false);
        let on = run(true);
        assert!(on.num_scalings() >= 1, "scenario must actually reconfigure");
        assert!(on.shed_events.is_empty(), "healthy load must not be shed");
        assert_eq!(off.to_json().to_string(), on.to_json().to_string());
    }

    #[test]
    fn shed_crash_recovery_is_byte_identical() {
        // Kill the run right after its first Shed record — the change is
        // in doubt. Recovery must re-derive the same admission verdict,
        // roll the shed forward, and reproduce the golden trace and
        // journal byte-for-byte.
        let (golden_result, golden_journal) = shed_run(None, None);
        let golden_trace = golden_result.unwrap();
        assert!(!golden_trace.shed_events.is_empty());
        let golden = golden_trace.to_json().to_string();
        let shed_at = crate::journal::parse_journal(&golden_journal)
            .unwrap()
            .records
            .iter()
            .position(|r| matches!(r, DecisionRecord::Shed { .. }))
            .expect("journal holds a shed record") as u64;

        let (result, partial) = shed_run(Some(KillPoint::AfterRecord(shed_at)), None);
        assert!(
            matches!(result, Err(ControllerError::ControllerKilled { .. })),
            "kill after the shed record did not fire"
        );
        let tail = crate::journal::parse_journal(&partial).unwrap();
        assert!(
            matches!(tail.records.last(), Some(DecisionRecord::Shed { .. })),
            "partial journal does not end at the in-doubt shed"
        );
        let (recovered, rewritten) = shed_run(None, Some(&partial));
        assert_eq!(recovered.unwrap().to_json().to_string(), golden);
        assert_eq!(rewritten, golden_journal);
    }

    /// An adversarial end-to-end scenario: a [`capsys_sim::WorkloadEngine`]
    /// program (diurnal swing, a flash crowd, organic growth) drives a
    /// loop with scaling, the drift-aware governor, and overload
    /// protection all armed.
    fn hostile_run(
        seed: u64,
        kill: Option<KillPoint>,
        journal_text: Option<&str>,
    ) -> (Result<ClosedLoopTrace, ControllerError>, String) {
        use capsys_sim::{WorkloadConfig, WorkloadEngine};
        let query = q1_sliding();
        let cluster = Cluster::homogeneous(6, WorkerSpec::r5d_xlarge(4)).unwrap();
        let base = q1_sliding().capacity_rate(&cluster, 0.4).unwrap();
        let strategy = CapsStrategy::default();
        let engine = WorkloadEngine::new(WorkloadConfig {
            seed,
            horizon: 200.0,
            base_rate: base,
            diurnal_amplitude: (0.1, 0.3),
            flashes: 1,
            flash_magnitude: (2.0, 5.0),
            growth_per_sec: (0.0, base * 0.002),
            ..WorkloadConfig::default()
        })
        .unwrap();
        let schedule = engine
            .generate(&[OperatorId(0)])
            .unwrap()
            .pop()
            .unwrap()
            .1;
        let ds2 = Ds2Config {
            activation_period: 40.0,
            ..fast_ds2()
        };
        let sim_cfg = SimConfig {
            duration: 1.0,
            warmup: 0.0,
            ..SimConfig::default()
        };
        let loop_ = match journal_text {
            None => ClosedLoop::new(
                &query, &cluster, &strategy, ds2, sim_cfg, schedule, seed,
            )
            .unwrap(),
            Some(t) => ClosedLoop::recover_from_journal(
                &query, &cluster, &strategy, ds2, sim_cfg, schedule, t,
            )
            .unwrap(),
        };
        let mut plan = FaultPlan::new(vec![]).unwrap();
        if let Some(k) = kill {
            plan = plan.with_controller_kill(k).unwrap();
        }
        let (journal, buf) = DecisionJournal::in_memory();
        let result = loop_
            .with_fault_plan(plan)
            .unwrap()
            .with_guard(GuardConfig::default())
            .unwrap()
            .with_shedding(ShedConfig::default())
            .unwrap()
            .with_journal(journal)
            .unwrap()
            .run(200.0);
        (result, buf.text())
    }

    #[test]
    fn prop_hostile_runs_are_sane_and_replay_byte_identically() {
        forall!(Config::default().cases(3), (
            seed in ints(0u64..500),
        ) => {
            let (result, journal_a) = hostile_run(*seed, None, None);
            let trace = result.unwrap();
            // Sanity: hostile traffic never poisons the metric stream.
            for p in &trace.points {
                assert!(p.source_throughput.is_finite() && p.source_throughput >= 0.0);
                assert!(p.target_rate.is_finite() && p.target_rate >= 0.0);
                assert!((0.0..=1.0).contains(&p.backpressure));
                assert!(p.latency.is_finite() && p.latency >= 0.0);
            }
            // (No blanket "no rollbacks" assert here: under diurnal
            // swings DS2 can scale in at a trough, and a plan that then
            // saturates as the cycle swings back up is a *genuine*
            // regression. The flash-crowd/growth false-positive
            // discrimination is pinned by the guard unit tests and the
            // controlled A/B scenarios of `exp_hostile`.)
            let golden = trace.to_json().to_string();
            // Same seed, same world: byte-identical trace and journal.
            let (again, journal_b) = hostile_run(*seed, None, None);
            assert_eq!(again.unwrap().to_json().to_string(), golden);
            assert_eq!(journal_b, journal_a);
            // Crash mid-trace and recover: still byte-identical.
            let records = journal_a.lines().count() as u64;
            if records >= 2 {
                let (dead, partial) =
                    hostile_run(*seed, Some(KillPoint::AfterRecord(records / 2)), None);
                assert!(
                    matches!(dead, Err(ControllerError::ControllerKilled { .. })),
                    "mid-journal kill did not fire (seed {seed})"
                );
                let (recovered, rewritten) = hostile_run(*seed, None, Some(&partial));
                assert_eq!(
                    recovered.unwrap().to_json().to_string(),
                    golden,
                    "crash recovery diverged from the golden hostile run (seed {seed})"
                );
                assert_eq!(rewritten, journal_a);
            }
        });
    }
}
