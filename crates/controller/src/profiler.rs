//! Cost profiling (§5.1).
//!
//! CAPSys profiles a query by deploying the tasks of each operator on a
//! *separate* Task Manager and recording, per operator: CPU utilization,
//! state-backend bytes read/written, and bytes emitted. Dividing by the
//! observed record rate yields per-record unit costs, which are stored
//! and reused on every reconfiguration (profiling runs once).
//!
//! This module reproduces that procedure against the simulator: it
//! builds an isolation cluster with one worker per operator, runs the
//! query at a gentle probe rate, and recovers each operator's
//! [`ResourceProfile`] from worker-level utilization metrics — without
//! peeking at the ground-truth profiles.

use capsys_model::{
    Cluster, LogicalGraph, OperatorId, PhysicalGraph, Placement, ResourceProfile, WorkerId,
    WorkerSpec,
};
use capsys_queries::Query;
use capsys_sim::{SimConfig, Simulation};

use crate::ControllerError;

/// Configuration of the profiling phase.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfilerConfig {
    /// Worker spec of the isolation Task Managers.
    pub worker: WorkerSpec,
    /// Fraction of the isolation cluster's capacity rate used as the
    /// probe rate; keep well below 1 so no operator saturates.
    pub probe_fraction: f64,
    /// Simulated profiling duration, seconds (the paper uses 20 min for
    /// realistic state accumulation; simulations converge much faster).
    pub duration: f64,
    /// Warm-up excluded from measurements, seconds.
    pub warmup: f64,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        ProfilerConfig {
            worker: WorkerSpec::m5d_2xlarge(16),
            probe_fraction: 0.3,
            duration: 60.0,
            warmup: 10.0,
        }
    }
}

/// The result of profiling one query: measured unit costs per operator.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Measured per-operator profiles, indexed by operator id.
    pub profiles: Vec<ResourceProfile>,
    /// The probe rate used, records/s aggregate.
    pub probe_rate: f64,
    /// Observed backpressure during profiling (should be ~0).
    pub backpressure: f64,
}

/// Profiles a query by running each operator on a dedicated worker.
pub fn profile_query(
    query: &Query,
    config: &ProfilerConfig,
) -> Result<ProfileReport, ControllerError> {
    let logical = query.logical();
    let n_ops = logical.num_operators();

    // One isolation worker per operator, sized to host all its tasks.
    let max_par = logical
        .operators()
        .iter()
        .map(|o| o.parallelism)
        .max()
        .unwrap_or(1);
    let spec = WorkerSpec {
        slots: max_par.max(config.worker.slots),
        ..config.worker
    };
    let cluster = Cluster::homogeneous(n_ops, spec).map_err(ControllerError::Model)?;

    let physical = PhysicalGraph::expand(logical);
    let mut assignment = vec![WorkerId(0); physical.num_tasks()];
    for t in physical.tasks() {
        assignment[t.id.0] = WorkerId(t.operator.0);
    }
    let placement = Placement::new(assignment);

    let probe_rate = query
        .capacity_rate(&cluster, config.probe_fraction)
        .map_err(ControllerError::Model)?;
    let schedules = query.schedules(probe_rate);

    let sim_config = SimConfig {
        duration: config.duration,
        warmup: config.warmup,
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(
        logical, &physical, &cluster, &placement, &schedules, sim_config,
    )
    .map_err(ControllerError::Sim)?;
    let report = sim.run();

    // Recover per-operator unit costs from worker-level metrics: worker i
    // hosts exactly the tasks of operator i.
    let mut profiles = Vec::with_capacity(n_ops);
    for op_idx in 0..n_ops {
        let op_id = OperatorId(op_idx);
        let range = physical.operator_tasks(op_id);
        let mut in_rate = 0.0;
        let mut out_rate = 0.0;
        for t in range {
            in_rate += report.task_rates[t].observed_rate;
            out_rate += report.task_rates[t].observed_output_rate;
        }
        let work_rate = in_rate.max(1e-9);
        let cpu_used = report.worker_cpu_util[op_idx] * spec.cpu_cores;
        let io_used = report.worker_io_util[op_idx] * spec.disk_bandwidth;
        // Outbound bytes: measured at the producing worker's NIC. All of
        // this operator's downstream consumers live on other workers, so
        // the NIC sees the full output stream.
        let net_used = report.worker_net_util[op_idx] * spec.network_bandwidth;
        let selectivity = if in_rate > 1e-9 {
            out_rate / in_rate
        } else {
            1.0
        };
        profiles.push(ResourceProfile::new(
            cpu_used / work_rate,
            io_used / work_rate,
            if out_rate > 1e-9 {
                net_used / out_rate
            } else {
                0.0
            },
            selectivity,
        ));
    }

    Ok(ProfileReport {
        profiles,
        probe_rate,
        backpressure: report.avg_backpressure,
    })
}

/// Replaces a logical graph's profiles with measured ones.
pub fn apply_profiles(logical: &LogicalGraph, profiles: &[ResourceProfile]) -> LogicalGraph {
    // `LogicalGraph` has no profile mutator by design; rebuild it.
    let mut b = LogicalGraph::builder(logical.name.clone());
    for (i, op) in logical.operators().iter().enumerate() {
        // Keep burst amplitude from the declared profile: bursts are a
        // workload property the profiler's averages cannot capture.
        let mut p = profiles.get(i).copied().unwrap_or(op.profile);
        p.cpu_burst_amplitude = op.profile.cpu_burst_amplitude;
        b.operator(op.name.clone(), op.kind, op.parallelism, p);
    }
    for e in logical.edges() {
        b.edge(e.from, e.to, e.pattern);
    }
    // The rebuilt graph shares the already-validated source structure, so
    // building cannot fail; keep the declared profiles rather than panic
    // if that invariant is ever broken.
    b.build().unwrap_or_else(|_| logical.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsys_queries::{q1_sliding, q2_join};

    #[test]
    fn profiling_recovers_unit_costs() {
        let q = q1_sliding();
        let report = profile_query(&q, &ProfilerConfig::default()).unwrap();
        assert!(
            report.backpressure < 0.02,
            "probe run saturated: {}",
            report.backpressure
        );
        for (i, op) in q.logical().operators().iter().enumerate() {
            let truth = op.profile;
            let measured = report.profiles[i];
            let close = |a: f64, b: f64, name: &str| {
                if b > 1e-12 {
                    let rel = (a - b).abs() / b;
                    assert!(rel < 0.2, "{}/{name}: measured {a} vs true {b}", op.name);
                }
            };
            close(measured.cpu_per_record, truth.cpu_per_record, "cpu");
            close(
                measured.state_bytes_per_record,
                truth.state_bytes_per_record,
                "io",
            );
            close(measured.selectivity, truth.selectivity, "selectivity");
        }
    }

    #[test]
    fn profiling_measures_output_bytes() {
        let q = q1_sliding();
        let report = profile_query(&q, &ProfilerConfig::default()).unwrap();
        // The window emits 200-byte records (ground truth); measured
        // within tolerance.
        let win = q.logical().operator_by_name("sliding-window").unwrap();
        let measured = report.profiles[win.0].out_bytes_per_record;
        assert!(
            (measured - 200.0).abs() / 200.0 < 0.25,
            "window out bytes measured {measured}"
        );
    }

    #[test]
    fn multi_source_query_profiles_cleanly() {
        let q = q2_join();
        let report = profile_query(&q, &ProfilerConfig::default()).unwrap();
        assert_eq!(report.profiles.len(), q.logical().num_operators());
        let join = q.logical().operator_by_name("tumbling-join").unwrap();
        assert!(report.profiles[join.0].state_bytes_per_record > 1000.0);
    }

    #[test]
    fn apply_profiles_round_trips() {
        let q = q1_sliding();
        let report = profile_query(&q, &ProfilerConfig::default()).unwrap();
        let g = apply_profiles(q.logical(), &report.profiles);
        assert_eq!(g.num_operators(), q.logical().num_operators());
        assert_eq!(g.parallelism_vector(), q.logical().parallelism_vector());
        // Burst amplitude is preserved from the declared profile.
        for (a, b) in g.operators().iter().zip(q.logical().operators()) {
            assert_eq!(a.profile.cpu_burst_amplitude, b.profile.cpu_burst_amplitude);
        }
    }
}
