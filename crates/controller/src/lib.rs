//! The CAPSys end-to-end adaptive resource controller.
//!
//! Glues together the pieces of Figure 6 of the paper:
//!
//! * [`profiler`] — the cost-profiling phase (§5.1): one operator per
//!   worker, unit costs per record recovered from worker metrics;
//! * [`controller`] — the deployment pipeline: profile → DS2 parallelism
//!   → CAPS placement;
//! * [`closed_loop`] — the runtime loop for variable workloads (§6.4):
//!   DS2 re-evaluates every policy interval and reconfigurations re-run
//!   the placement strategy;
//! * [`online`] — online profiling (the §5.1 future-work extension):
//!   effective unit costs tracked from runtime metrics, with drift
//!   detection to trigger re-planning;
//! * [`recovery`] — self-healing under injected faults: heartbeat-based
//!   failure detection, backoff re-placement on the surviving workers,
//!   and a graceful-degradation ladder (CAPS → relaxed CAPS →
//!   round-robin) for when the search budget runs out;
//! * [`guard`] — the reconfiguration safety governor: canary probation
//!   for every scaling redeploy, regression detection against the
//!   pre-deploy baseline (load-normalized by default, so flash crowds
//!   and organic growth are not mistaken for plan regressions),
//!   journaled rollback to the last-known-good plan, TTL-based
//!   quarantine of regressed plans, and exponential cooldown hysteresis
//!   bounding reconfiguration churn;
//! * [`shed`] — overload protection: when measured ingest exceeds the
//!   demonstrated sustainable capacity, a bounded fraction of offered
//!   traffic is shed at the sources (journaled two-phase like any
//!   reconfiguration) and restored hysteretically once the load fits.

#![warn(missing_docs)]
pub mod arbiter;
pub mod closed_loop;
pub mod controller;
pub mod fleet;
pub mod guard;
pub mod journal;
pub mod lease;
pub mod online;
pub mod profiler;
pub mod recovery;
pub mod shed;

pub use arbiter::{Arbiter, ArbiterConfig, Revocation, ShardInfo};
pub use closed_loop::{
    ClosedLoop, ClosedLoopTrace, MigrationConfig, MigrationWave, ScalingEvent, StepReport,
};
pub use fleet::{
    replay_shard, FleetConfig, FleetController, FleetOutcome, FleetWorld, JobSpec,
    RevocationEvent, ShardOutcome, TakeoverEvent, WindowRecord,
};
pub use lease::LeaseTable;
pub use controller::{CapsysConfig, CapsysController, Deployment};
pub use guard::{BaselineMode, GuardConfig, PlanSnapshot, RollbackEvent, SafetyGovernor};
pub use journal::{DecisionJournal, DecisionRecord, ParsedJournal, RedeployReason};
pub use shed::{ShedConfig, ShedController, ShedEvent, ShedRequest};
pub use online::{OnlineProfiler, OnlineProfilerConfig};
pub use profiler::{profile_query, ProfileReport, ProfilerConfig};
pub use recovery::{
    place_with_ladder, place_with_movemin, round_robin_free, Detection, DetectorConfig,
    FailureDetector, LadderRung, RecoveryConfig, RecoveryEvent,
};

use capsys_ds2::Ds2Error;
use capsys_model::ModelError;
use capsys_placement::PlacementError;
use capsys_sim::SimError;

/// Errors produced by the CAPSys controller.
#[derive(Debug, Clone, PartialEq)]
pub enum ControllerError {
    /// An underlying model error.
    Model(ModelError),
    /// A simulator error.
    Sim(SimError),
    /// A DS2 error.
    Ds2(Ds2Error),
    /// A placement-strategy error.
    Placement(PlacementError),
    /// A reconfiguration carried a stale epoch and was fenced off: this
    /// controller is a zombie — another instance (typically one
    /// recovered from the journal) has deployed a newer epoch.
    FencedEpoch {
        /// The epoch this controller attempted to deploy.
        attempted: u64,
        /// The epoch the cluster fence already holds.
        current: u64,
    },
    /// The controller process was killed by an injected
    /// [`capsys_sim::KillPoint`]. The journal written so far survives;
    /// resume with [`ClosedLoop::recover_from_journal`].
    ControllerKilled {
        /// Journal records written before death (the next record would
        /// have had this sequence number).
        seq: u64,
        /// Simulated time of death.
        time: f64,
    },
    /// The write-ahead journal could not be written or read back.
    Journal(String),
    /// A journal replay diverged from the live run it claims to record
    /// (wrong query, mismatched decision times, an impossible record
    /// sequence).
    JournalReplay(String),
    /// A shard write carried a stale lease term and was fenced off: the
    /// writer's lease expired and a standby now holds a newer term. The
    /// control-plane analogue of [`ControllerError::FencedEpoch`].
    LeaseFenced {
        /// The shard whose lease was contested.
        shard: usize,
        /// The term the stale holder attempted to write under.
        attempted: u64,
        /// The term the lease table currently holds.
        current: u64,
    },
    /// A configuration value failed validation.
    InvalidConfig(String),
}

impl std::fmt::Display for ControllerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControllerError::Model(e) => write!(f, "model error: {e}"),
            ControllerError::Sim(e) => write!(f, "simulation error: {e}"),
            ControllerError::Ds2(e) => write!(f, "DS2 error: {e}"),
            ControllerError::Placement(e) => write!(f, "placement error: {e}"),
            ControllerError::FencedEpoch { attempted, current } => write!(
                f,
                "reconfiguration fenced: epoch {attempted} is stale (cluster is at {current}); \
                 this controller has been superseded"
            ),
            ControllerError::ControllerKilled { seq, time } => write!(
                f,
                "controller killed at t={time}s after {seq} journal record(s)"
            ),
            ControllerError::Journal(msg) => write!(f, "journal error: {msg}"),
            ControllerError::JournalReplay(msg) => write!(f, "journal replay error: {msg}"),
            ControllerError::LeaseFenced {
                shard,
                attempted,
                current,
            } => write!(
                f,
                "lease fenced: shard {shard} write under term {attempted} is stale \
                 (lease table is at term {current}); this shard controller has been superseded"
            ),
            ControllerError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl From<capsys_util::journal::JournalError> for ControllerError {
    fn from(e: capsys_util::journal::JournalError) -> Self {
        ControllerError::Journal(e.to_string())
    }
}

impl std::error::Error for ControllerError {}

impl From<ModelError> for ControllerError {
    fn from(e: ModelError) -> Self {
        ControllerError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = ControllerError::from(ModelError::NoSource);
        assert!(e.to_string().contains("model"));
    }
}
