//! The controller's write-ahead decision journal.
//!
//! Every decision the closed loop takes — the initial deployment, each
//! two-phase reconfiguration (`Prepare` then `Commit`), and each failed
//! recovery attempt (`Retry`) — is journaled *before* it takes effect,
//! using the checksummed JSON-lines framing of `capsys_util::journal`.
//! Records carry everything replay needs to reproduce the decision
//! without re-running the placement search: the chosen parallelism and
//! assignment, the ladder rung, the schedule offset (as the decision
//! time), and the controller RNG state *after* the search.
//!
//! The protocol invariants replay relies on:
//!
//! * records appear in decision order with contiguous frame numbers;
//! * the first record is always [`DecisionRecord::Init`];
//! * every applied reconfiguration is a `Prepare(epoch)` immediately
//!   followed by `Commit(epoch)`; a `Prepare` followed by a `Retry` was
//!   *abandoned* (the deployment step failed and the controller backed
//!   off); a `Prepare` at the journal tail is *in doubt* and is rolled
//!   forward on recovery (deploying it is idempotent and deterministic);
//! * a governor rollback is journaled as `Rollback(epoch)` followed by
//!   `Commit(epoch)` — structurally the prepare phase of a two-phase
//!   reconfiguration that restores the last-known-good plan, with the
//!   same tail semantics as `Prepare` (a tail `Rollback` rolls forward);
//! * an overload-shedding change is journaled as `Shed(epoch)` followed
//!   by `Commit(epoch)` — the shed fraction is cluster state (it gates
//!   admitted traffic at the sources), so it moves through the same
//!   two-phase, epoch-fenced protocol; a tail `Shed` rolls forward;
//! * epochs increase strictly: `Init` is epoch 0, the first
//!   reconfiguration epoch 1, and so on; `Rollback` burns a fresh epoch
//!   like any other reconfiguration.
//!
//! RNG state and the run seed are encoded as 16-digit hex strings, not
//! JSON numbers: the JSON layer stores numbers as `f64`, which is exact
//! only to 2^53, and a single flipped low bit in restored RNG state
//! would silently fork the replayed run.

use std::io::Write;

use capsys_placement::SearchDescriptor;
use capsys_util::journal::{read_journal, JournalWriter, SharedBuf};
use capsys_util::json::Json;

use crate::recovery::LadderRung;
use crate::ControllerError;

/// Why a reconfiguration was initiated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedeployReason {
    /// DS2 changed the parallelism recommendation.
    Scaling,
    /// The failure detector demanded a re-placement on the survivors.
    Recovery,
}

impl RedeployReason {
    fn name(&self) -> &'static str {
        match self {
            RedeployReason::Scaling => "scaling",
            RedeployReason::Recovery => "recovery",
        }
    }

    fn from_name(name: &str) -> Option<RedeployReason> {
        match name {
            "scaling" => Some(RedeployReason::Scaling),
            "recovery" => Some(RedeployReason::Recovery),
            _ => None,
        }
    }
}

/// One journaled controller decision.
#[derive(Debug, Clone, PartialEq)]
pub enum DecisionRecord {
    /// The initial deployment (epoch 0): enough to rebuild the loop
    /// without re-running the initial placement search.
    Init {
        /// The run's RNG seed.
        seed: u64,
        /// Query name, to reject replay against the wrong job.
        query: String,
        /// Cluster worker count, likewise.
        workers: usize,
        /// Initial per-operator parallelism.
        parallelism: Vec<usize>,
        /// Initial task-to-worker assignment.
        assignment: Vec<usize>,
        /// RNG state after the initial placement search.
        rng: [u64; 4],
    },
    /// Phase one of a reconfiguration: journaled before the simulator
    /// is touched.
    Prepare {
        /// The reconfiguration's fencing epoch.
        epoch: u64,
        /// Simulated decision time (doubles as the schedule offset of
        /// the replacement simulation).
        time: f64,
        /// Why the reconfiguration happened.
        reason: RedeployReason,
        /// The new per-operator parallelism.
        parallelism: Vec<usize>,
        /// The new task-to-worker assignment.
        assignment: Vec<usize>,
        /// The ladder rung that produced the plan.
        rung: LadderRung,
        /// The aggregate input rate the plan was sized for.
        rate: f64,
        /// RNG state after the placement search.
        rng: [u64; 4],
        /// How the placement search was configured (backend, seed, node
        /// budget), when the strategy ran one. `None` for searchless
        /// strategies and for journals written before this field
        /// existed; with it, an auditor can re-run the identical search
        /// and re-derive the journaled assignment byte-for-byte.
        search: Option<SearchDescriptor>,
    },
    /// Phase two: the reconfiguration of `epoch` was applied.
    Commit {
        /// The epoch being committed.
        epoch: u64,
        /// Simulated commit time.
        time: f64,
    },
    /// Phase one of a governor rollback: the canary plan of
    /// `from_epoch` regressed during probation, and the controller is
    /// restoring the last-known-good plan recorded here. Journaled
    /// before the simulator is touched, followed by a `Commit` of the
    /// same (fresh) epoch once applied — so a kill between the two
    /// rolls forward on recovery exactly like a torn `Prepare`.
    Rollback {
        /// The restore deployment's fencing epoch.
        epoch: u64,
        /// Simulated decision time.
        time: f64,
        /// Epoch of the regressed canary deployment being undone.
        from_epoch: u64,
        /// Per-operator parallelism of the restored plan.
        parallelism: Vec<usize>,
        /// Task-to-worker assignment of the restored plan.
        assignment: Vec<usize>,
        /// RNG state at the decision (rollback runs no search, but the
        /// state is journaled so replay restores it unconditionally).
        rng: [u64; 4],
    },
    /// Phase one of an incremental migration: the controller picked a
    /// minimum-movement target plan and will move `moved` tasks in
    /// waves of `wave_len`, pausing only the wave's tasks while their
    /// state drains. Journaled before the simulator is touched. Like
    /// `Prepare`, a `MigratePrepare` followed by a `Retry` was
    /// abandoned, and one at the journal tail rolls forward.
    MigratePrepare {
        /// The migration's fencing epoch.
        epoch: u64,
        /// Simulated decision time.
        time: f64,
        /// Why the reconfiguration happened.
        reason: RedeployReason,
        /// Per-operator parallelism (unchanged by migration, journaled
        /// for self-containment).
        parallelism: Vec<usize>,
        /// The TARGET task-to-worker assignment.
        assignment: Vec<usize>,
        /// The ladder rung that produced the target plan.
        rung: LadderRung,
        /// Task ids being moved, in ascending order. Waves are
        /// contiguous `wave_len`-sized chunks of this list; per-task
        /// byte counts are re-derived from the deterministic state
        /// model, not journaled.
        moved: Vec<usize>,
        /// Tasks per wave.
        wave_len: usize,
        /// The aggregate input rate the plan was sized for.
        rate: f64,
        /// RNG state after the placement search.
        rng: [u64; 4],
        /// How the placement search was configured; see
        /// [`DecisionRecord::Prepare::search`].
        search: Option<SearchDescriptor>,
    },
    /// Wave `wave` of the migration of `epoch` finished draining and
    /// its tasks now run on their target workers.
    MigrateStep {
        /// The migration's epoch.
        epoch: u64,
        /// Zero-based wave index.
        wave: usize,
        /// Simulated completion time.
        time: f64,
    },
    /// Phase two: every wave of the migration of `epoch` was applied.
    MigrateCommit {
        /// The epoch being committed.
        epoch: u64,
        /// Simulated commit time.
        time: f64,
    },
    /// Phase one of an overload-shedding change: the admission
    /// controller decided to shed `fraction` of offered source traffic
    /// (0 restores full admission). Journaled before the simulator is
    /// touched, followed by a `Commit` of the same (fresh) epoch once
    /// applied — a kill between the two rolls forward on recovery
    /// exactly like a torn `Prepare`.
    Shed {
        /// The shed change's fencing epoch.
        epoch: u64,
        /// Simulated decision time.
        time: f64,
        /// Fraction of offered traffic dropped at the sources, in
        /// `[0, 1)`.
        fraction: f64,
        /// RNG state at the decision (shedding runs no search, but the
        /// state is journaled so replay restores it unconditionally).
        rng: [u64; 4],
    },
    /// A recovery re-placement attempt failed; the controller backed
    /// off (or gave up).
    Retry {
        /// Simulated time of the failed attempt.
        time: f64,
        /// Failed attempts so far for the pending recovery.
        attempts: usize,
        /// Whether the controller gave up (retry budget exhausted).
        gave_up: bool,
        /// When the next attempt is due, unless it gave up.
        next_attempt_at: Option<f64>,
        /// RNG state after the failed placement search.
        rng: [u64; 4],
    },
}

fn hex_u64(v: u64) -> Json {
    Json::Str(format!("{v:016x}"))
}

fn u64_from_hex(v: Option<&Json>, what: &str) -> Result<u64, ControllerError> {
    let s = v
        .and_then(Json::as_str)
        .ok_or_else(|| bad(format!("missing hex field `{what}`")))?;
    u64::from_str_radix(s, 16).map_err(|_| bad(format!("field `{what}` is not a hex u64: {s}")))
}

fn rng_to_json(s: [u64; 4]) -> Json {
    Json::Arr(s.iter().map(|&w| hex_u64(w)).collect())
}

fn rng_from_json(v: Option<&Json>) -> Result<[u64; 4], ControllerError> {
    let arr = v
        .and_then(Json::as_array)
        .ok_or_else(|| bad("missing `rng` state"))?;
    if arr.len() != 4 {
        return Err(bad(format!("rng state has {} words, expected 4", arr.len())));
    }
    let mut out = [0u64; 4];
    for (i, w) in arr.iter().enumerate() {
        out[i] = u64_from_hex(Some(w), "rng")?;
    }
    Ok(out)
}

/// Encodes a search descriptor. Seeds use the hex framing (they are
/// full-width u64s); the node budget fits a JSON number (budgets beyond
/// 2^53 nodes are not representable and not meaningful).
fn search_to_json(s: &SearchDescriptor) -> Json {
    let mut fields = vec![("backend".to_string(), Json::Str(s.backend.clone()))];
    if let Some(seed) = s.seed {
        fields.push(("seed".into(), hex_u64(seed)));
    }
    if let Some(budget) = s.node_budget {
        fields.push(("node_budget".into(), Json::Num(budget as f64)));
    }
    Json::Obj(fields)
}

/// Decodes the optional `search` field. Absent (including journals
/// written before the field existed) is `None`; present-but-malformed
/// is an error, not a silent skip.
fn search_from_json(v: Option<&Json>) -> Result<Option<SearchDescriptor>, ControllerError> {
    let Some(obj) = v else {
        return Ok(None);
    };
    if matches!(obj, Json::Null) {
        return Ok(None);
    }
    let backend = text(obj.get("backend"), "search.backend")?.to_string();
    let seed = match obj.get("seed") {
        Some(Json::Null) | None => None,
        some => Some(u64_from_hex(some, "search.seed")?),
    };
    let node_budget = match obj.get("node_budget") {
        Some(Json::Null) | None => None,
        some => Some(integer(some, "search.node_budget")? as usize),
    };
    Ok(Some(SearchDescriptor {
        backend,
        seed,
        node_budget,
    }))
}

fn usizes_to_json(v: &[usize]) -> Json {
    Json::Arr(v.iter().map(|&x| Json::Num(x as f64)).collect())
}

fn usizes_from_json(v: Option<&Json>, what: &str) -> Result<Vec<usize>, ControllerError> {
    let arr = v
        .and_then(Json::as_array)
        .ok_or_else(|| bad(format!("missing array field `{what}`")))?;
    arr.iter()
        .map(|x| {
            let n = x
                .as_f64()
                .ok_or_else(|| bad(format!("non-numeric entry in `{what}`")))?;
            if n < 0.0 || n.fract() != 0.0 || n > u32::MAX as f64 {
                return Err(bad(format!("entry {n} in `{what}` is not a small integer")));
            }
            Ok(n as usize)
        })
        .collect()
}

fn num(v: Option<&Json>, what: &str) -> Result<f64, ControllerError> {
    v.and_then(Json::as_f64)
        .ok_or_else(|| bad(format!("missing numeric field `{what}`")))
}

fn integer(v: Option<&Json>, what: &str) -> Result<u64, ControllerError> {
    let n = num(v, what)?;
    if n < 0.0 || n.fract() != 0.0 || n > 2f64.powi(53) {
        return Err(bad(format!("field `{what}` is not a non-negative integer: {n}")));
    }
    Ok(n as u64)
}

fn text<'j>(v: Option<&'j Json>, what: &str) -> Result<&'j str, ControllerError> {
    v.and_then(Json::as_str)
        .ok_or_else(|| bad(format!("missing string field `{what}`")))
}

fn bad(msg: impl Into<String>) -> ControllerError {
    ControllerError::Journal(msg.into())
}

impl DecisionRecord {
    /// The simulated time the decision was taken (`Init` is 0).
    pub fn time(&self) -> f64 {
        match self {
            DecisionRecord::Init { .. } => 0.0,
            DecisionRecord::Prepare { time, .. }
            | DecisionRecord::Commit { time, .. }
            | DecisionRecord::Rollback { time, .. }
            | DecisionRecord::MigratePrepare { time, .. }
            | DecisionRecord::MigrateStep { time, .. }
            | DecisionRecord::MigrateCommit { time, .. }
            | DecisionRecord::Shed { time, .. }
            | DecisionRecord::Retry { time, .. } => *time,
        }
    }

    /// Encodes the record as a JSON payload (the `data` of one journal
    /// frame).
    pub fn to_json(&self) -> Json {
        match self {
            DecisionRecord::Init {
                seed,
                query,
                workers,
                parallelism,
                assignment,
                rng,
            } => Json::Obj(vec![
                ("type".into(), Json::Str("init".into())),
                ("seed".into(), hex_u64(*seed)),
                ("query".into(), Json::Str(query.clone())),
                ("workers".into(), Json::Num(*workers as f64)),
                ("parallelism".into(), usizes_to_json(parallelism)),
                ("assignment".into(), usizes_to_json(assignment)),
                ("rng".into(), rng_to_json(*rng)),
            ]),
            DecisionRecord::Prepare {
                epoch,
                time,
                reason,
                parallelism,
                assignment,
                rung,
                rate,
                rng,
                search,
            } => {
                let mut fields = vec![
                    ("type".into(), Json::Str("prepare".into())),
                    ("epoch".into(), Json::Num(*epoch as f64)),
                    ("time".into(), Json::Num(*time)),
                    ("reason".into(), Json::Str(reason.name().into())),
                    ("parallelism".into(), usizes_to_json(parallelism)),
                    ("assignment".into(), usizes_to_json(assignment)),
                    ("rung".into(), Json::Str(rung.name().into())),
                    ("rate".into(), Json::Num(*rate)),
                    ("rng".into(), rng_to_json(*rng)),
                ];
                if let Some(s) = search {
                    fields.push(("search".into(), search_to_json(s)));
                }
                Json::Obj(fields)
            }
            DecisionRecord::Commit { epoch, time } => Json::Obj(vec![
                ("type".into(), Json::Str("commit".into())),
                ("epoch".into(), Json::Num(*epoch as f64)),
                ("time".into(), Json::Num(*time)),
            ]),
            DecisionRecord::Rollback {
                epoch,
                time,
                from_epoch,
                parallelism,
                assignment,
                rng,
            } => Json::Obj(vec![
                ("type".into(), Json::Str("rollback".into())),
                ("epoch".into(), Json::Num(*epoch as f64)),
                ("time".into(), Json::Num(*time)),
                ("from_epoch".into(), Json::Num(*from_epoch as f64)),
                ("parallelism".into(), usizes_to_json(parallelism)),
                ("assignment".into(), usizes_to_json(assignment)),
                ("rng".into(), rng_to_json(*rng)),
            ]),
            DecisionRecord::MigratePrepare {
                epoch,
                time,
                reason,
                parallelism,
                assignment,
                rung,
                moved,
                wave_len,
                rate,
                rng,
                search,
            } => {
                let mut fields = vec![
                    ("type".into(), Json::Str("migrate_prepare".into())),
                    ("epoch".into(), Json::Num(*epoch as f64)),
                    ("time".into(), Json::Num(*time)),
                    ("reason".into(), Json::Str(reason.name().into())),
                    ("parallelism".into(), usizes_to_json(parallelism)),
                    ("assignment".into(), usizes_to_json(assignment)),
                    ("rung".into(), Json::Str(rung.name().into())),
                    ("moved".into(), usizes_to_json(moved)),
                    ("wave_len".into(), Json::Num(*wave_len as f64)),
                    ("rate".into(), Json::Num(*rate)),
                    ("rng".into(), rng_to_json(*rng)),
                ];
                if let Some(s) = search {
                    fields.push(("search".into(), search_to_json(s)));
                }
                Json::Obj(fields)
            }
            DecisionRecord::MigrateStep { epoch, wave, time } => Json::Obj(vec![
                ("type".into(), Json::Str("migrate_step".into())),
                ("epoch".into(), Json::Num(*epoch as f64)),
                ("wave".into(), Json::Num(*wave as f64)),
                ("time".into(), Json::Num(*time)),
            ]),
            DecisionRecord::MigrateCommit { epoch, time } => Json::Obj(vec![
                ("type".into(), Json::Str("migrate_commit".into())),
                ("epoch".into(), Json::Num(*epoch as f64)),
                ("time".into(), Json::Num(*time)),
            ]),
            DecisionRecord::Shed {
                epoch,
                time,
                fraction,
                rng,
            } => Json::Obj(vec![
                ("type".into(), Json::Str("shed".into())),
                ("epoch".into(), Json::Num(*epoch as f64)),
                ("time".into(), Json::Num(*time)),
                ("fraction".into(), Json::Num(*fraction)),
                ("rng".into(), rng_to_json(*rng)),
            ]),
            DecisionRecord::Retry {
                time,
                attempts,
                gave_up,
                next_attempt_at,
                rng,
            } => Json::Obj(vec![
                ("type".into(), Json::Str("retry".into())),
                ("time".into(), Json::Num(*time)),
                ("attempts".into(), Json::Num(*attempts as f64)),
                ("gave_up".into(), Json::Bool(*gave_up)),
                (
                    "next_attempt_at".into(),
                    match next_attempt_at {
                        Some(t) => Json::Num(*t),
                        None => Json::Null,
                    },
                ),
                ("rng".into(), rng_to_json(*rng)),
            ]),
        }
    }

    /// Decodes a record from a journal frame payload.
    pub fn from_json(v: &Json) -> Result<DecisionRecord, ControllerError> {
        match text(v.get("type"), "type")? {
            "init" => Ok(DecisionRecord::Init {
                seed: u64_from_hex(v.get("seed"), "seed")?,
                query: text(v.get("query"), "query")?.to_string(),
                workers: integer(v.get("workers"), "workers")? as usize,
                parallelism: usizes_from_json(v.get("parallelism"), "parallelism")?,
                assignment: usizes_from_json(v.get("assignment"), "assignment")?,
                rng: rng_from_json(v.get("rng"))?,
            }),
            "prepare" => Ok(DecisionRecord::Prepare {
                epoch: integer(v.get("epoch"), "epoch")?,
                time: num(v.get("time"), "time")?,
                reason: RedeployReason::from_name(text(v.get("reason"), "reason")?)
                    .ok_or_else(|| bad("unknown redeploy reason"))?,
                parallelism: usizes_from_json(v.get("parallelism"), "parallelism")?,
                assignment: usizes_from_json(v.get("assignment"), "assignment")?,
                rung: LadderRung::from_name(text(v.get("rung"), "rung")?)
                    .ok_or_else(|| bad("unknown ladder rung"))?,
                rate: num(v.get("rate"), "rate")?,
                rng: rng_from_json(v.get("rng"))?,
                search: search_from_json(v.get("search"))?,
            }),
            "commit" => Ok(DecisionRecord::Commit {
                epoch: integer(v.get("epoch"), "epoch")?,
                time: num(v.get("time"), "time")?,
            }),
            "rollback" => Ok(DecisionRecord::Rollback {
                epoch: integer(v.get("epoch"), "epoch")?,
                time: num(v.get("time"), "time")?,
                from_epoch: integer(v.get("from_epoch"), "from_epoch")?,
                parallelism: usizes_from_json(v.get("parallelism"), "parallelism")?,
                assignment: usizes_from_json(v.get("assignment"), "assignment")?,
                rng: rng_from_json(v.get("rng"))?,
            }),
            "migrate_prepare" => Ok(DecisionRecord::MigratePrepare {
                epoch: integer(v.get("epoch"), "epoch")?,
                time: num(v.get("time"), "time")?,
                reason: RedeployReason::from_name(text(v.get("reason"), "reason")?)
                    .ok_or_else(|| bad("unknown redeploy reason"))?,
                parallelism: usizes_from_json(v.get("parallelism"), "parallelism")?,
                assignment: usizes_from_json(v.get("assignment"), "assignment")?,
                rung: LadderRung::from_name(text(v.get("rung"), "rung")?)
                    .ok_or_else(|| bad("unknown ladder rung"))?,
                moved: usizes_from_json(v.get("moved"), "moved")?,
                wave_len: integer(v.get("wave_len"), "wave_len")? as usize,
                rate: num(v.get("rate"), "rate")?,
                rng: rng_from_json(v.get("rng"))?,
                search: search_from_json(v.get("search"))?,
            }),
            "migrate_step" => Ok(DecisionRecord::MigrateStep {
                epoch: integer(v.get("epoch"), "epoch")?,
                wave: integer(v.get("wave"), "wave")? as usize,
                time: num(v.get("time"), "time")?,
            }),
            "migrate_commit" => Ok(DecisionRecord::MigrateCommit {
                epoch: integer(v.get("epoch"), "epoch")?,
                time: num(v.get("time"), "time")?,
            }),
            "shed" => {
                let fraction = num(v.get("fraction"), "fraction")?;
                if !fraction.is_finite() || !(0.0..1.0).contains(&fraction) {
                    return Err(bad(format!(
                        "shed fraction must be in [0, 1), got {fraction}"
                    )));
                }
                Ok(DecisionRecord::Shed {
                    epoch: integer(v.get("epoch"), "epoch")?,
                    time: num(v.get("time"), "time")?,
                    fraction,
                    rng: rng_from_json(v.get("rng"))?,
                })
            }
            "retry" => Ok(DecisionRecord::Retry {
                time: num(v.get("time"), "time")?,
                attempts: integer(v.get("attempts"), "attempts")? as usize,
                gave_up: v
                    .get("gave_up")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| bad("missing bool field `gave_up`"))?,
                next_attempt_at: match v.get("next_attempt_at") {
                    Some(Json::Null) | None => None,
                    Some(t) => Some(t.as_f64().ok_or_else(|| bad("bad `next_attempt_at`"))?),
                },
                rng: rng_from_json(v.get("rng"))?,
            }),
            other => Err(bad(format!("unknown decision record type `{other}`"))),
        }
    }
}

/// A decision journal parsed back from its serialized text.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedJournal {
    /// The decision records, in order. The first is always `Init`.
    pub records: Vec<DecisionRecord>,
    /// Whether a torn final frame was dropped.
    pub torn: bool,
}

/// The write side of the decision journal: checksummed frames over any
/// `Write` sink, flushed per record.
pub struct DecisionJournal {
    writer: JournalWriter,
}

impl DecisionJournal {
    /// A journal writing to `out`, starting at frame 0.
    pub fn writing_to(out: Box<dyn Write + Send>) -> DecisionJournal {
        DecisionJournal {
            writer: JournalWriter::new(out),
        }
    }

    /// A journal writing to a fresh in-memory buffer; the returned
    /// [`SharedBuf`] stays readable after the journal (and the loop
    /// holding it) is gone — the test analogue of a surviving file.
    pub fn in_memory() -> (DecisionJournal, SharedBuf) {
        let buf = SharedBuf::new();
        (DecisionJournal::writing_to(Box::new(buf.clone())), buf)
    }

    /// A journal appending to the file at `path` (created or truncated).
    pub fn create(path: &std::path::Path) -> Result<DecisionJournal, ControllerError> {
        let file = std::fs::File::create(path)
            .map_err(|e| bad(format!("cannot create journal {}: {e}", path.display())))?;
        Ok(DecisionJournal::writing_to(Box::new(file)))
    }

    /// Appends one decision, flushing the sink. Returns the frame's
    /// sequence number.
    pub fn append(&mut self, rec: &DecisionRecord) -> Result<u64, ControllerError> {
        Ok(self.writer.append(&rec.to_json())?)
    }

    /// The sequence number the next append will get.
    pub fn next_seq(&self) -> u64 {
        self.writer.next_seq()
    }
}

impl std::fmt::Debug for DecisionJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecisionJournal")
            .field("next_seq", &self.next_seq())
            .finish_non_exhaustive()
    }
}

/// Parses a serialized decision journal, tolerating a torn tail.
pub fn parse_journal(textual: &str) -> Result<ParsedJournal, ControllerError> {
    let outcome = read_journal(textual)?;
    let records = outcome
        .records
        .iter()
        .map(DecisionRecord::from_json)
        .collect::<Result<Vec<_>, _>>()?;
    if let Some(first) = records.first() {
        if !matches!(first, DecisionRecord::Init { .. }) {
            return Err(bad("journal does not start with an init record"));
        }
    }
    Ok(ParsedJournal {
        records,
        torn: outcome.torn,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<DecisionRecord> {
        vec![
            DecisionRecord::Init {
                seed: u64::MAX - 3,
                query: "q1-sliding".into(),
                workers: 6,
                parallelism: vec![1, 2, 3, 1],
                assignment: vec![0, 1, 1, 2, 3, 4, 5],
                rng: [u64::MAX, 1, 0x0123_4567_89AB_CDEF, 42],
            },
            DecisionRecord::Prepare {
                epoch: 1,
                time: 65.0,
                reason: RedeployReason::Recovery,
                parallelism: vec![1, 2, 3, 1],
                assignment: vec![1, 1, 2, 2, 3, 4, 5],
                rung: LadderRung::RelaxedCaps,
                rate: 1234.56,
                rng: [9, 8, 7, 6],
                search: Some(SearchDescriptor {
                    backend: "mcts".into(),
                    seed: Some(u64::MAX - 17),
                    node_budget: Some(50_000),
                }),
            },
            DecisionRecord::Commit {
                epoch: 1,
                time: 65.0,
            },
            DecisionRecord::Rollback {
                epoch: 2,
                time: 85.0,
                from_epoch: 1,
                parallelism: vec![1, 2, 3, 1],
                assignment: vec![0, 1, 1, 2, 3, 4, 5],
                rng: [11, 12, 13, u64::MAX - 7],
            },
            DecisionRecord::MigratePrepare {
                epoch: 3,
                time: 92.5,
                reason: RedeployReason::Recovery,
                parallelism: vec![1, 2, 3, 1],
                assignment: vec![0, 1, 2, 2, 3, 4, 5],
                rung: LadderRung::Caps,
                moved: vec![1, 3, 6],
                wave_len: 2,
                rate: 987.0,
                rng: [21, 22, 23, 24],
                search: Some(SearchDescriptor {
                    backend: "dfs".into(),
                    seed: None,
                    node_budget: None,
                }),
            },
            DecisionRecord::MigrateStep {
                epoch: 3,
                wave: 0,
                time: 93.75,
            },
            DecisionRecord::MigrateStep {
                epoch: 3,
                wave: 1,
                time: 95.0,
            },
            DecisionRecord::MigrateCommit {
                epoch: 3,
                time: 95.0,
            },
            DecisionRecord::Shed {
                epoch: 4,
                time: 110.25,
                fraction: 0.375,
                rng: [31, 32, 33, u64::MAX - 11],
            },
            DecisionRecord::Shed {
                epoch: 5,
                time: 140.0,
                fraction: 0.0,
                rng: [41, 42, 43, 44],
            },
            DecisionRecord::Retry {
                time: 70.0,
                attempts: 2,
                gave_up: false,
                next_attempt_at: Some(80.0),
                rng: [5, 5, 5, 5],
            },
            DecisionRecord::Retry {
                time: 90.0,
                attempts: 4,
                gave_up: true,
                next_attempt_at: None,
                rng: [1, 2, 3, 4],
            },
        ]
    }

    #[test]
    fn records_round_trip_through_json() {
        for rec in samples() {
            let back = DecisionRecord::from_json(&rec.to_json()).unwrap();
            assert_eq!(rec, back);
        }
    }

    #[test]
    fn journal_round_trips_through_text() {
        let (mut j, buf) = DecisionJournal::in_memory();
        for (i, rec) in samples().iter().enumerate() {
            assert_eq!(j.append(rec).unwrap(), i as u64);
        }
        let parsed = parse_journal(&buf.text()).unwrap();
        assert!(!parsed.torn);
        assert_eq!(parsed.records, samples());
    }

    #[test]
    fn u64_values_survive_exactly() {
        // f64 would corrupt these; hex framing must not.
        let rec = DecisionRecord::Init {
            seed: (1u64 << 53) + 1,
            query: "q".into(),
            workers: 1,
            parallelism: vec![1],
            assignment: vec![0],
            rng: [u64::MAX, u64::MAX - 1, 1u64 << 63, (1u64 << 53) + 1],
        };
        let back = DecisionRecord::from_json(&rec.to_json()).unwrap();
        assert_eq!(rec, back);
    }

    #[test]
    fn prepare_without_search_field_still_parses() {
        // Journals written before the search descriptor existed must
        // keep parsing; the field reads back as `None`.
        let body = r#"{"type":"prepare","epoch":1,"time":5.0,"reason":"scaling","parallelism":[1],"assignment":[0],"rung":"caps","rate":10,"rng":["0","1","2","3"]}"#;
        let parsed = DecisionRecord::from_json(&Json::parse(body).unwrap()).unwrap();
        match parsed {
            DecisionRecord::Prepare { search, .. } => assert_eq!(search, None),
            other => panic!("parsed to {other:?}"),
        }
    }

    #[test]
    fn malformed_search_descriptor_is_rejected() {
        for body in [
            // backend missing
            r#"{"type":"prepare","epoch":1,"time":5.0,"reason":"scaling","parallelism":[1],"assignment":[0],"rung":"caps","rate":10,"rng":["0","1","2","3"],"search":{"seed":"07"}}"#,
            // non-hex seed
            r#"{"type":"prepare","epoch":1,"time":5.0,"reason":"scaling","parallelism":[1],"assignment":[0],"rung":"caps","rate":10,"rng":["0","1","2","3"],"search":{"backend":"mcts","seed":"zz"}}"#,
            // negative budget
            r#"{"type":"prepare","epoch":1,"time":5.0,"reason":"scaling","parallelism":[1],"assignment":[0],"rung":"caps","rate":10,"rng":["0","1","2","3"],"search":{"backend":"mcts","node_budget":-3}}"#,
        ] {
            assert!(
                DecisionRecord::from_json(&Json::parse(body).unwrap()).is_err(),
                "payload {body} was not rejected"
            );
        }
    }

    #[test]
    fn journal_must_start_with_init() {
        let (mut j, buf) = DecisionJournal::in_memory();
        j.append(&DecisionRecord::Commit {
            epoch: 1,
            time: 5.0,
        })
        .unwrap();
        assert!(parse_journal(&buf.text()).is_err());
    }

    /// A structurally valid WAL frame (correct seq and CRC) around an
    /// arbitrary payload — what a newer or buggy writer might produce.
    fn frame(seq: u64, body: &str) -> String {
        let crc = capsys_util::journal::crc32(body.as_bytes());
        format!("{{\"seq\":{seq},\"crc\":{crc},\"data\":{body}}}\n")
    }

    fn init_body() -> String {
        samples()[0].to_json().to_string()
    }

    #[test]
    fn unknown_record_type_is_a_journal_error() {
        // The frame passes CRC and sequencing; only the decision layer
        // can reject it — and it must do so with an error, not a panic
        // or a silent skip.
        let text = frame(0, &init_body()) + &frame(1, r#"{"type":"defrag","epoch":1}"#);
        match parse_journal(&text) {
            Err(ControllerError::Journal(msg)) => {
                assert!(msg.contains("unknown decision record type"), "{msg}")
            }
            other => panic!("expected a journal error, got {other:?}"),
        }
    }

    #[test]
    fn malformed_payloads_error_cleanly() {
        let cases: &[&str] = &[
            r#"{"type":"prepare"}"#,
            r#"{"type":"commit","epoch":-1,"time":0}"#,
            r#"{"type":"commit","epoch":1.5,"time":0}"#,
            r#"{"type":"migrate_step","epoch":1,"wave":"x","time":0}"#,
            r#"{"type":"migrate_prepare","epoch":1,"time":0}"#,
            r#"{"type":"migrate_commit","time":0}"#,
            r#"{"type":"shed","epoch":1,"time":0,"rng":["0","0","0","0"]}"#,
            r#"{"type":"shed","epoch":1,"time":0,"fraction":1,"rng":["0","0","0","0"]}"#,
            r#"{"type":"shed","epoch":1,"time":0,"fraction":-0.2,"rng":["0","0","0","0"]}"#,
            r#"{"type":"init","seed":"zz","query":"q","workers":1,"parallelism":[],"assignment":[],"rng":["0","0","0","0"]}"#,
            r#"{"type":"init","seed":"0","query":"q","workers":1,"parallelism":[],"assignment":[],"rng":["0","0"]}"#,
            r#"{"type":"retry","time":0,"attempts":1,"gave_up":"yes","next_attempt_at":null,"rng":["0","0","0","0"]}"#,
            r#"{"type":"prepare","epoch":1,"time":0,"reason":"cosmic-rays","parallelism":[1],"assignment":[0],"rung":"caps","rate":1,"rng":["0","0","0","0"]}"#,
            r#"{"type":null}"#,
            "[1,2,3]",
            "\"prepare\"",
            "null",
        ];
        for body in cases {
            let text = frame(0, &init_body()) + &frame(1, body);
            assert!(
                matches!(parse_journal(&text), Err(ControllerError::Journal(_))),
                "payload {body} was not rejected as a journal error"
            );
        }
    }

    #[test]
    fn fuzzed_record_types_never_panic() {
        use capsys_util::forall;
        use capsys_util::prop::{ints, vec_of, Config};
        // Random lowercase tags with no fields behind them: unknown tags
        // fail the type dispatch, known ones fail their first missing
        // field. Either way parsing must return an error, never panic.
        forall!(
            Config::default().cases(64),
            (chars in vec_of(ints(0usize..26), 1..=12)) => {
                let tag: String = chars.iter().map(|&c| (b'a' + c as u8) as char).collect();
                let text = frame(0, &init_body())
                    + &frame(1, &format!("{{\"type\":\"{tag}\"}}"));
                assert!(matches!(
                    parse_journal(&text),
                    Err(ControllerError::Journal(_))
                ));
            }
        );
    }

    /// Satellite fuzz battery: random single-bit flips and truncations
    /// of a valid multi-record journal. Whatever the damage, parsing
    /// must end in exactly one of two outcomes — a clean
    /// [`ControllerError::Journal`] error, or a successful parse whose
    /// records are a *prefix* of the originals (a torn tail dropped).
    /// It must never panic, and it must never accept an altered or
    /// reordered record: a flipped bit cannot survive the CRC, and a
    /// truncated file cannot resequence what remains.
    #[test]
    fn prop_corrupted_journals_error_cleanly_or_drop_a_clean_tail() {
        use capsys_util::forall;
        use capsys_util::prop::{ints, Config};
        let originals = samples();
        let (mut j, buf) = DecisionJournal::in_memory();
        for rec in &originals {
            j.append(rec).unwrap();
        }
        let pristine = buf.text();
        let check_prefix = |damaged: &str, what: &str| {
            match parse_journal(damaged) {
                Err(ControllerError::Journal(_)) => {}
                Ok(parsed) => {
                    assert!(
                        parsed.records.len() <= originals.len()
                            && parsed.records == originals[..parsed.records.len()],
                        "{what}: parse accepted a non-prefix record sequence"
                    );
                }
                Err(other) => panic!("{what}: unexpected error class {other}"),
            }
        };
        forall!(
            Config::default().cases(256),
            (
                pos in ints(0usize..1_000_000),
                bit in ints(0usize..8),
                mode in ints(0usize..3),
            ) => {
                match mode {
                    // Single-bit flip anywhere in the file.
                    0 => {
                        let mut bytes = pristine.clone().into_bytes();
                        let at = pos % bytes.len();
                        bytes[at] ^= 1 << bit;
                        let damaged = String::from_utf8_lossy(&bytes).into_owned();
                        check_prefix(&damaged, "bit flip");
                    }
                    // Truncation at an arbitrary byte (crash mid-write).
                    1 => {
                        let cut = pos % (pristine.len() + 1);
                        check_prefix(&pristine[..cut], "truncation");
                    }
                    // Flip inside the torn region of an already
                    // truncated file: damage stacked on damage.
                    _ => {
                        let cut = 1 + pos % pristine.len();
                        let mut bytes = pristine[..cut].as_bytes().to_vec();
                        let at = (pos / 7) % bytes.len();
                        bytes[at] ^= 1 << bit;
                        let damaged = String::from_utf8_lossy(&bytes).into_owned();
                        check_prefix(&damaged, "truncate+flip");
                    }
                }
            }
        );
    }

    #[test]
    fn garbage_payload_is_rejected() {
        assert!(DecisionRecord::from_json(&Json::Obj(vec![(
            "type".into(),
            Json::Str("mystery".into())
        )]))
        .is_err());
        assert!(DecisionRecord::from_json(&Json::Null).is_err());
    }
}
