//! Online profiling: keeping unit costs fresh at runtime.
//!
//! The paper profiles once, offline, and notes (§5.1): *"If workload
//! characteristics change over time, we could use our current
//! infrastructure to have the Metrics Collector periodically feed
//! metrics to DS2 and CAPS, to support online profiling. We leave this
//! to future work."* This module implements that future work against
//! the simulator's metrics.
//!
//! At runtime, a task's busy time divided by its processed records is
//! its *effective* service time — the offline `cpu_per_record` inflated
//! by whatever contention the task currently suffers. The
//! [`OnlineProfiler`] tracks an exponential moving average of this
//! effective cost (taking, per operator, the *minimum* across tasks,
//! whose least-contended task best approximates the true unit cost) and
//! of the observed selectivity, and reports when they drift far enough
//! from the stored profile that re-planning is warranted.

use capsys_model::{OperatorId, PhysicalGraph, ResourceProfile};
use capsys_sim::TaskRateStats;

use crate::ControllerError;

/// Configuration of the online profiler.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineProfilerConfig {
    /// EMA smoothing factor in `(0, 1]`; higher reacts faster.
    pub alpha: f64,
    /// Relative drift (on CPU cost or selectivity) that triggers a
    /// profile update.
    pub drift_threshold: f64,
    /// Ignore observations from tasks processing fewer records/s than
    /// this (their cost estimates are noise).
    pub min_rate: f64,
}

impl Default for OnlineProfilerConfig {
    fn default() -> Self {
        OnlineProfilerConfig {
            alpha: 0.3,
            drift_threshold: 0.25,
            min_rate: 1.0,
        }
    }
}

impl OnlineProfilerConfig {
    /// Validates the configuration. `alpha` must lie in `(0, 1]`,
    /// `drift_threshold` must be finite and non-negative, and `min_rate`
    /// must be finite and strictly positive — `min_rate` is the sole
    /// guard on the divisions in [`OnlineProfiler::observe`], so a zero
    /// or negative value would let `busy / rate` and `out / in` divide
    /// by zero.
    pub fn validate(&self) -> Result<(), ControllerError> {
        if !(self.alpha > 0.0 && self.alpha <= 1.0) {
            return Err(ControllerError::InvalidConfig(format!(
                "online profiler alpha must be in (0, 1], got {}",
                self.alpha
            )));
        }
        if !self.drift_threshold.is_finite() || self.drift_threshold < 0.0 {
            return Err(ControllerError::InvalidConfig(format!(
                "online profiler drift_threshold must be finite and >= 0, got {}",
                self.drift_threshold
            )));
        }
        if !self.min_rate.is_finite() || self.min_rate <= 0.0 {
            return Err(ControllerError::InvalidConfig(format!(
                "online profiler min_rate must be finite and > 0, got {}",
                self.min_rate
            )));
        }
        Ok(())
    }
}

/// Tracks effective per-operator unit costs from runtime metrics.
#[derive(Debug, Clone)]
pub struct OnlineProfiler {
    config: OnlineProfilerConfig,
    /// Stored (baseline) profiles, indexed by operator id.
    baseline: Vec<ResourceProfile>,
    /// EMA of the effective CPU cost per operator.
    ema_cpu: Vec<Option<f64>>,
    /// EMA of the observed selectivity per operator.
    ema_selectivity: Vec<Option<f64>>,
    observations: usize,
}

impl OnlineProfiler {
    /// Creates a profiler seeded with the offline profiles.
    pub fn new(baseline: Vec<ResourceProfile>, config: OnlineProfilerConfig) -> OnlineProfiler {
        let n = baseline.len();
        OnlineProfiler {
            config,
            baseline,
            ema_cpu: vec![None; n],
            ema_selectivity: vec![None; n],
            observations: 0,
        }
    }

    /// Like [`OnlineProfiler::new`], but validates the configuration
    /// first.
    pub fn checked(
        baseline: Vec<ResourceProfile>,
        config: OnlineProfilerConfig,
    ) -> Result<OnlineProfiler, ControllerError> {
        config.validate()?;
        Ok(OnlineProfiler::new(baseline, config))
    }

    /// Number of metric windows observed so far.
    pub fn observations(&self) -> usize {
        self.observations
    }

    /// The current EMA of the effective CPU cost of an operator, if any
    /// observation has been made.
    pub fn effective_cpu(&self, op: OperatorId) -> Option<f64> {
        self.ema_cpu.get(op.0).copied().flatten()
    }

    /// Folds one metrics window into the EMAs.
    ///
    /// `rates` must be indexed by the task ids of `physical` (the
    /// simulator's report layout).
    pub fn observe(&mut self, physical: &PhysicalGraph, rates: &[TaskRateStats]) {
        self.observations += 1;
        for op_idx in 0..physical.num_operators().min(self.baseline.len()) {
            let range = physical.operator_tasks(OperatorId(op_idx));
            // Effective unit cost: busy seconds per processed record.
            // The least-loaded task of the operator suffers the least
            // contention and is the best estimate of the true cost.
            let mut best_cost: Option<f64> = None;
            let mut in_sum = 0.0;
            let mut out_sum = 0.0;
            for t in range {
                let m = match rates.get(t) {
                    Some(m) => m,
                    None => continue,
                };
                in_sum += m.observed_rate;
                out_sum += m.observed_output_rate;
                // The `> 0.0` guard is belt-and-braces for callers that
                // bypassed `validate()` with a non-positive `min_rate`.
                if m.observed_rate >= self.config.min_rate && m.observed_rate > 0.0 {
                    let cost = m.busy_fraction / m.observed_rate;
                    best_cost = Some(best_cost.map_or(cost, |b: f64| b.min(cost)));
                }
            }
            if let Some(cost) = best_cost {
                let a = self.config.alpha;
                self.ema_cpu[op_idx] =
                    Some(self.ema_cpu[op_idx].map_or(cost, |e| e * (1.0 - a) + cost * a));
            }
            if in_sum >= self.config.min_rate && in_sum > 0.0 {
                let sel = out_sum / in_sum;
                let a = self.config.alpha;
                self.ema_selectivity[op_idx] =
                    Some(self.ema_selectivity[op_idx].map_or(sel, |e| e * (1.0 - a) + sel * a));
            }
        }
    }

    /// Returns refreshed profiles when the observed costs have drifted
    /// beyond the threshold from the stored baseline, `None` otherwise.
    ///
    /// A returned update also becomes the new baseline, so subsequent
    /// drift is measured against it.
    pub fn drifted_profiles(&mut self) -> Option<Vec<ResourceProfile>> {
        let mut drifted = false;
        for (op_idx, base) in self.baseline.iter().enumerate() {
            if let Some(cpu) = self.ema_cpu[op_idx] {
                if base.cpu_per_record > 1e-12 {
                    let rel = (cpu - base.cpu_per_record).abs() / base.cpu_per_record;
                    if rel > self.config.drift_threshold {
                        drifted = true;
                    }
                }
            }
            if let Some(sel) = self.ema_selectivity[op_idx] {
                if base.selectivity > 1e-12 {
                    let rel = (sel - base.selectivity).abs() / base.selectivity;
                    if rel > self.config.drift_threshold {
                        drifted = true;
                    }
                }
            }
        }
        if !drifted {
            return None;
        }
        let updated: Vec<ResourceProfile> = self
            .baseline
            .iter()
            .enumerate()
            .map(|(op_idx, base)| {
                let mut p = *base;
                if let Some(cpu) = self.ema_cpu[op_idx] {
                    p.cpu_per_record = cpu;
                }
                if let Some(sel) = self.ema_selectivity[op_idx] {
                    p.selectivity = sel;
                }
                p
            })
            .collect();
        self.baseline = updated.clone();
        Some(updated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsys_model::{ConnectionPattern, LogicalGraph, OperatorKind, PhysicalGraph};

    fn graph() -> PhysicalGraph {
        let mut b = LogicalGraph::builder("g");
        let s = b.operator(
            "s",
            OperatorKind::Source,
            1,
            ResourceProfile::new(1e-5, 0.0, 1.0, 1.0),
        );
        let m = b.operator(
            "m",
            OperatorKind::Stateless,
            2,
            ResourceProfile::new(1e-3, 0.0, 1.0, 0.5),
        );
        b.edge(s, m, ConnectionPattern::Hash);
        PhysicalGraph::expand(&b.build().unwrap())
    }

    fn stats(rate: f64, busy: f64, sel: f64) -> TaskRateStats {
        TaskRateStats {
            observed_rate: rate,
            true_rate: rate / busy.max(1e-9),
            observed_output_rate: rate * sel,
            true_output_rate: rate * sel / busy.max(1e-9),
            busy_fraction: busy,
        }
    }

    fn baseline() -> Vec<ResourceProfile> {
        vec![
            ResourceProfile::new(1e-5, 0.0, 1.0, 1.0),
            ResourceProfile::new(1e-3, 0.0, 1.0, 0.5),
        ]
    }

    #[test]
    fn stable_costs_do_not_drift() {
        let p = graph();
        let mut prof = OnlineProfiler::new(baseline(), OnlineProfilerConfig::default());
        for _ in 0..10 {
            // Map tasks run at 500 rec/s with busy = 0.5 -> 1e-3 s/rec.
            let rates = vec![
                stats(1000.0, 0.01, 1.0),
                stats(500.0, 0.5, 0.5),
                stats(500.0, 0.5, 0.5),
            ];
            prof.observe(&p, &rates);
        }
        assert!(prof.drifted_profiles().is_none());
        assert!((prof.effective_cpu(capsys_model::OperatorId(1)).unwrap() - 1e-3).abs() < 1e-9);
    }

    #[test]
    fn cost_increase_triggers_update() {
        let p = graph();
        let mut prof = OnlineProfiler::new(baseline(), OnlineProfilerConfig::default());
        for _ in 0..10 {
            // Records became twice as expensive: busy 1.0 at 500 rec/s.
            let rates = vec![
                stats(1000.0, 0.01, 1.0),
                stats(500.0, 1.0, 0.5),
                stats(500.0, 1.0, 0.5),
            ];
            prof.observe(&p, &rates);
        }
        let updated = prof.drifted_profiles().expect("drift detected");
        assert!((updated[1].cpu_per_record - 2e-3).abs() < 2e-4);
        // The update becomes the new baseline: no immediate re-trigger.
        assert!(prof.drifted_profiles().is_none());
    }

    #[test]
    fn selectivity_drift_triggers_update() {
        let p = graph();
        let mut prof = OnlineProfiler::new(baseline(), OnlineProfilerConfig::default());
        for _ in 0..10 {
            let rates = vec![
                stats(1000.0, 0.01, 1.0),
                stats(500.0, 0.5, 0.9),
                stats(500.0, 0.5, 0.9),
            ];
            prof.observe(&p, &rates);
        }
        let updated = prof.drifted_profiles().expect("selectivity drift");
        assert!((updated[1].selectivity - 0.9).abs() < 0.05);
    }

    #[test]
    fn least_contended_task_estimates_cost() {
        // One task heavily contended (slow), one clean: the profiler
        // should learn the clean task's cost.
        let p = graph();
        let mut prof = OnlineProfiler::new(baseline(), OnlineProfilerConfig::default());
        for _ in 0..5 {
            let rates = vec![
                stats(1000.0, 0.01, 1.0),
                stats(250.0, 1.0, 0.5), // contended: 4e-3 s/rec effective
                stats(500.0, 0.5, 0.5), // clean: 1e-3 s/rec
            ];
            prof.observe(&p, &rates);
        }
        let cpu = prof.effective_cpu(capsys_model::OperatorId(1)).unwrap();
        assert!(
            (cpu - 1e-3).abs() < 1e-9,
            "expected clean estimate, got {cpu}"
        );
    }

    #[test]
    fn config_validation_rejects_degenerate_values() {
        let ok = OnlineProfilerConfig::default();
        assert!(ok.validate().is_ok());
        for bad in [
            OnlineProfilerConfig { alpha: 0.0, ..ok.clone() },
            OnlineProfilerConfig { alpha: 1.5, ..ok.clone() },
            OnlineProfilerConfig { alpha: f64::NAN, ..ok.clone() },
            OnlineProfilerConfig { drift_threshold: -0.1, ..ok.clone() },
            OnlineProfilerConfig { drift_threshold: f64::INFINITY, ..ok.clone() },
            OnlineProfilerConfig { min_rate: 0.0, ..ok.clone() },
            OnlineProfilerConfig { min_rate: -5.0, ..ok.clone() },
            OnlineProfilerConfig { min_rate: f64::NAN, ..ok.clone() },
        ] {
            let err = OnlineProfiler::checked(baseline(), bad.clone())
                .err()
                .unwrap_or_else(|| panic!("config {bad:?} must be rejected"));
            assert!(matches!(err, crate::ControllerError::InvalidConfig(_)));
        }
    }

    #[test]
    fn zero_min_rate_never_divides_by_zero() {
        // Even with a bypassed validation (min_rate = 0), idle tasks
        // must not poison the EMAs with NaN/inf.
        let p = graph();
        let cfg = OnlineProfilerConfig {
            min_rate: 0.0,
            ..OnlineProfilerConfig::default()
        };
        let mut prof = OnlineProfiler::new(baseline(), cfg);
        let rates = vec![
            stats(1000.0, 0.01, 1.0),
            stats(0.0, 0.0, 0.5),
            stats(0.0, 0.0, 0.5),
        ];
        prof.observe(&p, &rates);
        assert!(prof.effective_cpu(capsys_model::OperatorId(1)).is_none());
        assert!(prof.drifted_profiles().is_none());
    }

    #[test]
    fn idle_tasks_are_ignored() {
        let p = graph();
        let mut prof = OnlineProfiler::new(baseline(), OnlineProfilerConfig::default());
        let rates = vec![
            stats(1000.0, 0.01, 1.0),
            stats(0.0, 0.0, 0.5),
            stats(0.0, 0.0, 0.5),
        ];
        prof.observe(&p, &rates);
        assert!(prof.effective_cpu(capsys_model::OperatorId(1)).is_none());
        assert_eq!(prof.observations(), 1);
    }
}
