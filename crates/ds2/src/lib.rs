//! The DS2 auto-scaling controller.
//!
//! A re-implementation of the scaling model of *"Three steps is all you
//! need: fast, accurate, automatic scaling decisions for distributed
//! streaming dataflows"* (Kalavri et al., OSDI 2018), which the CAPSys
//! paper uses as its elasticity controller (§5.1).
//!
//! DS2 computes, for every operator, the minimal parallelism that can
//! sustain the target source rates, using each task's **true rates** —
//! the rate a task could sustain if it were never idle — instead of its
//! observed rates:
//!
//! 1. source operators emit their target rates;
//! 2. walking the dataflow in topological order, each operator's target
//!    input rate is the sum of its upstream operators' target output
//!    rates;
//! 3. the operator's optimal parallelism is
//!    `ceil(target input rate / true processing rate per task)`, and its
//!    target output rate follows from its measured selectivity.
//!
//! The quality of the decision therefore depends directly on the quality
//! of the measured true rates — which is exactly the coupling the CAPSys
//! paper exploits: a contention-heavy placement depresses true rates and
//! makes DS2 overshoot (§6.4).

#![warn(missing_docs)]
use std::collections::HashMap;

use capsys_model::{LogicalGraph, ModelError, OperatorId, PhysicalGraph, TaskId};
use capsys_sim::TaskRateStats;

/// Configuration of the DS2 controller.
#[derive(Debug, Clone, PartialEq)]
pub struct Ds2Config {
    /// Time after a reconfiguration before DS2 acts again, seconds
    /// (paper §6.4: 90 s).
    pub activation_period: f64,
    /// How often the policy is evaluated, seconds (paper §6.4: 5 s).
    pub policy_interval: f64,
    /// Upper bound on any operator's parallelism.
    pub max_parallelism: usize,
    /// Multiplier on required rates (1.0 = the exact DS2 model).
    pub headroom: f64,
}

impl Default for Ds2Config {
    fn default() -> Self {
        Ds2Config {
            activation_period: 90.0,
            policy_interval: 5.0,
            max_parallelism: 64,
            headroom: 1.0,
        }
    }
}

/// Errors produced by the DS2 controller.
#[derive(Debug, Clone, PartialEq)]
pub enum Ds2Error {
    /// An underlying model error.
    Model(ModelError),
    /// The metrics vector does not match the physical graph.
    MetricsMismatch {
        /// Number of per-task metric entries supplied.
        metrics: usize,
        /// Number of tasks in the physical graph.
        tasks: usize,
    },
    /// A source operator has no target rate.
    MissingTarget(String),
}

impl std::fmt::Display for Ds2Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Ds2Error::Model(e) => write!(f, "model error: {e}"),
            Ds2Error::MetricsMismatch { metrics, tasks } => {
                write!(
                    f,
                    "got metrics for {metrics} tasks but the graph has {tasks}"
                )
            }
            Ds2Error::MissingTarget(name) => {
                write!(f, "source operator `{name}` has no target rate")
            }
        }
    }
}

impl std::error::Error for Ds2Error {}

impl From<ModelError> for Ds2Error {
    fn from(e: ModelError) -> Self {
        Ds2Error::Model(e)
    }
}

/// The outcome of one DS2 policy evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingDecision {
    /// Recommended parallelism per operator, indexed by operator id.
    pub parallelism: Vec<usize>,
    /// Whether the recommendation differs from the current deployment.
    pub changed: bool,
    /// The target input rate DS2 derived for each operator.
    pub target_input: Vec<f64>,
    /// The per-task true processing rate DS2 measured for each operator.
    pub true_rate_per_task: Vec<f64>,
}

impl ScalingDecision {
    /// Total number of task slots the decision requires.
    pub fn total_tasks(&self) -> usize {
        self.parallelism.iter().sum()
    }
}

/// The DS2 scaling controller.
#[derive(Debug, Clone, Default)]
pub struct Ds2Controller {
    /// Controller configuration.
    pub config: Ds2Config,
}

impl Ds2Controller {
    /// Creates a controller with the given configuration.
    pub fn new(config: Ds2Config) -> Self {
        Ds2Controller { config }
    }

    /// Computes the optimal parallelism per operator.
    ///
    /// `rates` holds one [`TaskRateStats`] per task of `physical` (as
    /// produced by the simulator's report); `source_targets` gives the
    /// desired aggregate rate of each source operator.
    pub fn decide(
        &self,
        logical: &LogicalGraph,
        physical: &PhysicalGraph,
        rates: &[TaskRateStats],
        source_targets: &HashMap<OperatorId, f64>,
    ) -> Result<ScalingDecision, Ds2Error> {
        if rates.len() != physical.num_tasks() {
            return Err(Ds2Error::MetricsMismatch {
                metrics: rates.len(),
                tasks: physical.num_tasks(),
            });
        }
        for src in logical.sources() {
            if !source_targets.contains_key(&src) {
                return Err(Ds2Error::MissingTarget(logical.operator(src).name.clone()));
            }
        }

        let n_ops = logical.num_operators();
        let mut true_rate = vec![0.0f64; n_ops];
        let mut selectivity = vec![1.0f64; n_ops];
        for op_idx in 0..n_ops {
            let op_id = OperatorId(op_idx);
            let range = physical.operator_tasks(op_id);
            let n = range.len().max(1) as f64;
            let mut rate_sum = 0.0;
            let mut in_sum = 0.0;
            let mut out_sum = 0.0;
            for t in range {
                let m = &rates[t];
                rate_sum += m.true_rate;
                in_sum += m.observed_rate;
                out_sum += m.observed_output_rate;
            }
            true_rate[op_idx] = rate_sum / n;
            selectivity[op_idx] = if in_sum > 1e-9 {
                out_sum / in_sum
            } else {
                logical.operator(op_id).profile.selectivity
            };
        }

        let mut target_input = vec![0.0f64; n_ops];
        let mut target_output = vec![0.0f64; n_ops];
        let mut parallelism = vec![1usize; n_ops];
        for &op_id in logical.topological_order() {
            let op = logical.operator(op_id);
            let idx = op_id.0;
            if op.kind.is_source() {
                target_output[idx] = source_targets[&op_id];
                target_input[idx] = target_output[idx];
            } else {
                let mut input = 0.0;
                for e in logical.in_edges(op_id) {
                    input += target_output[e.from.0];
                }
                target_input[idx] = input;
                target_output[idx] = input * selectivity[idx];
            }
            let required = target_input[idx] * self.config.headroom;
            parallelism[idx] = if true_rate[idx] > 1e-9 {
                ((required / true_rate[idx]).ceil() as usize).clamp(1, self.config.max_parallelism)
            } else if required > 0.0 {
                // No capacity information: be conservative but bounded.
                self.config
                    .max_parallelism
                    .min(physical.parallelism(op_id).max(1))
            } else {
                1
            };
        }

        let current = physical.parallelism_vector();
        let changed = parallelism != current;
        Ok(ScalingDecision {
            parallelism,
            changed,
            target_input,
            true_rate_per_task: true_rate,
        })
    }

    /// Convenience wrapper building per-task stats from uniform
    /// per-operator true rates (useful in tests and analytic callers).
    pub fn decide_from_op_rates(
        &self,
        logical: &LogicalGraph,
        physical: &PhysicalGraph,
        op_true_rates: &[f64],
        source_targets: &HashMap<OperatorId, f64>,
    ) -> Result<ScalingDecision, Ds2Error> {
        let rates: Vec<TaskRateStats> = (0..physical.num_tasks())
            .map(|t| {
                let op = physical.task_operator(TaskId(t));
                let sel = logical.operator(op).profile.selectivity;
                let r = op_true_rates.get(op.0).copied().unwrap_or(0.0);
                TaskRateStats {
                    observed_rate: r,
                    true_rate: r,
                    observed_output_rate: r * sel,
                    true_output_rate: r * sel,
                    busy_fraction: 1.0,
                }
            })
            .collect();
        self.decide(logical, physical, &rates, source_targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsys_model::{ConnectionPattern, OperatorKind, ResourceProfile};

    fn pipeline(pars: &[usize], selectivities: &[f64]) -> (LogicalGraph, PhysicalGraph) {
        let mut b = LogicalGraph::builder("p");
        let mut prev = None;
        for (i, (&p, &sel)) in pars.iter().zip(selectivities).enumerate() {
            let kind = if i == 0 {
                OperatorKind::Source
            } else if i + 1 == pars.len() {
                OperatorKind::Sink
            } else {
                OperatorKind::Stateless
            };
            let id = b.operator(
                format!("op{i}"),
                kind,
                p,
                ResourceProfile::new(1e-4, 0.0, 10.0, sel),
            );
            if let Some(pr) = prev {
                b.edge(pr, id, ConnectionPattern::Hash);
            }
            prev = Some(id);
        }
        let g = b.build().unwrap();
        let p = PhysicalGraph::expand(&g);
        (g, p)
    }

    fn targets(g: &LogicalGraph, rate: f64) -> HashMap<OperatorId, f64> {
        g.sources().into_iter().map(|s| (s, rate)).collect()
    }

    #[test]
    fn scales_to_sustain_target() {
        let (g, p) = pipeline(&[1, 1, 1], &[1.0, 1.0, 1.0]);
        // Each map task can do 500 rec/s; target 2000 -> need 4 tasks.
        let ds2 = Ds2Controller::default();
        let d = ds2
            .decide_from_op_rates(&g, &p, &[10_000.0, 500.0, 10_000.0], &targets(&g, 2000.0))
            .unwrap();
        assert_eq!(d.parallelism[1], 4);
        assert!(d.changed);
        assert_eq!(d.target_input[1], 2000.0);
    }

    #[test]
    fn selectivity_reduces_downstream_requirements() {
        let (g, p) = pipeline(&[1, 1, 1], &[1.0, 0.1, 1.0]);
        // Map keeps 10%: the sink sees 200 rec/s; at 100 rec/s per sink
        // task DS2 needs 2 sink tasks, not 20.
        let ds2 = Ds2Controller::default();
        let d = ds2
            .decide_from_op_rates(&g, &p, &[10_000.0, 10_000.0, 100.0], &targets(&g, 2000.0))
            .unwrap();
        assert_eq!(d.parallelism[2], 2);
        assert_eq!(d.target_input[2], 200.0);
    }

    #[test]
    fn depressed_true_rates_cause_overshoot() {
        // The CAPSys §6.4 phenomenon: contention halves the measured true
        // rate, so DS2 doubles the parallelism it requests.
        let (g, p) = pipeline(&[1, 1, 1], &[1.0, 1.0, 1.0]);
        let ds2 = Ds2Controller::default();
        let clean = ds2
            .decide_from_op_rates(&g, &p, &[1e4, 1000.0, 1e4], &targets(&g, 2000.0))
            .unwrap();
        let contended = ds2
            .decide_from_op_rates(&g, &p, &[1e4, 500.0, 1e4], &targets(&g, 2000.0))
            .unwrap();
        assert_eq!(clean.parallelism[1], 2);
        assert_eq!(contended.parallelism[1], 4);
    }

    #[test]
    fn no_change_when_parallelism_is_right() {
        let (g, p) = pipeline(&[1, 2, 1], &[1.0, 1.0, 1.0]);
        let ds2 = Ds2Controller::default();
        let d = ds2
            .decide_from_op_rates(&g, &p, &[5000.0, 1000.0, 5000.0], &targets(&g, 2000.0))
            .unwrap();
        assert_eq!(d.parallelism, vec![1, 2, 1]);
        assert!(!d.changed);
        assert_eq!(d.total_tasks(), 4);
    }

    #[test]
    fn parallelism_is_clamped() {
        let (g, p) = pipeline(&[1, 1, 1], &[1.0, 1.0, 1.0]);
        let ds2 = Ds2Controller::new(Ds2Config {
            max_parallelism: 8,
            ..Ds2Config::default()
        });
        let d = ds2
            .decide_from_op_rates(&g, &p, &[1e6, 1.0, 1e6], &targets(&g, 1e6))
            .unwrap();
        assert_eq!(d.parallelism[1], 8);
    }

    #[test]
    fn zero_true_rate_keeps_current_parallelism() {
        let (g, p) = pipeline(&[1, 3, 1], &[1.0, 1.0, 1.0]);
        let ds2 = Ds2Controller::default();
        let d = ds2
            .decide_from_op_rates(&g, &p, &[1e4, 0.0, 1e4], &targets(&g, 2000.0))
            .unwrap();
        assert_eq!(d.parallelism[1], 3, "unknown capacity: keep deployment");
    }

    #[test]
    fn headroom_overprovisions() {
        let (g, p) = pipeline(&[1, 1, 1], &[1.0, 1.0, 1.0]);
        let ds2 = Ds2Controller::new(Ds2Config {
            headroom: 1.5,
            ..Ds2Config::default()
        });
        let d = ds2
            .decide_from_op_rates(&g, &p, &[1e4, 1000.0, 1e4], &targets(&g, 2000.0))
            .unwrap();
        assert_eq!(d.parallelism[1], 3);
    }

    #[test]
    fn rejects_bad_inputs() {
        let (g, p) = pipeline(&[1, 1, 1], &[1.0, 1.0, 1.0]);
        let ds2 = Ds2Controller::default();
        let err = ds2.decide(&g, &p, &[], &targets(&g, 100.0)).unwrap_err();
        assert!(matches!(err, Ds2Error::MetricsMismatch { .. }));
        let err = ds2
            .decide_from_op_rates(&g, &p, &[1.0, 1.0, 1.0], &HashMap::new())
            .unwrap_err();
        assert!(matches!(err, Ds2Error::MissingTarget(_)));
    }

    #[test]
    fn two_source_graph_sums_inputs() {
        let mut b = LogicalGraph::builder("join");
        let s1 = b.operator(
            "s1",
            OperatorKind::Source,
            1,
            ResourceProfile::new(0.0, 0.0, 1.0, 1.0),
        );
        let s2 = b.operator(
            "s2",
            OperatorKind::Source,
            1,
            ResourceProfile::new(0.0, 0.0, 1.0, 1.0),
        );
        let j = b.operator(
            "j",
            OperatorKind::Join,
            1,
            ResourceProfile::new(0.0, 0.0, 1.0, 1.0),
        );
        b.edge(s1, j, ConnectionPattern::Hash);
        b.edge(s2, j, ConnectionPattern::Hash);
        let g = b.build().unwrap();
        let p = PhysicalGraph::expand(&g);
        let ds2 = Ds2Controller::default();
        let mut t = HashMap::new();
        t.insert(s1, 300.0);
        t.insert(s2, 700.0);
        let d = ds2
            .decide_from_op_rates(&g, &p, &[1e4, 1e4, 250.0], &t)
            .unwrap();
        assert_eq!(d.target_input[j.0], 1000.0);
        assert_eq!(d.parallelism[j.0], 4);
    }
}
