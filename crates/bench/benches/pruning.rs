//! Microbench backing Table 2: search cost under threshold pruning,
//! operator reordering on/off (the full-size sweep is `exp_table2`).

use capsys_core::{CapsSearch, SearchConfig, Thresholds};
use capsys_model::{Cluster, WorkerSpec};
use capsys_queries::q3_inf;
use capsys_util::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_pruning(c: &mut Criterion) {
    let mut group = c.benchmark_group("pruning_sweep");
    group.sample_size(10);
    let query = q3_inf();
    let cluster = Cluster::homogeneous(4, WorkerSpec::r5d_xlarge(4)).expect("cluster");
    let physical = query.physical();
    let loads = query.load_model(&physical).expect("loads");
    let search = CapsSearch::new(query.logical(), &physical, &cluster, &loads).expect("search");

    for alpha in [f64::INFINITY, 0.5, 0.1] {
        let label = if alpha.is_finite() {
            format!("{alpha}")
        } else {
            "inf".into()
        };
        for reorder in [false, true] {
            let id = format!("{}_{}", label, if reorder { "reordered" } else { "plain" });
            group.bench_with_input(BenchmarkId::from_parameter(id), &alpha, |b, &a| {
                let config = SearchConfig {
                    reorder,
                    max_plans: 1,
                    ..SearchConfig::with_thresholds(Thresholds::new(
                        a,
                        f64::INFINITY,
                        f64::INFINITY,
                    ))
                };
                b.iter(|| search.run(&config).expect("search").stats.nodes)
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pruning);
criterion_main!(benches);
