//! Criterion bench backing Figure 10a: CAPS first-feasible search time
//! as the problem scales from 16 to 128 tasks, per threshold tightness.

use capsys_core::{CapsSearch, SearchConfig, Thresholds};
use capsys_model::{Cluster, WorkerSpec};
use capsys_queries::q2_join;
use capsys_util::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_caps_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("caps_first_feasible");
    group.sample_size(10);
    let alphas = [
        ("alpha1", Thresholds::new(0.08, 0.15, 0.6)),
        ("alpha3", Thresholds::new(0.25, 0.3, 0.9)),
    ];
    for scale in [1usize, 2, 4, 8] {
        let query = q2_join().scaled(scale).expect("scaling");
        let tasks = query.logical().total_tasks();
        let cluster = Cluster::homogeneous(tasks / 4, WorkerSpec::r5d_xlarge(4)).expect("cluster");
        let physical = query.physical();
        let loads = query.load_model(&physical).expect("loads");
        let search = CapsSearch::new(query.logical(), &physical, &cluster, &loads).expect("search");
        for (name, th) in &alphas {
            group.bench_with_input(BenchmarkId::new(*name, tasks), &tasks, |b, _| {
                let config = SearchConfig::with_thresholds(*th).first_feasible();
                b.iter(|| search.run(&config).expect("search runs").stats.plans_found)
            });
        }
    }
    group.finish();
}

fn bench_parallel_threads(c: &mut Criterion) {
    // Thread-count ablation of the parallel search (§5.1).
    let mut group = c.benchmark_group("caps_threads");
    group.sample_size(10);
    let query = q2_join().scaled(2).expect("scaling");
    let cluster = Cluster::homogeneous(8, WorkerSpec::r5d_xlarge(4)).expect("cluster");
    let physical = query.physical();
    let loads = query.load_model(&physical).expect("loads");
    let search = CapsSearch::new(query.logical(), &physical, &cluster, &loads).expect("search");
    let th = Thresholds::new(0.15, 0.25, 0.8);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            let config = SearchConfig::with_thresholds(th)
                .with_threads(t)
                .first_feasible();
            b.iter(|| search.run(&config).expect("search runs").stats.plans_found)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_caps_search, bench_parallel_threads);
criterion_main!(benches);
