//! Criterion bench backing Figure 10b: threshold auto-tuning time.

use capsys_core::{AutoTuneConfig, AutoTuner, CapsSearch, SearchConfig};
use capsys_model::{Cluster, WorkerSpec};
use capsys_queries::q2_join;
use capsys_util::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_autotune(c: &mut Criterion) {
    let mut group = c.benchmark_group("autotune");
    group.sample_size(10);
    for (workers, slots) in [(8usize, 4usize), (8, 8), (16, 4)] {
        let scale = workers * slots / 16;
        let query = q2_join().scaled(scale).expect("scaling");
        let cluster =
            Cluster::homogeneous(workers, WorkerSpec::r5d_xlarge(slots)).expect("cluster");
        let physical = query.physical();
        let loads = query.load_model(&physical).expect("loads");
        let search = CapsSearch::new(query.logical(), &physical, &cluster, &loads).expect("search");
        let tasks = physical.num_tasks();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{workers}w_{slots}s_{tasks}t")),
            &tasks,
            |b, _| {
                let cfg = AutoTuneConfig::default();
                let base = SearchConfig::auto_tuned();
                b.iter(|| {
                    AutoTuner::new(&cfg)
                        .tune(&search, &base)
                        .expect("tuning succeeds")
                        .iterations
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_autotune);
criterion_main!(benches);
