//! Microbench: plan-space enumeration, with and without symmetric-worker
//! duplicate elimination (§4.3 ablation).

use capsys_model::{Cluster, PlanEnumerator, PlanVisitor, WorkerSpec};
use capsys_queries::{q1_sliding, q3_inf};
use capsys_util::bench::{criterion_group, criterion_main, Criterion};

struct CountOnly;
impl PlanVisitor for CountOnly {
    fn place(&mut self, _: usize, _: capsys_model::OperatorId, _: usize) -> bool {
        true
    }
    fn unplace(&mut self, _: usize, _: capsys_model::OperatorId, _: usize) {}
    fn leaf(&mut self, _: &[Vec<usize>]) -> bool {
        true
    }
}

fn bench_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumeration");
    group.sample_size(10);
    let cluster = Cluster::homogeneous(4, WorkerSpec::r5d_xlarge(4)).expect("cluster");
    for query in [q1_sliding(), q3_inf()] {
        let physical = query.physical();
        group.bench_function(format!("{}_symmetric", query.name()), |b| {
            b.iter(|| {
                PlanEnumerator::new(&physical, &cluster)
                    .expect("enumerator")
                    .explore(&mut CountOnly)
                    .plans
            })
        });
        group.bench_function(format!("{}_labelled", query.name()), |b| {
            b.iter(|| {
                PlanEnumerator::new(&physical, &cluster)
                    .expect("enumerator")
                    .with_symmetry(false)
                    .explore(&mut CountOnly)
                    .plans
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_enumeration);
criterion_main!(benches);
