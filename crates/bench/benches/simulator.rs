//! Microbench: simulator tick throughput (simulated seconds per wall
//! second) on the evaluation queries.

use capsys_bench::run_plan;
use capsys_model::{enumerate_plans, Cluster, WorkerSpec};
use capsys_queries::{q1_sliding, q3_inf};
use capsys_sim::SimConfig;
use capsys_util::bench::{criterion_group, criterion_main, Criterion};

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_60s_run");
    group.sample_size(10);
    let cluster = Cluster::homogeneous(4, WorkerSpec::r5d_xlarge(4)).expect("cluster");
    for query in [q1_sliding(), q3_inf()] {
        let physical = query.physical();
        let plan = enumerate_plans(&physical, &cluster, 1)
            .expect("plans")
            .remove(0);
        let rate = query.capacity_rate(&cluster, 0.8).expect("rate");
        group.bench_function(query.name(), |b| {
            b.iter(|| {
                run_plan(
                    &query,
                    &cluster,
                    &plan,
                    rate,
                    SimConfig {
                        duration: 60.0,
                        warmup: 10.0,
                        ..SimConfig::default()
                    },
                )
                .avg_throughput
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
