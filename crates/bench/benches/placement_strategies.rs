//! Microbench: time to compute one placement per strategy.

use capsys_model::{Cluster, WorkerSpec};
use capsys_placement::{
    CapsStrategy, FlinkDefault, FlinkEvenly, PlacementContext, PlacementStrategy,
};
use capsys_queries::q1_sliding;
use capsys_util::bench::{criterion_group, criterion_main, Criterion};
use capsys_util::rng::SmallRng;
use capsys_util::rng::SeedableRng;

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement_strategy");
    group.sample_size(10);
    let query = q1_sliding();
    let cluster = Cluster::homogeneous(4, WorkerSpec::r5d_xlarge(4)).expect("cluster");
    let physical = query.physical();
    let loads = query.load_model(&physical).expect("loads");
    let ctx = PlacementContext {
        logical: query.logical(),
        physical: &physical,
        cluster: &cluster,
        loads: &loads,
    };
    let caps = CapsStrategy::default();
    let strategies: [(&str, &dyn PlacementStrategy); 3] = [
        ("default", &FlinkDefault),
        ("evenly", &FlinkEvenly),
        ("caps_autotuned", &caps),
    ];
    for (name, strategy) in strategies {
        group.bench_function(name, |b| {
            let mut rng = SmallRng::seed_from_u64(1);
            b.iter(|| strategy.place(&ctx, &mut rng).expect("placement"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
