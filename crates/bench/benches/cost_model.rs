//! Microbench: evaluating the CAPS cost model (Eqs. 4-8) on a full plan.

use capsys_core::CostModel;
use capsys_model::{enumerate_plans, Cluster, WorkerSpec};
use capsys_queries::{q1_sliding, q2_join};
use capsys_util::bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_cost_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost_model");
    for query in [q1_sliding(), q2_join()] {
        let cluster = Cluster::homogeneous(4, WorkerSpec::r5d_xlarge(4)).expect("cluster");
        let physical = query.physical();
        let loads = query.load_model(&physical).expect("loads");
        let model = CostModel::new(&physical, &cluster, &loads).expect("model");
        let plan = enumerate_plans(&physical, &cluster, 1)
            .expect("plans")
            .remove(0);
        group.bench_function(query.name(), |b| {
            b.iter(|| black_box(model.cost(&physical, black_box(&plan))))
        });
    }
    group.finish();
}

fn bench_model_build(c: &mut Criterion) {
    let query = q2_join().scaled(4).expect("scaling");
    let cluster = Cluster::homogeneous(16, WorkerSpec::r5d_xlarge(4)).expect("cluster");
    let physical = query.physical();
    let loads = query.load_model(&physical).expect("loads");
    c.bench_function("cost_model_build_64_tasks", |b| {
        b.iter(|| CostModel::new(black_box(&physical), &cluster, &loads).expect("model"))
    });
}

criterion_group!(benches, bench_cost_eval, bench_model_build);
criterion_main!(benches);
