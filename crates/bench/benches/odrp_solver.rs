//! Microbench backing Table 3's decision-time column: ODRP solve time on
//! small instances (the full-size instance is measured by `exp_table3`).

use capsys_model::{Cluster, WorkerSpec};
use capsys_odrp::{OdrpConfig, OdrpSolver, OdrpWeights};
use capsys_queries::q3_inf;
use capsys_util::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_odrp(c: &mut Criterion) {
    let mut group = c.benchmark_group("odrp_solve");
    group.sample_size(10);
    let query = q3_inf();
    for workers in [2usize, 3] {
        let cluster = Cluster::homogeneous(workers, WorkerSpec::c5d_4xlarge(4)).expect("cluster");
        let rates = query.source_rates(1000.0);
        group.bench_with_input(
            BenchmarkId::new("default_weights", workers),
            &workers,
            |b, _| {
                let solver = OdrpSolver::new(OdrpConfig {
                    weights: OdrpWeights::default_config(),
                    max_parallelism: 3,
                    time_budget: Duration::from_secs(30),
                    inner_node_budget: 20_000,
                    ..OdrpConfig::default()
                });
                b.iter(|| {
                    solver
                        .solve(query.logical(), &cluster, &rates)
                        .expect("solution")
                        .breakdown
                        .slots_used
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_odrp);
criterion_main!(benches);
