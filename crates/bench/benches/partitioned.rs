//! Ablation bench: monolithic vs. partitioned CAPS (§6.5.2 extension) —
//! nodes explored and wall time per partition count.

use capsys_core::{CapsSearch, SearchConfig, Thresholds};
use capsys_model::{Cluster, WorkerSpec};
use capsys_queries::q2_join;
use capsys_util::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_partitioned(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioned_caps");
    group.sample_size(10);
    let query = q2_join().scaled(4).expect("scaling");
    let cluster = Cluster::homogeneous(16, WorkerSpec::r5d_xlarge(4)).expect("cluster");
    let physical = query.physical();
    let rate = query.capacity_rate(&cluster, 0.9).expect("rate");
    let loads = query.load_model_at(&physical, rate).expect("loads");
    let search = CapsSearch::new(query.logical(), &physical, &cluster, &loads).expect("search");
    let th = Thresholds::new(0.3, 0.35, 0.9);

    group.bench_function("monolithic_first_feasible", |b| {
        let config = SearchConfig::with_thresholds(th).first_feasible();
        b.iter(|| search.run(&config).expect("search").stats.nodes)
    });
    for k in [2usize, 4] {
        group.bench_with_input(BenchmarkId::new("partitions", k), &k, |b, &k| {
            let config = SearchConfig::with_thresholds(th).first_feasible();
            b.iter(|| {
                search
                    .run_partitioned(k, &config)
                    .expect("partitioned")
                    .stats
                    .nodes
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partitioned);
criterion_main!(benches);
