//! Crash-recovery sweep: kill the controller at every journaled
//! decision point and prove recovery is exact.
//!
//! The durable controller journals every decision (write-ahead) and
//! reconfigures in two phases, so a controller killed at *any* point —
//! including between `Prepare` and `Commit` — can be rebuilt from its
//! journal. This experiment makes that claim exhaustively: for a
//! baseline run's journal of n records, it re-runs the scenario killed
//! right after each record k, recovers from the partial journal, and
//! diffs both the finished trace and the recovered run's journal
//! byte-for-byte against the baseline — including a scenario whose
//! journal holds governor `Rollback` records, with an explicit kill
//! between a rollback and its commit. It then checks the two
//! remaining failure modes: a wall-clock kill drawn from a seeded
//! `ChaosConfig`, and a zombie controller racing the instance that
//! superseded it (which must die with a fenced epoch, not deploy).
//!
//! Usage: `exp_recovery [--seed N] [--smoke]`

use capsys_bench::banner;
use capsys_controller::{
    ClosedLoop, ClosedLoopTrace, ControllerError, DecisionRecord, GuardConfig, MigrationConfig,
    RecoveryConfig,
};
use capsys_ds2::Ds2Config;
use capsys_model::{Cluster, RateSchedule, TaskId, WorkerSpec};
use capsys_placement::CapsStrategy;
use capsys_queries::Query;
use capsys_sim::{
    ChaosConfig, EpochFence, FaultEvent, FaultKind, FaultPlan, KillPoint, ModelSkew, SimConfig,
};

/// Minimal std-only flag parsing: `--seed N` and `--smoke`.
fn parse_args() -> (u64, bool) {
    let mut seed = 7u64;
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--seed expects an integer; using 7");
                        7
                    });
            }
            "--smoke" => smoke = true,
            other => eprintln!("ignoring unknown argument `{other}`"),
        }
    }
    (seed, smoke)
}

/// One self-contained scenario the sweep runs against.
struct Scenario {
    name: &'static str,
    query: Query,
    cluster: Cluster,
    schedule: RateSchedule,
    activation_period: f64,
    /// Crash the worker hosting task 0 at this time (None = no faults).
    crash_at: Option<f64>,
    /// Make the plan model go stale mid-run (None = model stays true).
    skew: Option<ModelSkew>,
    /// Attach the safety governor, so the journal can hold `Rollback`
    /// records.
    guard: bool,
    /// Charge reconfigurations for moving this many retained records of
    /// operator state (None = free reconfigurations).
    state_transfer: Option<f64>,
    /// Recover crashes by incremental task migration, so the journal
    /// can hold `MigratePrepare`/`MigrateStep`/`MigrateCommit` records.
    migration: Option<MigrationConfig>,
    duration: f64,
    seed: u64,
}

impl Scenario {
    fn ds2(&self) -> Ds2Config {
        Ds2Config {
            activation_period: self.activation_period,
            policy_interval: 5.0,
            max_parallelism: 8,
            headroom: 1.0,
        }
    }

    fn sim(&self) -> SimConfig {
        SimConfig {
            duration: 1.0,
            warmup: 0.0,
            ..SimConfig::default()
        }
    }

    fn build_loop<'a>(
        &self,
        strategy: &'a CapsStrategy,
        cluster: &'a Cluster,
    ) -> Result<ClosedLoop<'a>, ControllerError> {
        ClosedLoop::new(
            &self.query,
            cluster,
            strategy,
            self.ds2(),
            self.sim(),
            self.schedule.clone(),
            self.seed,
        )
    }

    /// The scenario's fault schedule (without any controller kill).
    fn fault_plan(&self, loop_: &ClosedLoop<'_>) -> Result<Option<FaultPlan>, Box<dyn std::error::Error>> {
        let mut plan = match self.crash_at {
            None => None,
            Some(t) => {
                let victim = loop_.placement().worker_of(TaskId(0));
                Some(FaultPlan::new(vec![FaultEvent {
                    time: t,
                    kind: FaultKind::Crash(victim),
                }])?)
            }
        };
        if let Some(skew) = self.skew {
            let base = match plan {
                Some(p) => p,
                None => FaultPlan::new(vec![])?,
            };
            plan = Some(base.with_model_skew(skew)?);
        }
        Ok(plan)
    }

    /// Runs the scenario with a journal and an optional kill; returns
    /// the outcome and the journal text (which survives the kill).
    fn run_journaled(
        &self,
        kill: Option<KillPoint>,
    ) -> Result<(Result<ClosedLoopTrace, ControllerError>, String), Box<dyn std::error::Error>>
    {
        let strategy = CapsStrategy::default();
        let mut loop_ = self.build_loop(&strategy, &self.cluster)?;
        let mut plan = self.fault_plan(&loop_)?;
        if let Some(k) = kill {
            plan = Some(match plan {
                Some(p) => p.with_controller_kill(k)?,
                None => FaultPlan::new(vec![])?.with_controller_kill(k)?,
            });
        }
        if let Some(p) = plan {
            loop_ = loop_.with_fault_plan(p)?;
        }
        if self.guard {
            loop_ = loop_.with_guard(GuardConfig::default())?;
        }
        let (journal, buf) = capsys_controller::DecisionJournal::in_memory();
        let mut loop_ = loop_.with_recovery(RecoveryConfig::default());
        if let Some(retained) = self.state_transfer {
            loop_ = loop_.with_state_transfer(retained)?;
        }
        if let Some(m) = self.migration.clone() {
            loop_ = loop_.with_incremental_migration(m)?;
        }
        let result = loop_.with_journal(journal)?.run(self.duration);
        Ok((result, buf.text()))
    }

    /// Recovers from a (possibly partial) journal and runs to the
    /// scenario's end; returns the trace and the recovered journal.
    fn recover_and_finish(
        &self,
        journal_text: &str,
    ) -> Result<(ClosedLoopTrace, String), Box<dyn std::error::Error>> {
        let strategy = CapsStrategy::default();
        let mut loop_ = ClosedLoop::recover_from_journal(
            &self.query,
            &self.cluster,
            &strategy,
            self.ds2(),
            self.sim(),
            self.schedule.clone(),
            journal_text,
        )?;
        if let Some(p) = self.fault_plan(&loop_)? {
            loop_ = loop_.with_fault_plan(p)?;
        }
        if self.guard {
            loop_ = loop_.with_guard(GuardConfig::default())?;
        }
        let (journal, buf) = capsys_controller::DecisionJournal::in_memory();
        let mut loop_ = loop_.with_recovery(RecoveryConfig::default());
        if let Some(retained) = self.state_transfer {
            loop_ = loop_.with_state_transfer(retained)?;
        }
        if let Some(m) = self.migration.clone() {
            loop_ = loop_.with_incremental_migration(m)?;
        }
        let trace = loop_.with_journal(journal)?.run(self.duration)?;
        Ok((trace, buf.text()))
    }
}

/// Kills the scenario after every journal record of its baseline run
/// and asserts byte-identical recovery each time. Returns the number of
/// kill points that landed on a `Prepare`, on a `Rollback`, and on a
/// migration record (`MigratePrepare` or `MigrateStep` — i.e. with an
/// incremental migration in flight).
fn sweep(scenario: &Scenario) -> Result<(usize, usize, usize), Box<dyn std::error::Error>> {
    let (baseline, golden_journal) = scenario.run_journaled(None)?;
    let golden = baseline?.to_json().to_string();
    let parsed = capsys_controller::journal::parse_journal(&golden_journal)?;
    let n = parsed.records.len() as u64;
    println!(
        "[{}] baseline journal: {n} decision record(s), {} trace bytes",
        scenario.name,
        golden.len()
    );
    if n < 2 {
        return Err(format!(
            "[{}] scenario journaled no decisions beyond init; nothing to sweep",
            scenario.name
        )
        .into());
    }

    let mut prepares_hit = 0usize;
    let mut rollbacks_hit = 0usize;
    let mut migrations_hit = 0usize;
    for k in 0..n {
        let partial = if k == 0 {
            // Kill "before the first decision": only the init record
            // made it to disk. Truncate the golden journal instead of
            // re-running (no kill point fires that early).
            golden_journal
                .lines()
                .next()
                .map(|l| format!("{l}\n"))
                .ok_or("golden journal is empty")?
        } else {
            let (result, partial) = scenario.run_journaled(Some(KillPoint::AfterRecord(k)))?;
            match result {
                Err(ControllerError::ControllerKilled { seq, .. }) if seq == k + 1 => {}
                Err(ControllerError::ControllerKilled { seq, .. }) => {
                    return Err(format!(
                        "[{}] kill at record {k} reported {seq} records written",
                        scenario.name
                    )
                    .into());
                }
                other => {
                    return Err(format!(
                        "[{}] kill at record {k} did not fire: {other:?}",
                        scenario.name
                    )
                    .into());
                }
            }
            let lines = partial.lines().count() as u64;
            if lines != k + 1 {
                return Err(format!(
                    "[{}] kill at record {k} left {lines} journal lines, expected {}",
                    scenario.name,
                    k + 1
                )
                .into());
            }
            partial
        };
        match parsed.records.get(k as usize) {
            Some(DecisionRecord::Prepare { .. }) => prepares_hit += 1,
            Some(DecisionRecord::Rollback { .. }) => rollbacks_hit += 1,
            Some(DecisionRecord::MigratePrepare { .. } | DecisionRecord::MigrateStep { .. }) => {
                migrations_hit += 1
            }
            _ => {}
        }
        let (trace, rewritten) = scenario.recover_and_finish(&partial)?;
        if trace.to_json().to_string() != golden {
            return Err(format!(
                "[{}] recovered trace DIVERGED after kill at record {k}",
                scenario.name
            )
            .into());
        }
        if rewritten != golden_journal {
            return Err(format!(
                "[{}] recovered journal DIVERGED after kill at record {k}",
                scenario.name
            )
            .into());
        }
    }
    println!(
        "[{}] kill-at-every-record sweep: {n}/{n} recoveries byte-identical \
         ({prepares_hit} landed between Prepare and Commit, {rollbacks_hit} \
         between Rollback and Commit, {migrations_hit} mid-migration)",
        scenario.name
    );

    // The explicit mid-reconfiguration kill: die on the first Prepare,
    // leaving it in doubt at the journal tail; recovery must roll it
    // forward and still match the baseline exactly.
    let first_epoch = parsed.records.iter().find_map(|r| match r {
        DecisionRecord::Prepare { epoch, .. } => Some(*epoch),
        _ => None,
    });
    if let Some(e) = first_epoch {
        let (result, partial) = scenario.run_journaled(Some(KillPoint::MidReconfig(e)))?;
        if !matches!(result, Err(ControllerError::ControllerKilled { .. })) {
            return Err(format!("[{}] mid-reconfig kill did not fire", scenario.name).into());
        }
        let tail = capsys_controller::journal::parse_journal(&partial)?;
        if !matches!(
            tail.records.last(),
            Some(DecisionRecord::Prepare { epoch, .. }) if *epoch == e
        ) {
            return Err(format!(
                "[{}] mid-reconfig kill's journal does not end at the in-doubt prepare",
                scenario.name
            )
            .into());
        }
        let (trace, rewritten) = scenario.recover_and_finish(&partial)?;
        if trace.to_json().to_string() != golden || rewritten != golden_journal {
            return Err(format!(
                "[{}] roll-forward after mid-reconfig kill DIVERGED",
                scenario.name
            )
            .into());
        }
        println!(
            "[{}] kill between Prepare(epoch {e}) and Commit: rolled forward, byte-identical",
            scenario.name
        );
    }

    // Same in-doubt treatment for a governor rollback: die on the first
    // `Rollback`, leaving it at the journal tail; recovery must finish
    // the rollback the dead controller started and match the baseline.
    let first_rollback = parsed.records.iter().find_map(|r| match r {
        DecisionRecord::Rollback { epoch, .. } => Some(*epoch),
        _ => None,
    });
    if let Some(e) = first_rollback {
        let (result, partial) = scenario.run_journaled(Some(KillPoint::MidReconfig(e)))?;
        if !matches!(result, Err(ControllerError::ControllerKilled { .. })) {
            return Err(format!("[{}] mid-rollback kill did not fire", scenario.name).into());
        }
        let tail = capsys_controller::journal::parse_journal(&partial)?;
        if !matches!(
            tail.records.last(),
            Some(DecisionRecord::Rollback { epoch, .. }) if *epoch == e
        ) {
            return Err(format!(
                "[{}] mid-rollback kill's journal does not end at the in-doubt rollback",
                scenario.name
            )
            .into());
        }
        let (trace, rewritten) = scenario.recover_and_finish(&partial)?;
        if trace.to_json().to_string() != golden || rewritten != golden_journal {
            return Err(format!(
                "[{}] roll-forward after mid-rollback kill DIVERGED",
                scenario.name
            )
            .into());
        }
        println!(
            "[{}] kill between Rollback(epoch {e}) and Commit: rolled forward, byte-identical",
            scenario.name
        );
    }

    // And for an incremental migration: die on the `MigratePrepare`,
    // leaving the whole migration in doubt at the journal tail;
    // recovery must re-derive the waves and roll them all forward.
    let first_migrate = parsed.records.iter().find_map(|r| match r {
        DecisionRecord::MigratePrepare { epoch, .. } => Some(*epoch),
        _ => None,
    });
    if let Some(e) = first_migrate {
        let (result, partial) = scenario.run_journaled(Some(KillPoint::MidReconfig(e)))?;
        if !matches!(result, Err(ControllerError::ControllerKilled { .. })) {
            return Err(format!("[{}] mid-migration kill did not fire", scenario.name).into());
        }
        let tail = capsys_controller::journal::parse_journal(&partial)?;
        if !matches!(
            tail.records.last(),
            Some(DecisionRecord::MigratePrepare { epoch, .. }) if *epoch == e
        ) {
            return Err(format!(
                "[{}] mid-migration kill's journal does not end at the in-doubt migrate-prepare",
                scenario.name
            )
            .into());
        }
        let (trace, rewritten) = scenario.recover_and_finish(&partial)?;
        if trace.to_json().to_string() != golden || rewritten != golden_journal {
            return Err(format!(
                "[{}] roll-forward after mid-migration kill DIVERGED",
                scenario.name
            )
            .into());
        }
        println!(
            "[{}] kill between MigratePrepare(epoch {e}) and MigrateCommit: \
             rolled forward, byte-identical",
            scenario.name
        );
    }
    Ok((prepares_hit, rollbacks_hit, migrations_hit))
}

/// A wall-clock controller kill drawn from a seeded `ChaosConfig`:
/// the killed run's journal must recover to the same trace as the
/// baseline running the same fault plan without the kill.
fn chaos_kill_case(seed: u64, duration: f64) -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario {
        name: "chaos-kill",
        query: capsys_queries::q1_sliding(),
        cluster: Cluster::homogeneous(6, WorkerSpec::r5d_xlarge(4))?,
        schedule: RateSchedule::Constant(
            capsys_queries::q1_sliding()
                .capacity_rate(&Cluster::homogeneous(6, WorkerSpec::r5d_xlarge(4))?, 0.5)?,
        ),
        activation_period: 60.0,
        crash_at: None,
        skew: None,
        guard: false,
        state_transfer: None,
        migration: None,
        duration,
        seed,
    };
    let chaos = ChaosConfig {
        seed,
        horizon: duration,
        crashes: 1,
        crash_downtime: (duration, duration),
        stragglers: 0,
        slowdown: (2.0, 3.0),
        straggler_duration: (40.0, 60.0),
        blackouts: 0,
        blackout_duration: (5.0, 10.0),
        metric_noise: 0.02,
        controller_kills: 1,
        model_skews: 0,
        skew_factor: (2.0, 4.0),
        ..ChaosConfig::default()
    };
    let plan = FaultPlan::generate(&chaos, scenario.cluster.num_workers())?;
    let kill = plan
        .controller_kill
        .ok_or("chaos config with controller_kills=1 drew no kill")?;

    let run_with = |p: FaultPlan,
                    journal_text: Option<&str>|
     -> Result<(Result<ClosedLoopTrace, ControllerError>, String), Box<dyn std::error::Error>> {
        let strategy = CapsStrategy::default();
        let loop_ = match journal_text {
            None => scenario.build_loop(&strategy, &scenario.cluster)?,
            Some(t) => ClosedLoop::recover_from_journal(
                &scenario.query,
                &scenario.cluster,
                &strategy,
                scenario.ds2(),
                scenario.sim(),
                scenario.schedule.clone(),
                t,
            )?,
        };
        let (journal, buf) = capsys_controller::DecisionJournal::in_memory();
        let result = loop_
            .with_fault_plan(p)?
            .with_recovery(RecoveryConfig::default())
            .with_journal(journal)?
            .run(scenario.duration);
        Ok((result, buf.text()))
    };

    let (baseline, _) = run_with(plan.clone().without_controller_kill(), None)?;
    let golden = baseline?.to_json().to_string();
    let (killed, partial) = run_with(plan.clone(), None)?;
    if !matches!(killed, Err(ControllerError::ControllerKilled { .. })) {
        return Err(format!("chaos kill {kill:?} did not fire").into());
    }
    // The recovered controller must not re-arm the kill it already died
    // to — a real restart would similarly clear the poison.
    let (recovered, _) = run_with(plan.without_controller_kill(), Some(&partial))?;
    if recovered?.to_json().to_string() != golden {
        return Err(format!("recovery from chaos kill {kill:?} DIVERGED").into());
    }
    println!("[chaos-kill] {kill:?}: killed run recovered byte-identically");
    Ok(())
}

/// The zombie race: controller A dies early; B recovers from A's
/// journal sharing the cluster's epoch fence and finishes, advancing
/// the fence with its live deployments. A second recovery of the same
/// stale journal (the zombie resuming) must then be fenced off at its
/// first deployment, leaving nothing deployed.
fn zombie_case(seed: u64, duration: f64) -> Result<(), Box<dyn std::error::Error>> {
    let cluster = Cluster::homogeneous(4, WorkerSpec::m5d_2xlarge(8))?;
    let query = capsys_queries::q1_sliding().with_parallelism(&[1, 1, 1, 1])?;
    let target = capsys_queries::q1_sliding().capacity_rate(&cluster, 0.5)?;
    let scenario = Scenario {
        name: "zombie",
        query,
        cluster,
        schedule: RateSchedule::Constant(target),
        activation_period: 20.0,
        crash_at: None,
        skew: None,
        guard: false,
        state_transfer: None,
        migration: None,
        duration,
        seed,
    };
    let fence = EpochFence::new();
    let strategy = CapsStrategy::default();

    // A dies before its first decision (the first policy window ends at
    // t=5): journal = init only, fence untouched.
    let loop_a = scenario
        .build_loop(&strategy, &scenario.cluster)?
        .with_fence(fence.clone())
        .with_fault_plan(FaultPlan::new(vec![])?.with_controller_kill(KillPoint::AtTime(3.0))?)?;
    let (journal_a, buf_a) = capsys_controller::DecisionJournal::in_memory();
    let result_a = loop_a.with_journal(journal_a)?.run(scenario.duration);
    if !matches!(result_a, Err(ControllerError::ControllerKilled { .. })) {
        return Err("zombie case: controller A was not killed".into());
    }
    let journal_text = buf_a.text();

    // B supersedes A: recovers the journal, scales live, advances the
    // shared fence.
    let trace_b = ClosedLoop::recover_from_journal(
        &scenario.query,
        &scenario.cluster,
        &strategy,
        scenario.ds2(),
        scenario.sim(),
        scenario.schedule.clone(),
        &journal_text,
    )?
    .with_fence(fence.clone())
    .run(scenario.duration)?;
    if trace_b.num_scalings() == 0 {
        return Err("zombie case: controller B never deployed, fence untouched".into());
    }
    let epoch_after_b = fence.current();
    if epoch_after_b == 0 {
        return Err("zombie case: B's deployments did not advance the fence".into());
    }

    // The zombie resumes from the same stale journal against the same
    // fence: its first deployment must be rejected.
    let result_z = ClosedLoop::recover_from_journal(
        &scenario.query,
        &scenario.cluster,
        &strategy,
        scenario.ds2(),
        scenario.sim(),
        scenario.schedule.clone(),
        &journal_text,
    )?
    .with_fence(fence.clone())
    .run(scenario.duration);
    match result_z {
        Err(ControllerError::FencedEpoch { attempted, current }) => {
            if attempted > epoch_after_b || current < epoch_after_b {
                return Err(format!(
                    "zombie fenced with implausible epochs: attempted {attempted}, \
                     fence at {current}, B reached {epoch_after_b}"
                )
                .into());
            }
            println!(
                "[zombie] stale controller fenced at epoch {attempted} (cluster at {current})"
            );
            Ok(())
        }
        Err(e) => Err(format!("zombie failed with {e}, expected a fenced epoch").into()),
        Ok(_) => Err("zombie controller deployed past the fence".into()),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (seed, smoke) = parse_args();
    banner(
        "Recovery",
        "kill-at-every-decision crash-recovery sweep",
        "durability extension (not a paper figure)",
    );
    let duration = if smoke { 150.0 } else { 300.0 };
    println!("seed {seed}, {duration}s per run\n");

    // Scenario 1: a worker crash mid-run — the journal holds a recovery
    // reconfiguration (and possibly retries).
    let chaos_cluster = Cluster::homogeneous(6, WorkerSpec::r5d_xlarge(4))?;
    let chaos_target = capsys_queries::q1_sliding().capacity_rate(&chaos_cluster, 0.5)?;
    let chaos = Scenario {
        name: "crash-recovery",
        query: capsys_queries::q1_sliding(),
        cluster: chaos_cluster,
        schedule: RateSchedule::Constant(chaos_target),
        activation_period: 60.0,
        crash_at: Some(60.0),
        skew: None,
        guard: false,
        state_transfer: None,
        migration: None,
        duration,
        seed,
    };

    // Scenario 2: an undersized job DS2 scales up — the journal holds
    // scaling reconfigurations.
    let scale_cluster = Cluster::homogeneous(4, WorkerSpec::m5d_2xlarge(8))?;
    let scale_target = capsys_queries::q1_sliding().capacity_rate(&scale_cluster, 0.5)?;
    let scaling = Scenario {
        name: "scaling",
        query: capsys_queries::q1_sliding().with_parallelism(&[1, 1, 1, 1])?,
        cluster: scale_cluster,
        schedule: RateSchedule::Constant(scale_target),
        activation_period: 20.0,
        crash_at: None,
        skew: None,
        guard: false,
        state_transfer: None,
        migration: None,
        duration,
        seed,
    };

    // Scenario 3: the model goes stale, a rate step goads DS2 onto the
    // stale model, and the governor rolls the regression back — the
    // journal holds `Rollback` records.
    let guard_cluster = Cluster::homogeneous(6, WorkerSpec::r5d_xlarge(4))?;
    let guard_target = capsys_queries::q1_sliding().capacity_rate(&guard_cluster, 0.5)?;
    let guard = Scenario {
        name: "guard-rollback",
        query: capsys_queries::q1_sliding(),
        cluster: guard_cluster,
        schedule: RateSchedule::Steps(vec![
            (0.0, guard_target),
            (80.0, 1.8 * guard_target),
        ]),
        activation_period: 60.0,
        crash_at: None,
        skew: Some(ModelSkew {
            time: 70.0,
            factor: 3.5,
        }),
        guard: true,
        state_transfer: None,
        migration: None,
        duration,
        seed,
    };

    // Scenario 4: the same crash recovered by incremental migration —
    // the journal holds a MigratePrepare, per-wave MigrateSteps, and a
    // MigrateCommit, and the sweep kills between every pair of them.
    let mig_cluster = Cluster::homogeneous(6, WorkerSpec::r5d_xlarge(4))?;
    let mig_target = capsys_queries::q1_sliding().capacity_rate(&mig_cluster, 0.5)?;
    let migration = Scenario {
        name: "migration",
        query: capsys_queries::q1_sliding(),
        cluster: mig_cluster,
        schedule: RateSchedule::Constant(mig_target),
        activation_period: 1000.0,
        crash_at: Some(60.0),
        skew: None,
        guard: false,
        state_transfer: Some(2e5),
        migration: Some(MigrationConfig {
            epsilon: 0.05,
            wave_size: 1,
        }),
        duration,
        seed,
    };

    let mut prepares_hit = 0;
    let mut rollbacks_hit = 0;
    let mut migrations_hit = 0;
    for scenario in [&chaos, &scaling, &guard, &migration] {
        let (p, r, m) = sweep(scenario)?;
        prepares_hit += p;
        rollbacks_hit += r;
        migrations_hit += m;
    }
    if prepares_hit == 0 {
        return Err("no kill point landed between Prepare and Commit across the sweep".into());
    }
    if rollbacks_hit == 0 {
        return Err("no kill point landed between Rollback and Commit across the sweep".into());
    }
    if migrations_hit < 3 {
        return Err(format!(
            "only {migrations_hit} kill point(s) landed mid-migration; expected a \
             MigratePrepare and at least two MigrateSteps in the sweep"
        )
        .into());
    }

    chaos_kill_case(seed, duration)?;
    zombie_case(seed, duration)?;

    println!("\nall recovery invariants hold");
    Ok(())
}
