//! Runs every experiment binary in paper order.
//!
//! Equivalent to executing `exp_fig2`, `exp_fig3`, `exp_fig5`,
//! `exp_table2`, `exp_fig7`, `exp_fig8`, `exp_table3`, `exp_table4`,
//! `exp_fig9`, `exp_fig10a`, `exp_fig10b`, and `exp_search` in
//! sequence. Set `CAPSYS_FAST=1` for a reduced smoke run.

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "exp_fig2",
    "exp_fig3",
    "exp_fig5",
    "exp_table2",
    "exp_fig7",
    "exp_fig8",
    "exp_table3",
    "exp_table4",
    "exp_fig9",
    "exp_fig10a",
    "exp_fig10b",
    "exp_search",
];

fn main() {
    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("bin dir").to_path_buf();
    let mut failed = Vec::new();
    for exp in EXPERIMENTS {
        let path = bin_dir.join(exp);
        eprintln!(">>> running {exp}");
        let status = Command::new(&path).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("!!! {exp} exited with {s}");
                failed.push(*exp);
            }
            Err(e) => {
                eprintln!("!!! {exp} failed to start: {e}");
                failed.push(*exp);
            }
        }
    }
    if failed.is_empty() {
        eprintln!("\nall {} experiments completed", EXPERIMENTS.len());
    } else {
        eprintln!("\nfailed experiments: {failed:?}");
        std::process::exit(1);
    }
}
