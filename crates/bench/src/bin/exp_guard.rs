//! Safety-governor experiment: canary probation and rollback under a
//! model-skew fault.
//!
//! Not a figure from the paper — the paper assumes the cost model stays
//! truthful — but the failure mode its adaptive controller invites: a
//! seeded [`ModelSkew`] fault makes every plan deployed after its onset
//! run on a stale model (tasks cost `factor`x their prediction), while
//! the plan live at the onset keeps its measured behavior. A rate step
//! after the onset goads DS2 into rescaling onto the stale model; the
//! run then regresses and stays regressed unless the governor detects
//! it and rolls back to the last-known-good plan.
//!
//! The experiment runs the same seeded scenario with the governor off
//! (regression persists) and on (detected within one probation window,
//! rolled back, oscillations bounded), and self-asserts both outcomes
//! plus seed-determinism of the governed run.
//!
//! Usage: `exp_guard [--seed N] [--quick]`

use capsys_bench::{banner, fast_mode, fmt_rate};
use capsys_controller::{ClosedLoop, ClosedLoopTrace, GuardConfig};
use capsys_ds2::Ds2Config;
use capsys_model::{Cluster, RateSchedule, WorkerSpec};
use capsys_placement::CapsStrategy;
use capsys_queries::q1_sliding;
use capsys_sim::{ChaosConfig, FaultPlan, SimConfig};

const POLICY_INTERVAL: f64 = 5.0;

/// Minimal std-only flag parsing: `--seed N` and `--quick`.
fn parse_args() -> (u64, bool) {
    let mut seed = 7u64;
    let mut quick = fast_mode();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--seed expects an integer; using 7");
                        7
                    });
            }
            "--quick" => quick = true,
            other => eprintln!("ignoring unknown argument `{other}`"),
        }
    }
    (seed, quick)
}

/// The scenario's fault plan: exactly one model-skew fault, no other
/// chaos, so every effect in the trace is the governor's.
fn skew_plan(seed: u64, horizon: f64, workers: usize) -> FaultPlan {
    let config = ChaosConfig {
        seed,
        horizon,
        crashes: 0,
        stragglers: 0,
        blackouts: 0,
        metric_noise: 0.0,
        controller_kills: 0,
        model_skews: 1,
        skew_factor: (3.0, 4.0),
        ..ChaosConfig::default()
    };
    FaultPlan::generate(&config, workers).expect("valid chaos config")
}

struct Scenario {
    plan: FaultPlan,
    schedule: RateSchedule,
    base_rate: f64,
    step_at: f64,
    duration: f64,
}

/// Builds the seeded scenario: the rate steps up two policy intervals
/// after the skew onset, so the pre-step plan (the trusted one) is live
/// when the model goes stale and DS2's reaction lands on the stale
/// model.
fn scenario(seed: u64, duration: f64) -> Result<Scenario, Box<dyn std::error::Error>> {
    let query = q1_sliding();
    let cluster = Cluster::homogeneous(6, WorkerSpec::r5d_xlarge(4))?;
    let base_rate = query.capacity_rate(&cluster, 0.5)?;
    let plan = skew_plan(seed, duration, cluster.num_workers());
    let skew = plan.model_skew.expect("chaos config requested one skew");
    // Snap the step to a policy boundary strictly after the onset.
    let step_at = ((skew.time / POLICY_INTERVAL).floor() + 2.0) * POLICY_INTERVAL;
    let schedule = RateSchedule::Steps(vec![(0.0, base_rate), (step_at, 1.8 * base_rate)]);
    Ok(Scenario {
        plan,
        schedule,
        base_rate,
        step_at,
        duration,
    })
}

fn run_once(
    seed: u64,
    sc: &Scenario,
    guard: Option<GuardConfig>,
) -> Result<ClosedLoopTrace, Box<dyn std::error::Error>> {
    let query = q1_sliding();
    let cluster = Cluster::homogeneous(6, WorkerSpec::r5d_xlarge(4))?;
    let strategy = CapsStrategy::default();
    let mut loop_ = ClosedLoop::new(
        &query,
        &cluster,
        &strategy,
        Ds2Config {
            activation_period: 60.0,
            policy_interval: POLICY_INTERVAL,
            max_parallelism: 8,
            headroom: 1.0,
        },
        SimConfig {
            duration: 1.0,
            warmup: 0.0,
            ..SimConfig::default()
        },
        sc.schedule.clone(),
        seed,
    )?
    .with_fault_plan(sc.plan.clone())?;
    if let Some(config) = guard {
        loop_ = loop_.with_guard(config)?;
    }
    Ok(loop_.run(sc.duration)?)
}

/// Tracking ratio (throughput / target) over `[from, to]`.
fn tracking(trace: &ClosedLoopTrace, from: f64, to: f64) -> f64 {
    let tgt = trace.avg_target(from, to);
    if tgt > 0.0 {
        trace.avg_throughput(from, to) / tgt
    } else {
        1.0
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (seed, quick) = parse_args();
    banner(
        "Guard",
        "reconfiguration safety governor under model skew",
        "robustness extension (not a paper figure)",
    );
    let duration = if quick { 300.0 } else { 600.0 };
    let sc = scenario(seed, duration)?;
    let skew = sc.plan.model_skew.expect("scenario has a skew");
    println!(
        "Q1-sliding, seed {seed}, {duration}s, 6 workers; model goes {:.1}x stale at t={:.0}s, \
         rate steps {} -> {} at t={:.0}s\n",
        skew.factor,
        skew.time,
        fmt_rate(sc.base_rate),
        fmt_rate(1.8 * sc.base_rate),
        sc.step_at
    );

    let off = run_once(seed, &sc, None)?;
    let on = run_once(seed, &sc, Some(GuardConfig::default()))?;
    let tail_from = duration * 0.8;

    // --- Governor off: the regression persists. ---
    let off_tail = tracking(&off, tail_from, duration);
    println!("--- governor off ---");
    println!(
        "  scaling events: {}, rollbacks: {}, final-window tracking {:.0}%",
        off.events.len(),
        off.oscillations(),
        100.0 * off_tail
    );
    assert!(
        off.oscillations() == 0,
        "governor-off run cannot roll back"
    );
    assert!(
        !off.events.is_empty(),
        "the rate step must goad DS2 into rescaling onto the stale model"
    );
    assert!(
        off_tail < 0.85,
        "without the governor the stale-model plan should keep regressing \
         (tail tracking {off_tail:.2})"
    );

    // --- Governor on: detect, roll back, recover, stay stable. ---
    let config = GuardConfig::default();
    let on_tail = tracking(&on, tail_from, duration);
    println!("--- governor on ---");
    for e in &on.events {
        println!("  scaled at t={:.0}s to {:?}", e.time, e.parallelism);
    }
    for e in &on.rollback_events {
        println!(
            "  canary (epoch {}) deployed t={:.0}s, rolled back to epoch {} at t={:.0}s \
             (degraded {:.0}s): tracking {:.0}% vs baseline {:.0}%, cooldown until t={:.0}s",
            e.from_epoch,
            e.deployed_at,
            e.to_epoch,
            e.time,
            e.degraded_for,
            100.0 * e.observed_tracking,
            100.0 * e.baseline_tracking,
            e.cooldown_until
        );
    }
    println!(
        "  rollbacks: {}, time degraded: {:.0}s, final-window tracking {:.0}%",
        on.oscillations(),
        on.time_in_degraded(),
        100.0 * on_tail
    );
    println!(
        "  state moved: {} bytes, restore downtime {:.1} task-s\n",
        on.bytes_moved(),
        on.downtime()
    );
    assert!(
        !on.rollback_events.is_empty(),
        "the governor must detect the stale-model regression"
    );
    let first = &on.rollback_events[0];
    let deadline = (config.probation_windows as f64 + 1.0) * POLICY_INTERVAL;
    assert!(
        first.degraded_for <= deadline + 1e-9,
        "regression must be detected within one probation window \
         ({:.0}s > {deadline:.0}s)",
        first.degraded_for
    );
    assert!(
        on.oscillations() <= config.max_rollbacks,
        "rollback churn must be bounded by the governor's cap"
    );
    // Rolling back cannot make the old plan track the stepped-up target,
    // but it must restore at least the *throughput* the system had
    // before the incident — the regression itself is undone. Measure the
    // baseline before the rate step so its queue-drain transient (which
    // briefly admits above steady state) does not inflate it.
    let pre_tp = on.avg_throughput((sc.step_at - 20.0).max(0.0), sc.step_at);
    let post_tp = on.avg_throughput(first.time + 2.0 * POLICY_INTERVAL, duration);
    assert!(
        post_tp >= 0.9 * pre_tp,
        "post-rollback throughput {} must recover to >=90% of the pre-deploy \
         baseline {}",
        fmt_rate(post_tp),
        fmt_rate(pre_tp)
    );
    assert!(
        on_tail > off_tail,
        "the governed run must out-track the unguarded one"
    );

    // --- Determinism: same seed, same governed trace. ---
    let replay = run_once(seed, &sc, Some(GuardConfig::default()))?;
    let identical = replay.points == on.points
        && replay.events == on.events
        && replay.rollback_events == on.rollback_events;
    println!(
        "determinism: two seed-{seed} governed runs {}",
        if identical { "replay identically" } else { "DIVERGED" }
    );
    if !identical {
        return Err("same-seed governed runs diverged".into());
    }
    println!("\nall guard assertions passed");
    Ok(())
}
