//! Sharded multi-tenant fleet: lease-fenced controller failover at
//! 100+ workers.
//!
//! Multiple tenant jobs share one heterogeneous worker fleet. Each is
//! governed by its own shard controller holding an epoch-fenced lease
//! from the global arbiter; the `FleetController` drives them in
//! lockstep and records every cross-shard input (contention factors,
//! revocations) so the whole run is offline-replayable. This experiment
//! proves the control plane tolerates the death of its own deciders:
//!
//! * a **baseline** arm runs the fleet with no control-plane faults and
//!   locates the first scaling `Prepare` in the undersized tenant's
//!   journal;
//! * a **kill** arm re-runs the same fleet with that shard's controller
//!   killed exactly mid-reconfiguration (`KillPoint::MidReconfig`), a
//!   second shard's controller partitioned long enough to lose its
//!   lease (the split-brain probe: the stale holder stamps once on
//!   heal and must be fenced), and the arbiter itself killed and
//!   rebuilt from its own WAL mid-run.
//!
//! Self-asserted invariants: standby takeover within the lease MTTR
//! bound, zero split-brain stamps, every shard's final trace and
//! journal byte-identical to an uninterrupted offline replay of the
//! journaled decisions ([`capsys_controller::replay_shard`]), aggregate
//! fleet goodput within 10% of the no-kill baseline, admission control
//! rejecting an over-subscribed tenant, and a byte-identical same-seed
//! re-run. Writes `BENCH_fleet.json` (aggregate goodput, per-tenant
//! fairness as the max/min satisfaction ratio, per-window controller
//! decision latency, and failover MTTR) and validates it.
//!
//! Usage: `exp_fleet [--seed N] [--smoke]`

use std::time::Instant;

use capsys_bench::{banner, box_stats, fmt_rate};
use capsys_controller::journal::parse_journal;
use capsys_controller::{
    replay_shard, ArbiterConfig, DecisionRecord, FleetConfig, FleetController, FleetOutcome,
    FleetWorld, JobSpec, RecoveryConfig,
};
use capsys_core::SearchConfig;
use capsys_ds2::Ds2Config;
use capsys_model::{Cluster, RateSchedule, WorkerSpec};
use capsys_placement::FlinkDefault;
use capsys_sim::{DeciderFault, DeciderFaultKind, DeciderTarget, FaultPlan, KillPoint, SimConfig};
use capsys_util::json::{obj, Json};

/// Minimal std-only flag parsing: `--seed N` and `--smoke`.
fn parse_args() -> (u64, bool) {
    let mut seed = 7u64;
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--seed expects an integer; using 7");
                        7
                    });
            }
            "--smoke" => smoke = true,
            other => eprintln!("ignoring unknown argument `{other}`"),
        }
    }
    (seed, smoke)
}

/// Fixed fleet-shape parameters for one mode.
struct Shape {
    workers: usize,
    tenants: usize,
    /// Parallelism multiplier on every tenant query (grows task count).
    scale: usize,
    requested: usize,
    duration: f64,
}

const WINDOW: f64 = 5.0;
const LEASE: f64 = 12.0;
/// Partition window for the split-brain probe on shard 1.
const PARTITION: (f64, f64) = (60.0, 85.0);
/// Wall-clock arbiter kill (rebuilt live from its own WAL).
const ARBITER_KILL_AT: f64 = 45.0;

fn shape(smoke: bool) -> Shape {
    if smoke {
        Shape {
            workers: 120,
            tenants: 6,
            scale: 1,
            requested: 24,
            duration: 120.0,
        }
    } else {
        Shape {
            workers: 156,
            tenants: 12,
            scale: 5,
            requested: 24,
            duration: 150.0,
        }
    }
}

/// The heterogeneous global fleet: three instance families interleaved,
/// uniform slot count (a `Cluster::heterogeneous` requirement).
fn global_cluster(workers: usize) -> Cluster {
    let specs = (0..workers)
        .map(|i| match i % 3 {
            0 => WorkerSpec::m5d_2xlarge(8),
            1 => WorkerSpec::r5d_xlarge(8),
            _ => WorkerSpec::c5d_4xlarge(8),
        })
        .collect();
    Cluster::heterogeneous(specs).expect("uniform slot counts")
}

/// Zero search budget: the recovery ladder deterministically descends
/// to round-robin, independent of wall-clock speed — required for the
/// byte-identical replay assertions.
fn fast_recovery() -> RecoveryConfig {
    RecoveryConfig {
        search: SearchConfig {
            time_budget: Some(std::time::Duration::ZERO),
            ..SearchConfig::auto_tuned()
        },
        ..RecoveryConfig::default()
    }
}

/// Builds the tenant jobs. Tenant 0 is deliberately undersized
/// (parallelism 1 everywhere) against a target sized for its full
/// parallelism, so DS2 must scale it up — producing the journaled
/// `Prepare` the mid-reconfiguration kill lands on. A final "greedy"
/// tenant requests the entire fleet and must be rejected at admission.
fn make_jobs(seed: u64, sh: &Shape) -> Vec<JobSpec> {
    let tenants = capsys_queries::tenant_jobs(sh.tenants, sh.scale).expect("tenant fixtures");
    let reference = Cluster::homogeneous(sh.requested, WorkerSpec::m5d_2xlarge(8))
        .expect("reference pool cluster");
    let mut jobs = Vec::with_capacity(sh.tenants + 1);
    for (i, tenant) in tenants.into_iter().enumerate() {
        let max_parallelism = tenant
            .logical()
            .parallelism_vector()
            .into_iter()
            .max()
            .unwrap_or(1)
            .max(8);
        let (query, target_util) = if i == 0 {
            let ops = tenant.logical().num_operators();
            (
                tenant
                    .with_parallelism(&vec![1; ops])
                    .expect("undersized tenant"),
                0.35,
            )
        } else {
            (tenant, 0.5)
        };
        // Targets are sized against the *full-parallelism* tenant on a
        // reference pool, so the undersized tenant 0 cannot meet its
        // target without scaling up.
        let rate = capsys_queries::tenant_jobs(sh.tenants, sh.scale).expect("tenant fixtures")
            [i]
            .capacity_rate(&reference, target_util)
            .expect("capacity rate");
        jobs.push(JobSpec {
            name: format!("tenant-{i}"),
            query,
            schedule: RateSchedule::Constant(rate),
            ds2: Ds2Config {
                activation_period: 20.0,
                policy_interval: WINDOW,
                max_parallelism,
                headroom: 1.0,
            },
            sim: SimConfig {
                duration: 1.0,
                warmup: 0.0,
                ..SimConfig::default()
            },
            seed: seed.wrapping_add(i as u64),
            weight: 1.0 + (i % 3) as f64,
            requested_workers: sh.requested,
            recovery: fast_recovery(),
            faults: None,
        });
    }
    // The greedy tenant wants every worker; with the others admitted
    // there are not enough under-tenancy workers left.
    let mut greedy = jobs[1].clone();
    greedy.name = "greedy".into();
    greedy.requested_workers = sh.workers;
    jobs.push(greedy);
    jobs
}

fn fleet_config(control_faults: FaultPlan) -> FleetConfig {
    FleetConfig {
        arbiter: ArbiterConfig {
            max_tenancy: 2,
            lease_duration: LEASE,
            // Far above any plausible utilization: the bench isolates
            // failover; revocation is exercised by the unit suite.
            overload_util: 50.0,
            overload_windows: 2,
            min_pool: 2,
            ..ArbiterConfig::default()
        },
        alpha: 0.5,
        window: WINDOW,
        control_faults,
    }
}

/// Runs one fleet arm to completion. Returns the outcome, the world
/// (for offline replays), and per-window decision latencies.
fn run_arm(
    seed: u64,
    sh: &Shape,
    faults: FaultPlan,
) -> Result<(FleetOutcome, FleetWorld, Vec<f64>), Box<dyn std::error::Error>> {
    let global = global_cluster(sh.workers);
    let config = fleet_config(faults);
    let (world, arbiter, buf) =
        FleetWorld::build(&global, make_jobs(seed, sh), Box::new(FlinkDefault), &config)?;
    if world.jobs().len() != sh.tenants {
        return Err(format!(
            "expected {} admitted tenants, got {}",
            sh.tenants,
            world.jobs().len()
        )
        .into());
    }
    if world.rejected() != ["greedy".to_string()] {
        return Err(format!(
            "admission control failed: rejected = {:?}, expected exactly [\"greedy\"]",
            world.rejected()
        )
        .into());
    }
    let mut fc = FleetController::new(&world, arbiter, buf, config)?;
    let mut latencies_ms = Vec::new();
    while fc.time() < sh.duration - 1e-9 {
        let t0 = Instant::now();
        fc.step_window()?;
        latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    let outcome = fc.finish()?;
    Ok((outcome, world, latencies_ms))
}

/// Aggregate time-integrated goodput over all shards.
fn total_goodput(o: &FleetOutcome) -> f64 {
    o.shards.iter().map(|s| s.goodput).sum()
}

/// Per-tenant fairness: max/min ratio of goodput-to-target
/// satisfaction across shards.
fn fairness_ratio(o: &FleetOutcome) -> f64 {
    let sats: Vec<f64> = o
        .shards
        .iter()
        .map(|s| if s.target > 0.0 { s.goodput / s.target } else { 0.0 })
        .collect();
    let max = sats.iter().fold(f64::MIN, |a, &b| a.max(b));
    let min = sats.iter().fold(f64::MAX, |a, &b| a.min(b));
    if min > 0.0 {
        max / min
    } else {
        f64::INFINITY
    }
}

/// Everything deterministic about an outcome, for the same-seed replay
/// check: traces, journals, history, the arbiter WAL, and the event
/// counters.
fn fingerprint(o: &FleetOutcome) -> String {
    let mut s = String::new();
    for shard in &o.shards {
        s.push_str(&shard.name);
        s.push_str(&shard.trace_json);
        s.push_str(&shard.journal);
        for w in &shard.history {
            s.push_str(&format!("{w:?}"));
        }
    }
    s.push_str(&o.arbiter_log);
    s.push_str(&format!(
        "takeovers={:?} reacq={} fenced={} split={} arb={}",
        o.takeovers, o.reacquisitions, o.fenced_attempts, o.split_brain_stamps,
        o.arbiter_recoveries
    ));
    s
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let started = Instant::now();
    let (seed, smoke) = parse_args();
    banner(
        "Fleet",
        "sharded multi-tenant control plane with lease-fenced failover",
        "robustness extension (not a paper figure)",
    );
    let sh = shape(smoke);
    println!(
        "seed {seed}, {} workers, {} tenants (+1 rejected), window {WINDOW}s, \
         lease {LEASE}s, {}s per arm\n",
        sh.workers, sh.tenants, sh.duration
    );

    // ---- Arm B: no control-plane faults (the goodput baseline). ----
    let (baseline, _, _) = run_arm(seed, &sh, FaultPlan::default())?;
    if !baseline.takeovers.is_empty() || baseline.fenced_attempts != 0 {
        return Err("baseline arm saw takeovers or fenced stamps with no faults".into());
    }
    for s in &baseline.shards {
        parse_journal(&s.journal).map_err(|e| format!("{}: journal unreadable: {e}", s.name))?;
    }

    // The undersized tenant 0 must have journaled a scaling Prepare the
    // kill arm can land on mid-reconfiguration.
    let shard0 = parse_journal(&baseline.shards[0].journal)?;
    let prepare_epoch = shard0
        .records
        .iter()
        .find_map(|r| match r {
            DecisionRecord::Prepare { epoch, .. } => Some(*epoch),
            _ => None,
        })
        .ok_or("tenant 0 never journaled a scaling Prepare; nothing to kill mid-reconfig")?;
    println!(
        "[baseline] {} windows, aggregate goodput {} records; tenant 0 \
         scales at Prepare(epoch {prepare_epoch})",
        baseline.windows,
        fmt_rate(total_goodput(&baseline))
    );

    // ---- Arm A: kill shard 0 mid-reconfig, partition shard 1 past ----
    // its lease (split-brain probe), kill the arbiter mid-run.
    let faults = FaultPlan::default()
        .with_decider_fault(DeciderFault {
            target: DeciderTarget::Shard(0),
            kind: DeciderFaultKind::Kill(KillPoint::MidReconfig(prepare_epoch)),
        })?
        .with_decider_fault(DeciderFault {
            target: DeciderTarget::Shard(1),
            kind: DeciderFaultKind::Partition {
                from: PARTITION.0,
                until: PARTITION.1,
            },
        })?
        .with_decider_fault(DeciderFault {
            target: DeciderTarget::Arbiter,
            kind: DeciderFaultKind::Kill(KillPoint::AtTime(ARBITER_KILL_AT)),
        })?;
    let (killed, world, latencies_ms) = run_arm(seed, &sh, faults.clone())?;

    // Initial deployment size of the placement problem.
    let total_tasks: usize = world
        .jobs()
        .iter()
        .map(|j| j.query.logical().total_tasks())
        .sum();
    println!(
        "[kill] {} tenants, {total_tasks} tasks on {} workers; {} takeover(s), \
         {} fenced stamp(s), {} split-brain, arbiter recovered {}x",
        world.jobs().len(),
        sh.workers,
        killed.takeovers.len(),
        killed.fenced_attempts,
        killed.split_brain_stamps,
        killed.arbiter_recoveries
    );
    if smoke {
        assert!(sh.workers >= 100 && sh.tenants >= 4, "smoke floor: >=4 tenants on >=100 workers");
    } else {
        assert!(
            total_tasks >= 1000,
            "full mode must place 1000+ tasks, got {total_tasks}"
        );
    }

    // Failover invariants.
    let mttr_bound = LEASE + 2.0 * WINDOW;
    assert!(
        killed.takeovers.iter().any(|t| t.shard == 0 && t.term == 2),
        "no standby takeover of the killed shard 0 at term 2: {:?}",
        killed.takeovers
    );
    assert!(
        killed.takeovers.iter().any(|t| t.shard == 1),
        "no standby takeover of the partitioned shard 1: {:?}",
        killed.takeovers
    );
    for t in &killed.takeovers {
        assert!(
            t.mttr() <= mttr_bound + 1e-9,
            "shard {} failover MTTR {}s exceeds the {mttr_bound}s bound",
            t.shard,
            t.mttr()
        );
        println!(
            "  takeover: shard {} term {} lost at t={} recovered at t={} (MTTR {:.0}s)",
            t.shard, t.term, t.lost_at, t.acquired_at, t.mttr()
        );
    }
    assert_eq!(
        killed.split_brain_stamps, 0,
        "a zombie stamp passed the lease barrier"
    );
    assert!(
        killed.fenced_attempts >= 1,
        "the healed zombie never probed the lease barrier; split-brain=0 would be vacuous"
    );
    assert_eq!(killed.arbiter_recoveries, 1, "arbiter kill did not recover");

    // The standby rolled the in-doubt reconfiguration forward: its
    // re-journaled log holds both the Prepare it inherited mid-flight
    // and the Commit it finished.
    let recovered0 = parse_journal(&killed.shards[0].journal)?;
    let has_prepare = recovered0.records.iter().any(
        |r| matches!(r, DecisionRecord::Prepare { epoch, .. } if *epoch == prepare_epoch),
    );
    let has_commit = recovered0.records.iter().any(
        |r| matches!(r, DecisionRecord::Commit { epoch, .. } if *epoch == prepare_epoch),
    );
    assert!(
        has_prepare && has_commit,
        "standby did not roll the in-doubt Prepare(epoch {prepare_epoch}) forward"
    );

    // Offline convergence proof: every shard's journal + recorded
    // history replays to a byte-identical trace and journal.
    for (s, shard) in killed.shards.iter().enumerate() {
        let (trace, journal) = replay_shard(
            &world.jobs()[s],
            &world.clusters()[s],
            &FlinkDefault,
            &shard.journal,
            &shard.history,
            WINDOW,
        )?;
        assert_eq!(
            trace, shard.trace_json,
            "shard {s} ({}) replayed trace DIVERGED",
            shard.name
        );
        assert_eq!(
            journal, shard.journal,
            "shard {s} ({}) replayed journal DIVERGED",
            shard.name
        );
    }
    println!(
        "  replay: {} shard(s) byte-identical (trace and journal)",
        killed.shards.len()
    );

    // Aggregate goodput within 10% of the no-kill baseline: the data
    // plane runs through control-plane outages.
    let g_kill = total_goodput(&killed);
    let g_base = total_goodput(&baseline);
    let ratio = g_kill / g_base;
    assert!(
        (ratio - 1.0).abs() <= 0.10,
        "kill-arm goodput {} vs baseline {} (ratio {ratio:.3}) outside 10%",
        fmt_rate(g_kill),
        fmt_rate(g_base)
    );
    println!(
        "  goodput: kill arm {} vs baseline {} (ratio {:.3})",
        fmt_rate(g_kill),
        fmt_rate(g_base),
        ratio
    );

    // Per-tenant fairness.
    println!("\n  tenant             goodput    target     satisfaction");
    for s in &killed.shards {
        println!(
            "  {:<18} {:>8}  {:>8}       {:.3}",
            s.name,
            fmt_rate(s.goodput),
            fmt_rate(s.target),
            if s.target > 0.0 { s.goodput / s.target } else { 0.0 }
        );
    }
    let fair_kill = fairness_ratio(&killed);
    let fair_base = fairness_ratio(&baseline);
    assert!(fair_kill.is_finite(), "a tenant made no progress at all");
    println!("  fairness (max/min satisfaction): kill {fair_kill:.2}, baseline {fair_base:.2}");

    // Controller decision latency (wall-clock per fleet window).
    let lat = box_stats(&latencies_ms);
    println!(
        "  decision latency per window: mean {:.1}ms, median {:.1}ms, max {:.1}ms",
        lat.mean, lat.median, lat.max
    );

    // Same-seed determinism: the whole fleet, faults and all, replays
    // byte-identically.
    let (killed2, _, _) = run_arm(seed, &sh, faults)?;
    assert_eq!(
        fingerprint(&killed),
        fingerprint(&killed2),
        "same-seed fleet re-run DIVERGED"
    );
    println!("  same-seed re-run: byte-identical");

    // ---- BENCH_fleet.json ----
    let takeovers_json: Vec<Json> = killed
        .takeovers
        .iter()
        .map(|t| {
            obj(vec![
                ("shard", Json::Num(t.shard as f64)),
                ("term", Json::Num(t.term as f64)),
                ("lost_at", Json::Num(t.lost_at)),
                ("acquired_at", Json::Num(t.acquired_at)),
                ("mttr", Json::Num(t.mttr())),
            ])
        })
        .collect();
    let record = obj(vec![
        ("schema", Json::Str("capsys/bench-fleet/v1".to_string())),
        ("seed", Json::Num(seed as f64)),
        ("smoke", Json::Bool(smoke)),
        ("workers", Json::Num(sh.workers as f64)),
        ("tenants", Json::Num(sh.tenants as f64)),
        ("tasks", Json::Num(total_tasks as f64)),
        ("windows", Json::Num(killed.windows as f64)),
        ("goodput_kill", Json::Num(g_kill)),
        ("goodput_baseline", Json::Num(g_base)),
        ("goodput_ratio", Json::Num(ratio)),
        ("fairness_kill", Json::Num(fair_kill)),
        ("fairness_baseline", Json::Num(fair_base)),
        ("takeovers", Json::Arr(takeovers_json)),
        ("mttr_bound", Json::Num(mttr_bound)),
        ("fenced_attempts", Json::Num(killed.fenced_attempts as f64)),
        ("split_brain_stamps", Json::Num(killed.split_brain_stamps as f64)),
        ("reacquisitions", Json::Num(killed.reacquisitions as f64)),
        ("arbiter_recoveries", Json::Num(killed.arbiter_recoveries as f64)),
        ("rejected_at_admission", Json::Num(1.0)),
        ("replay_identical", Json::Bool(true)),
        ("same_seed_identical", Json::Bool(true)),
        ("step_ms_mean", Json::Num(lat.mean)),
        ("step_ms_max", Json::Num(lat.max)),
        ("total_seconds", Json::Num(started.elapsed().as_secs_f64())),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");
    std::fs::write(path, record.to_pretty() + "\n")?;
    println!("\nwrote {path}");

    // The record must round-trip and carry the keys the acceptance
    // criteria rely on.
    let raw = std::fs::read_to_string(path)?;
    let parsed = Json::parse(&raw).map_err(|e| format!("BENCH_fleet.json must parse: {e}"))?;
    for key in [
        "schema",
        "seed",
        "workers",
        "tenants",
        "tasks",
        "goodput_ratio",
        "takeovers",
        "split_brain_stamps",
        "replay_identical",
    ] {
        assert!(parsed.get(key).is_some(), "missing key {key:?}");
    }
    let reread_ratio = parsed
        .get("goodput_ratio")
        .and_then(Json::as_f64)
        .ok_or("goodput_ratio must be a number")?;
    assert!((reread_ratio - 1.0).abs() <= 0.10);
    assert_eq!(
        parsed.get("split_brain_stamps").and_then(Json::as_f64),
        Some(0.0)
    );

    println!(
        "\nall fleet invariants hold ({:.1}s)",
        started.elapsed().as_secs_f64()
    );
    Ok(())
}
