//! Search-performance trajectory: nodes/sec, wall time, thread scaling,
//! and auto-tune warm-start gains, recorded PR-over-PR.
//!
//! Runs the CAPS search on a Table-2-scale topology (Q3-inf ×2 on an
//! 8-worker cluster; `--smoke` shrinks to Q3-inf on 5 workers) across
//! `threads ∈ {1, 2, 4, 8}`, then times threshold auto-tuning with the
//! warm-start probe cache on and off. Results are written to
//! `BENCH_search.json` at the repository root so successive PRs leave a
//! comparable perf record.
//!
//! v2 additions: every scaling row reports the dead-state memo hits and
//! re-verifies the exact fixed-point accumulator (stored costs must equal
//! a from-scratch recost bit-for-bit); a dedicated section measures the
//! memo on a 64-task symmetric topology, where cross-layer transpositions
//! actually occur; and the 1.5× parallel-speedup gate is honest — it is
//! *skipped with an explicit marker* (recorded in BENCH_search.json next
//! to `hardware_threads`) when the machine cannot physically provide a
//! speedup, instead of silently passing or failing on single-core
//! runners.
//!
//! The smoke mode sanity-checks the run: the feasible plan count must be
//! identical across thread counts and the warm-started tuner must not
//! launch more probe searches than the cold one.

use std::collections::HashMap;
use std::time::Instant;

use capsys_bench::banner;
use capsys_core::{AutoTuneConfig, AutoTuner, CapsSearch, SearchConfig, Thresholds};
use capsys_model::{
    Cluster, ConnectionPattern, LoadModel, LogicalGraph, OperatorId, OperatorKind, PhysicalGraph,
    ResourceProfile, WorkerSpec,
};
use capsys_queries::q3_inf;
use capsys_util::json::{obj, Json};

/// Hard floor on the 4-thread speedup when ≥ 4 hardware threads exist.
const MIN_SPEEDUP_4T: f64 = 1.5;

/// Network threshold for the symmetric-topology memo section. CPU and
/// I/O are symmetric there (every complete plan balances them exactly),
/// so only the net dimension prunes. `0.2` sits below the first-witness
/// cost of ~0.47 but above the best collocated plans, leaving a thin
/// feasible set (~8.6k plans) inside a tree small enough to explore
/// completely with the memo both on and off.
const SYM_NET_ALPHA: f64 = 0.2;

/// A 64-task chain of sixteen *identical* operators (4 tasks each)
/// joined by hash shuffles. Every task carries the same exact load, so
/// the search reaches equal states down many different prefixes — the
/// cross-layer transpositions the dead-state memo exists to catch, which
/// heterogeneous queries like Q3-inf almost never produce. The deep
/// chain (many memoizable layer boundaries) is what makes the effect
/// large.
fn symmetric_query() -> (LogicalGraph, HashMap<OperatorId, f64>) {
    let mut b = LogicalGraph::builder("sym64");
    let profile = ResourceProfile::new(0.001, 0.0, 100.0, 1.0);
    let src = b.operator("src", OperatorKind::Source, 4, profile);
    let mut prev = src;
    for i in 1..=14 {
        let op = b.operator(&format!("map{i}"), OperatorKind::Stateless, 4, profile);
        b.edge(prev, op, ConnectionPattern::Hash);
        prev = op;
    }
    let sink = b.operator("sink", OperatorKind::Sink, 4, profile);
    b.edge(prev, sink, ConnectionPattern::Hash);
    let mut rates = HashMap::new();
    rates.insert(src, 1000.0);
    (b.build().expect("symmetric graph"), rates)
}

fn parse_args() -> bool {
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            other => {
                eprintln!("unknown argument: {other} (supported: --smoke)");
                std::process::exit(2);
            }
        }
    }
    smoke
}

/// Fastest of the timed reps. On a shared runner, scheduler noise only
/// ever *adds* wall time, so the minimum is the robust estimator of what
/// the search can actually sustain — a median would bounce with the
/// machine's load average.
fn best(xs: Vec<f64>) -> f64 {
    xs.into_iter().fold(f64::INFINITY, f64::min)
}

fn main() {
    let smoke = parse_args();
    banner(
        "Search perf",
        "nodes/sec, thread scaling, auto-tune warm-start",
        "§5.1-5.2",
    );

    let (query, num_workers, alpha, reps) = if smoke {
        (q3_inf(), 5usize, Thresholds::new(0.5, 0.5, f64::INFINITY), 5)
    } else {
        (
            q3_inf().scaled(2).expect("scaling"),
            8usize,
            Thresholds::new(0.35, f64::INFINITY, f64::INFINITY),
            2,
        )
    };
    let cluster = Cluster::homogeneous(num_workers, WorkerSpec::r5d_xlarge(4)).expect("cluster");
    let physical = query.physical();
    let loads = query.load_model(&physical).expect("loads");
    let search = CapsSearch::new(query.logical(), &physical, &cluster, &loads).expect("search");
    let hardware_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!(
        "{}: {} tasks on {} workers x {} slots, alpha=({}, {}, {}), {} hardware threads\n",
        if smoke { "Q3-inf (smoke)" } else { "Q3-inf x2" },
        physical.num_tasks(),
        cluster.num_workers(),
        cluster.slots_per_worker(),
        alpha.cpu,
        alpha.io,
        alpha.net,
        hardware_threads,
    );

    // --- Thread-scaling sweep -------------------------------------------
    let header = format!(
        "{:<8} {:>10} {:>12} {:>14} {:>10} {:>10} {:>6}",
        "threads", "wall_ms", "nodes", "nodes/sec", "plans", "memo_hits", "exact"
    );
    println!("{header}");
    capsys_bench::rule(&header);

    let mut scaling = Vec::new();
    let mut wall_by_threads = HashMap::new();
    let mut plan_counts = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        // A realistic cap: CAPS deployments keep a shortlist of the best
        // plans, not every feasible leaf. The capped store also exercises
        // the schedule-independent truncation path under load.
        let config = SearchConfig {
            threads,
            max_plans: 64,
            ..SearchConfig::with_thresholds(alpha)
        };
        // One untimed warmup: the first run after a topology switch pays
        // for page faults and frequency ramp-up, which would skew a
        // small-rep median.
        search.run(&config).expect("warmup runs");
        let mut walls = Vec::new();
        let mut last = None;
        for _ in 0..reps {
            let out = search.run(&config).expect("search runs");
            assert!(!out.stats.aborted, "scaling run must complete");
            walls.push(out.stats.elapsed.as_secs_f64() * 1e3);
            last = Some(out);
        }
        let out = last.expect("at least one rep");
        // Exact-accumulator audit: every stored cost came from the
        // incremental fixed-point accumulator; a from-scratch recost of
        // the same plan must reproduce it bit-for-bit, not within an
        // epsilon.
        let exact = out.feasible.iter().all(|sp| {
            let recost = search.cost_model().cost(&physical, &sp.plan);
            [
                (recost.cpu, sp.cost.cpu),
                (recost.io, sp.cost.io),
                (recost.net, sp.cost.net),
            ]
            .iter()
            .all(|(a, b)| a.to_bits() == b.to_bits())
        });
        assert!(
            exact,
            "incremental accumulator drifted from from-scratch recost at {threads} threads"
        );
        let wall_ms = best(walls);
        let nodes_per_sec = out.stats.nodes as f64 / (wall_ms / 1e3);
        println!(
            "{:<8} {:>10.1} {:>12} {:>14.0} {:>10} {:>10} {:>6}",
            threads,
            wall_ms,
            out.stats.nodes,
            nodes_per_sec,
            out.stats.plans_found,
            out.stats.memo_hits,
            exact
        );
        wall_by_threads.insert(threads, wall_ms);
        plan_counts.push(out.stats.plans_found);
        scaling.push(obj(vec![
            ("threads", Json::Num(threads as f64)),
            ("wall_ms", Json::Num(wall_ms)),
            ("nodes", Json::Num(out.stats.nodes as f64)),
            ("nodes_per_sec", Json::Num(nodes_per_sec)),
            ("plans_found", Json::Num(out.stats.plans_found as f64)),
            ("memo_hits", Json::Num(out.stats.memo_hits as f64)),
            ("exact_accumulator", Json::Bool(exact)),
        ]));
    }

    let identical = plan_counts.iter().all(|&c| c == plan_counts[0]);
    assert!(
        identical,
        "plan counts diverged across thread counts: {plan_counts:?}"
    );
    let speedup = |t: usize| wall_by_threads[&1] / wall_by_threads[&t];
    if hardware_threads > 1 {
        println!(
            "\nspeedup: 2t {:.2}x, 4t {:.2}x, 8t {:.2}x",
            speedup(2),
            speedup(4),
            speedup(8)
        );
    } else {
        // On a single-hardware-thread machine the per-thread ratios are
        // pure scheduler noise around 1.0; printing or recording them
        // would invite reading meaning into noise, so they are
        // suppressed entirely and only the skip marker is kept.
        println!("\nspeedup columns suppressed: 1 hardware thread");
    }

    // --- Auto-tune warm-start -------------------------------------------
    let tune_base = SearchConfig::auto_tuned();
    let cold_cfg = AutoTuneConfig {
        warm_start: false,
        ..AutoTuneConfig::default()
    };
    let t0 = Instant::now();
    let warm = AutoTuner::new(&tune_base.auto_tune)
        .tune(&search, &tune_base)
        .expect("warm tune");
    let warm_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let cold = AutoTuner::new(&cold_cfg)
        .tune(&search, &tune_base)
        .expect("cold tune");
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        warm.thresholds, cold.thresholds,
        "warm-start must not change the tuned thresholds"
    );
    assert!(
        warm.probe_searches <= cold.probe_searches,
        "warm-start launched more searches ({}) than cold ({})",
        warm.probe_searches,
        cold.probe_searches
    );
    println!(
        "auto-tune: warm {:.1} ms ({} searches + {} cache hits), cold {:.1} ms ({} searches)",
        warm_ms, warm.probe_searches, warm.cache_hits, cold_ms, cold.probe_searches
    );

    // --- Speedup gate ----------------------------------------------------
    // The 1.5× floor only makes sense when 4 hardware threads exist; on
    // smaller runners the gate is *skipped*, and the skip is recorded in
    // BENCH_search.json so a passing record from a single-core CI box
    // cannot be mistaken for a measured speedup.
    let speedup_gate = if hardware_threads >= 4 {
        assert!(
            speedup(4) >= MIN_SPEEDUP_4T,
            "4-thread speedup {:.2}x below the {MIN_SPEEDUP_4T}x floor",
            speedup(4)
        );
        format!("enforced: {:.2}x >= {MIN_SPEEDUP_4T}x", speedup(4))
    } else {
        let marker = format!(
            "skipped: {hardware_threads} hw thread{}",
            if hardware_threads == 1 { "" } else { "s" }
        );
        println!("speedup gate {marker} (need >= 4 for the {MIN_SPEEDUP_4T}x floor)");
        marker
    };

    // --- Dead-state memo on a symmetric topology ------------------------
    // Q3-inf's heterogeneous loads almost never produce equal exact load
    // multisets down two different prefixes, so the memo is idle there
    // (by design — that is the honest number for realistic queries). The
    // transpositions it exists for come from *symmetric* topologies:
    // identical operators make states reached in different layer orders
    // coincide exactly. This section measures that effect on a 64-task
    // chain of identical operators and gates on the memo actually firing.
    let (sym_query, sym_rates) = symmetric_query();
    let sym_physical = PhysicalGraph::expand(&sym_query);
    let sym_cluster = Cluster::homogeneous(2, WorkerSpec::r5d_xlarge(32)).expect("sym cluster");
    let sym_loads =
        LoadModel::derive(&sym_query, &sym_physical, &sym_rates).expect("sym loads");
    let sym_search =
        CapsSearch::new(&sym_query, &sym_physical, &sym_cluster, &sym_loads).expect("sym search");
    let sym_alpha = Thresholds::new(f64::INFINITY, f64::INFINITY, SYM_NET_ALPHA);
    println!(
        "\nsymmetric memo: {} tasks on {} workers x {} slots, alpha.net={}",
        sym_physical.num_tasks(),
        sym_cluster.num_workers(),
        sym_cluster.slots_per_worker(),
        SYM_NET_ALPHA,
    );
    let mut sym_rows = Vec::new();
    let mut sym_outcomes = Vec::new();
    for memo_on in [true, false] {
        let base = SearchConfig {
            threads: 1,
            max_plans: 64,
            ..SearchConfig::with_thresholds(sym_alpha)
        };
        let config = if memo_on { base } else { base.without_memo() };
        let t0 = Instant::now();
        let out = sym_search.run(&config).expect("symmetric search runs");
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert!(!out.stats.aborted, "symmetric run must complete");
        println!(
            "  memo {:<3}  wall {:>8.1} ms  nodes {:>9}  plans {:>6}  hits {:>7}",
            if memo_on { "on" } else { "off" },
            wall_ms,
            out.stats.nodes,
            out.stats.plans_found,
            out.stats.memo_hits
        );
        sym_rows.push(obj(vec![
            ("memo", Json::Bool(memo_on)),
            ("wall_ms", Json::Num(wall_ms)),
            ("nodes", Json::Num(out.stats.nodes as f64)),
            ("plans_found", Json::Num(out.stats.plans_found as f64)),
            ("memo_hits", Json::Num(out.stats.memo_hits as f64)),
        ]));
        sym_outcomes.push(out);
    }
    let (with_memo, without_memo) = (&sym_outcomes[0], &sym_outcomes[1]);
    assert_eq!(
        with_memo.stats.plans_found, without_memo.stats.plans_found,
        "memo changed the feasible plan count"
    );
    assert_eq!(
        with_memo.feasible.len(),
        without_memo.feasible.len(),
        "memo changed the stored plan count"
    );
    for (a, b) in with_memo.feasible.iter().zip(&without_memo.feasible) {
        assert_eq!(a.plan, b.plan, "memo changed a stored plan");
    }
    assert!(
        with_memo.stats.plans_found > 0,
        "symmetric topology must have a feasible set at alpha.net={SYM_NET_ALPHA}"
    );
    assert!(
        with_memo.stats.memo_hits > 0,
        "memo never fired on the symmetric topology"
    );
    assert!(
        with_memo.stats.nodes <= without_memo.stats.nodes,
        "memo increased the node count"
    );
    let hit_rate = with_memo.stats.memo_hits as f64 / without_memo.stats.nodes as f64;
    let nodes_saved = without_memo.stats.nodes - with_memo.stats.nodes;
    println!(
        "  {} hits pruned {} of {} nodes ({:.1}%)",
        with_memo.stats.memo_hits,
        nodes_saved,
        without_memo.stats.nodes,
        100.0 * nodes_saved as f64 / without_memo.stats.nodes as f64
    );

    // --- Record ----------------------------------------------------------
    let generated_unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let record = obj(vec![
        ("schema", Json::Str("capsys/bench-search/v2".into())),
        (
            "mode",
            Json::Str(if smoke { "smoke" } else { "full" }.into()),
        ),
        ("generated_unix", Json::Num(generated_unix as f64)),
        ("hardware_threads", Json::Num(hardware_threads as f64)),
        (
            "topology",
            obj(vec![
                ("query", Json::Str(query.name().into())),
                ("tasks", Json::Num(physical.num_tasks() as f64)),
                ("workers", Json::Num(cluster.num_workers() as f64)),
                (
                    "slots_per_worker",
                    Json::Num(cluster.slots_per_worker() as f64),
                ),
            ]),
        ),
        (
            "alpha",
            obj(vec![
                ("cpu", Json::Num(alpha.cpu)),
                ("io", Json::Num(alpha.io)),
                ("net", Json::Num(alpha.net)),
            ]),
        ),
        ("scaling", Json::Arr(scaling)),
        (
            "speedup",
            obj(if hardware_threads > 1 {
                vec![
                    ("t2", Json::Num(speedup(2))),
                    ("t4", Json::Num(speedup(4))),
                    ("t8", Json::Num(speedup(8))),
                    ("gate", Json::Str(speedup_gate.clone())),
                ]
            } else {
                vec![("gate", Json::Str(speedup_gate.clone()))]
            }),
        ),
        (
            "symmetric_memo",
            obj(vec![
                ("tasks", Json::Num(sym_physical.num_tasks() as f64)),
                ("workers", Json::Num(sym_cluster.num_workers() as f64)),
                ("alpha_net", Json::Num(SYM_NET_ALPHA)),
                ("runs", Json::Arr(sym_rows)),
                ("hit_rate", Json::Num(hit_rate)),
                ("nodes_saved", Json::Num(nodes_saved as f64)),
            ]),
        ),
        (
            "autotune",
            obj(vec![
                ("warm_ms", Json::Num(warm_ms)),
                ("cold_ms", Json::Num(cold_ms)),
                ("speedup", Json::Num(cold_ms / warm_ms)),
                (
                    "warm_probe_searches",
                    Json::Num(warm.probe_searches as f64),
                ),
                ("warm_cache_hits", Json::Num(warm.cache_hits as f64)),
                (
                    "cold_probe_searches",
                    Json::Num(cold.probe_searches as f64),
                ),
                (
                    "thresholds",
                    obj(vec![
                        ("cpu", Json::Num(warm.thresholds.cpu)),
                        ("io", Json::Num(warm.thresholds.io)),
                        ("net", Json::Num(warm.thresholds.net)),
                    ]),
                ),
            ]),
        ),
        (
            "determinism",
            obj(vec![
                ("plans_found", Json::Num(plan_counts[0] as f64)),
                ("identical_across_threads", Json::Bool(identical)),
            ]),
        ),
    ]);

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_search.json");
    std::fs::write(path, record.to_pretty() + "\n").expect("write BENCH_search.json");

    // Validate what landed on disk: a malformed record must fail the run.
    let raw = std::fs::read_to_string(path).expect("re-read BENCH_search.json");
    let parsed = Json::parse(&raw).expect("BENCH_search.json must parse");
    for key in [
        "schema",
        "mode",
        "hardware_threads",
        "topology",
        "alpha",
        "scaling",
        "speedup",
        "symmetric_memo",
        "autotune",
        "determinism",
    ] {
        assert!(
            parsed.get(key).is_some(),
            "BENCH_search.json is missing key {key:?}"
        );
    }
    assert_eq!(
        parsed.get("schema").and_then(Json::as_str),
        Some("capsys/bench-search/v2")
    );
    // The skip marker (or enforcement record) must have landed on disk.
    assert!(
        parsed
            .get("speedup")
            .and_then(|s| s.get("gate"))
            .and_then(Json::as_str)
            .is_some_and(|g| g.starts_with("enforced") || g.starts_with("skipped")),
        "speedup gate marker missing from BENCH_search.json"
    );
    // On a 1-hardware-thread machine the gate must read `skipped` and
    // the per-thread speedup columns must be absent, not merely NaN or
    // noise-valued.
    if hardware_threads == 1 {
        let sp = parsed.get("speedup").expect("speedup section");
        assert!(
            sp.get("gate")
                .and_then(Json::as_str)
                .is_some_and(|g| g.starts_with("skipped")),
            "gate must read `skipped` with 1 hardware thread"
        );
        for key in ["t2", "t4", "t8"] {
            assert!(
                sp.get(key).is_none(),
                "speedup column {key:?} must be suppressed with 1 hardware thread"
            );
        }
    }
    assert_eq!(
        parsed
            .get("scaling")
            .and_then(Json::as_array)
            .map(|a| a.len()),
        Some(4)
    );

    println!("\nwrote {path}");
}
