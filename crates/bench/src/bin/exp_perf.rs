//! Search-performance trajectory: nodes/sec, wall time, thread scaling,
//! and auto-tune warm-start gains, recorded PR-over-PR.
//!
//! Runs the CAPS search on a Table-2-scale topology (Q3-inf ×2 on an
//! 8-worker cluster; `--smoke` shrinks to Q3-inf on 5 workers) across
//! `threads ∈ {1, 2, 4, 8}`, then times threshold auto-tuning with the
//! warm-start probe cache on and off. Results are written to
//! `BENCH_search.json` at the repository root so successive PRs leave a
//! comparable perf record.
//!
//! The smoke mode sanity-checks the run: the feasible plan count must be
//! identical across thread counts, the warm-started tuner must not
//! launch more probe searches than the cold one, and — when the machine
//! actually has ≥ 4 hardware threads — the 4-thread search must be at
//! least 1.5× faster than 1 thread. On smaller machines (CI containers
//! are often single-core) the speedup is recorded but only a bounded
//! overhead is asserted, with a note in the output.

use std::time::Instant;

use capsys_bench::banner;
use capsys_core::{AutoTuneConfig, AutoTuner, CapsSearch, SearchConfig, Thresholds};
use capsys_model::{Cluster, WorkerSpec};
use capsys_queries::q3_inf;
use capsys_util::json::{obj, Json};

/// Hard floor on the 4-thread speedup when ≥ 4 hardware threads exist.
const MIN_SPEEDUP_4T: f64 = 1.5;

/// On machines with fewer hardware threads a real speedup is physically
/// unattainable; assert only that the work-stealing runtime's overhead
/// stays bounded (time-sliced threads should not cost 2× wall clock).
const MIN_SPEEDUP_OVERSUBSCRIBED: f64 = 0.45;

fn parse_args() -> bool {
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            other => {
                eprintln!("unknown argument: {other} (supported: --smoke)");
                std::process::exit(2);
            }
        }
    }
    smoke
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    xs[xs.len() / 2]
}

fn main() {
    let smoke = parse_args();
    banner(
        "Search perf",
        "nodes/sec, thread scaling, auto-tune warm-start",
        "§5.1-5.2",
    );

    let (query, num_workers, alpha, reps) = if smoke {
        (q3_inf(), 5usize, Thresholds::new(0.5, 0.5, f64::INFINITY), 3)
    } else {
        (
            q3_inf().scaled(2).expect("scaling"),
            8usize,
            Thresholds::new(0.35, f64::INFINITY, f64::INFINITY),
            2,
        )
    };
    let cluster = Cluster::homogeneous(num_workers, WorkerSpec::r5d_xlarge(4)).expect("cluster");
    let physical = query.physical();
    let loads = query.load_model(&physical).expect("loads");
    let search = CapsSearch::new(query.logical(), &physical, &cluster, &loads).expect("search");
    let hardware_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!(
        "{}: {} tasks on {} workers x {} slots, alpha=({}, {}, {}), {} hardware threads\n",
        if smoke { "Q3-inf (smoke)" } else { "Q3-inf x2" },
        physical.num_tasks(),
        cluster.num_workers(),
        cluster.slots_per_worker(),
        alpha.cpu,
        alpha.io,
        alpha.net,
        hardware_threads,
    );

    // --- Thread-scaling sweep -------------------------------------------
    let header = format!(
        "{:<8} {:>10} {:>12} {:>14} {:>10}",
        "threads", "wall_ms", "nodes", "nodes/sec", "plans"
    );
    println!("{header}");
    capsys_bench::rule(&header);

    let mut scaling = Vec::new();
    let mut wall_by_threads = std::collections::HashMap::new();
    let mut plan_counts = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        // A realistic cap: CAPS deployments keep a shortlist of the best
        // plans, not every feasible leaf. The capped store also exercises
        // the schedule-independent truncation path under load.
        let config = SearchConfig {
            threads,
            max_plans: 64,
            ..SearchConfig::with_thresholds(alpha)
        };
        let mut walls = Vec::new();
        let mut last = None;
        for _ in 0..reps {
            let out = search.run(&config).expect("search runs");
            assert!(!out.stats.aborted, "scaling run must complete");
            walls.push(out.stats.elapsed.as_secs_f64() * 1e3);
            last = Some(out);
        }
        let out = last.expect("at least one rep");
        let wall_ms = median(walls);
        let nodes_per_sec = out.stats.nodes as f64 / (wall_ms / 1e3);
        println!(
            "{:<8} {:>10.1} {:>12} {:>14.0} {:>10}",
            threads, wall_ms, out.stats.nodes, nodes_per_sec, out.stats.plans_found
        );
        wall_by_threads.insert(threads, wall_ms);
        plan_counts.push(out.stats.plans_found);
        scaling.push(obj(vec![
            ("threads", Json::Num(threads as f64)),
            ("wall_ms", Json::Num(wall_ms)),
            ("nodes", Json::Num(out.stats.nodes as f64)),
            ("nodes_per_sec", Json::Num(nodes_per_sec)),
            ("plans_found", Json::Num(out.stats.plans_found as f64)),
        ]));
    }

    let identical = plan_counts.iter().all(|&c| c == plan_counts[0]);
    assert!(
        identical,
        "plan counts diverged across thread counts: {plan_counts:?}"
    );
    let speedup = |t: usize| wall_by_threads[&1] / wall_by_threads[&t];
    println!(
        "\nspeedup: 2t {:.2}x, 4t {:.2}x, 8t {:.2}x",
        speedup(2),
        speedup(4),
        speedup(8)
    );

    // --- Auto-tune warm-start -------------------------------------------
    let tune_base = SearchConfig::auto_tuned();
    let cold_cfg = AutoTuneConfig {
        warm_start: false,
        ..AutoTuneConfig::default()
    };
    let t0 = Instant::now();
    let warm = AutoTuner::new(&tune_base.auto_tune)
        .tune(&search, &tune_base)
        .expect("warm tune");
    let warm_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let cold = AutoTuner::new(&cold_cfg)
        .tune(&search, &tune_base)
        .expect("cold tune");
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        warm.thresholds, cold.thresholds,
        "warm-start must not change the tuned thresholds"
    );
    assert!(
        warm.probe_searches <= cold.probe_searches,
        "warm-start launched more searches ({}) than cold ({})",
        warm.probe_searches,
        cold.probe_searches
    );
    println!(
        "auto-tune: warm {:.1} ms ({} searches + {} cache hits), cold {:.1} ms ({} searches)",
        warm_ms, warm.probe_searches, warm.cache_hits, cold_ms, cold.probe_searches
    );

    // --- Speedup gates ---------------------------------------------------
    if hardware_threads >= 4 {
        assert!(
            speedup(4) >= MIN_SPEEDUP_4T,
            "4-thread speedup {:.2}x below the {MIN_SPEEDUP_4T}x floor",
            speedup(4)
        );
    } else {
        println!(
            "note: only {hardware_threads} hardware thread(s) — a 4-thread speedup is \
             unattainable here; asserting bounded overhead instead"
        );
        assert!(
            speedup(4) >= MIN_SPEEDUP_OVERSUBSCRIBED,
            "4-thread oversubscription overhead too high: {:.2}x",
            speedup(4)
        );
    }

    // --- Record ----------------------------------------------------------
    let generated_unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let record = obj(vec![
        ("schema", Json::Str("capsys/bench-search/v1".into())),
        (
            "mode",
            Json::Str(if smoke { "smoke" } else { "full" }.into()),
        ),
        ("generated_unix", Json::Num(generated_unix as f64)),
        ("hardware_threads", Json::Num(hardware_threads as f64)),
        (
            "topology",
            obj(vec![
                ("query", Json::Str(query.name().into())),
                ("tasks", Json::Num(physical.num_tasks() as f64)),
                ("workers", Json::Num(cluster.num_workers() as f64)),
                (
                    "slots_per_worker",
                    Json::Num(cluster.slots_per_worker() as f64),
                ),
            ]),
        ),
        (
            "alpha",
            obj(vec![
                ("cpu", Json::Num(alpha.cpu)),
                ("io", Json::Num(alpha.io)),
                ("net", Json::Num(alpha.net)),
            ]),
        ),
        ("scaling", Json::Arr(scaling)),
        (
            "speedup",
            obj(vec![
                ("t2", Json::Num(speedup(2))),
                ("t4", Json::Num(speedup(4))),
                ("t8", Json::Num(speedup(8))),
            ]),
        ),
        (
            "autotune",
            obj(vec![
                ("warm_ms", Json::Num(warm_ms)),
                ("cold_ms", Json::Num(cold_ms)),
                ("speedup", Json::Num(cold_ms / warm_ms)),
                (
                    "warm_probe_searches",
                    Json::Num(warm.probe_searches as f64),
                ),
                ("warm_cache_hits", Json::Num(warm.cache_hits as f64)),
                (
                    "cold_probe_searches",
                    Json::Num(cold.probe_searches as f64),
                ),
                (
                    "thresholds",
                    obj(vec![
                        ("cpu", Json::Num(warm.thresholds.cpu)),
                        ("io", Json::Num(warm.thresholds.io)),
                        ("net", Json::Num(warm.thresholds.net)),
                    ]),
                ),
            ]),
        ),
        (
            "determinism",
            obj(vec![
                ("plans_found", Json::Num(plan_counts[0] as f64)),
                ("identical_across_threads", Json::Bool(identical)),
            ]),
        ),
    ]);

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_search.json");
    std::fs::write(path, record.to_pretty() + "\n").expect("write BENCH_search.json");

    // Validate what landed on disk: a malformed record must fail the run.
    let raw = std::fs::read_to_string(path).expect("re-read BENCH_search.json");
    let parsed = Json::parse(&raw).expect("BENCH_search.json must parse");
    for key in [
        "schema",
        "mode",
        "hardware_threads",
        "topology",
        "alpha",
        "scaling",
        "speedup",
        "autotune",
        "determinism",
    ] {
        assert!(
            parsed.get(key).is_some(),
            "BENCH_search.json is missing key {key:?}"
        );
    }
    assert_eq!(
        parsed.get("schema").and_then(Json::as_str),
        Some("capsys/bench-search/v1")
    );
    assert_eq!(
        parsed
            .get("scaling")
            .and_then(Json::as_array)
            .map(|a| a.len()),
        Some(4)
    );

    println!("\nwrote {path}");
}
