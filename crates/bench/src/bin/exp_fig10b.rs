//! Figure 10b: threshold auto-tuning performance.
//!
//! Runs the two-phase auto-tuner (§5.2) on Q2-join scaled to fill
//! clusters of 8-16 workers with 4-64 slots per worker (32 to 1024
//! tasks) and reports the total tuning time per configuration.
//!
//! Paper reference: 1.16 s for 64 tasks (4 workers x 16 slots) up to
//! 125 s for 1024 tasks (16 workers x 64 slots); auto-tuning can run
//! offline, so even the large configurations are acceptable.

use std::time::Instant;

use capsys_bench::{banner, fast_mode};
use capsys_core::{AutoTuneConfig, AutoTuner, CapsSearch, SearchConfig};
use capsys_model::{Cluster, WorkerSpec};
use capsys_queries::q2_join;

fn main() {
    banner(
        "Figure 10b",
        "threshold auto-tuning time vs. problem size",
        "§6.5.2, Figure 10b",
    );

    let workers_list = [8usize, 12, 16];
    let slots_list: &[usize] = if fast_mode() {
        &[4, 8, 16]
    } else {
        &[4, 8, 16, 32, 64]
    };

    let header = format!(
        "{:<9} {:<7} {:>7} {:>12} {:>12} {:>8}",
        "workers", "slots", "tasks", "tuning time", "thresholds", "probes"
    );
    println!("{header}");
    capsys_bench::rule(&header);

    for &workers in &workers_list {
        for &slots in slots_list {
            let total_slots = workers * slots;
            // Scale Q2 (16 tasks) to fill the cluster exactly.
            if total_slots % 16 != 0 {
                continue;
            }
            let scale = total_slots / 16;
            let query = q2_join().scaled(scale).expect("scaling");
            let cluster =
                Cluster::homogeneous(workers, WorkerSpec::r5d_xlarge(slots)).expect("cluster");
            let physical = query.physical();
            // Load the cluster realistically: thresholds are tuned for a
            // deployment running near capacity, as on reconfiguration.
            let rate = query.capacity_rate(&cluster, 0.9).expect("rate");
            let loads = query.load_model_at(&physical, rate).expect("loads");
            let search =
                CapsSearch::new(query.logical(), &physical, &cluster, &loads).expect("search");
            let tune_config = AutoTuneConfig {
                timeout: std::time::Duration::from_secs(if fast_mode() { 5 } else { 300 }),
                ..AutoTuneConfig::default()
            };
            let base = SearchConfig {
                auto_tune: tune_config.clone(),
                ..SearchConfig::auto_tuned()
            };
            let start = Instant::now();
            let result = AutoTuner::new(&tune_config).tune(&search, &base);
            let elapsed = start.elapsed();
            match result {
                Ok(report) => println!(
                    "{:<9} {:<7} {:>7} {:>11.2}s {:>12} {:>8}",
                    workers,
                    slots,
                    physical.num_tasks(),
                    elapsed.as_secs_f64(),
                    format!(
                        "({:.2},{:.2},{})",
                        report.thresholds.cpu,
                        report.thresholds.io,
                        if report.thresholds.net.is_finite() {
                            format!("{:.2}", report.thresholds.net)
                        } else {
                            "-".into()
                        }
                    ),
                    report.iterations
                ),
                Err(e) => println!(
                    "{:<9} {:<7} {:>7} {:>11.2}s  {e}",
                    workers,
                    slots,
                    physical.num_tasks(),
                    elapsed.as_secs_f64()
                ),
            }
        }
    }

    println!("\n(paper Figure 10b: 1.16s at 64 tasks up to 125s at 1024 tasks; tuning");
    println!(" is run offline and pre-computed per scaling scenario, §5.2)");
}
