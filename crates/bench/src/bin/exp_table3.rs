//! Table 3: comparison with the ODRP placement algorithm.
//!
//! Uses Q3-inf (ODRP handles single-source queries only) on a 4-worker
//! `c5d.4xlarge` cluster with 8 slots each (§6.3). CAPSys runs its full
//! pipeline — profiling unit costs, DS2 parallelism, CAPS placement with
//! auto-tuned thresholds — while ODRP jointly decides parallelism and
//! placement under its three weight configurations. Every resulting
//! deployment is then simulated at the same target rate.
//!
//! Paper reference (Table 3):
//!
//! | policy        | bp   | tput | latency | slots | decision time |
//! |---------------|------|------|---------|-------|---------------|
//! | CAPSys        | 0.5% | 4236 | 0.292 s | 27    | 0.2 s         |
//! | ODRP-Default  | 90%  | 680  | 0.255 s | 14    | 1636 s        |
//! | ODRP-Weighted | 48%  | 3396 | 0.268 s | 26    | 4037 s        |
//! | ODRP-Latency  | 15%  | 4043 | 0.157 s | 32    | 1607 s        |

use std::time::{Duration, Instant};

use capsys_bench::{banner, fast_mode, fmt_pct, fmt_rate, measure_config, run_plan};
use capsys_controller::CapsysController;
use capsys_model::{Cluster, WorkerSpec};
use capsys_odrp::{OdrpConfig, OdrpSolver, OdrpWeights};
use capsys_queries::q3_inf;

fn main() {
    banner("Table 3", "CAPSys vs. ODRP on Q3-inf", "§6.3, Table 3");

    let query = q3_inf();
    let cluster = Cluster::homogeneous(4, WorkerSpec::c5d_4xlarge(8)).expect("cluster");
    // Target rate sized so a well-provisioned deployment needs most of
    // the cluster (the paper's CAPSys deployment used 27 of 32 slots).
    let target = 6500.0;
    println!(
        "cluster: 4x c5d.4xlarge (8 cores, 8 slots), target rate {} rec/s\n",
        fmt_rate(target)
    );

    let header = format!(
        "{:<15} {:>13} {:>11} {:>10} {:>7} {:>15}",
        "policy", "backpressure", "throughput", "latency", "slots", "decision time"
    );
    println!("{header}");
    capsys_bench::rule(&header);

    // CAPSys: full pipeline, timed end to end (profiling excluded as in
    // the paper — it runs once, offline).
    {
        let controller = CapsysController::default();
        let profile = capsys_controller::profile_query(&query, &controller.config.profiler)
            .expect("profiling");
        let start = Instant::now();
        let deployment = controller
            .plan_with_profiles(&query, &cluster, target, profile)
            .expect("CAPSys plan");
        let decision_time = start.elapsed();
        let planned = query
            .with_parallelism(&deployment.logical.parallelism_vector())
            .expect("parallelism");
        let report = run_plan(
            &planned,
            &cluster,
            &deployment.placement,
            target,
            measure_config(3),
        );
        println!(
            "{:<15} {:>13} {:>11} {:>9.3}s {:>7} {:>14.2}s",
            "CAPSys",
            fmt_pct(report.avg_backpressure),
            fmt_rate(report.avg_throughput),
            report.avg_latency,
            deployment.slots_used,
            decision_time.as_secs_f64()
        );
    }

    // ODRP configurations.
    let budget = if fast_mode() {
        Duration::from_secs(20)
    } else {
        Duration::from_secs(120)
    };
    let configs = [
        ("ODRP-Default", OdrpWeights::default_config()),
        ("ODRP-Weighted", OdrpWeights::weighted()),
        ("ODRP-Latency", OdrpWeights::latency()),
    ];
    for (name, weights) in configs {
        let solver = OdrpSolver::new(OdrpConfig {
            weights,
            max_parallelism: 16,
            time_budget: budget,
            ..OdrpConfig::default()
        });
        let start = Instant::now();
        let solution = solver
            .solve(query.logical(), &cluster, &query.source_rates(target))
            .expect("ODRP finds a solution");
        let decision_time = start.elapsed();
        let planned = query
            .with_parallelism(&solution.parallelism)
            .expect("parallelism");
        let report = run_plan(
            &planned,
            &cluster,
            &solution.placement,
            target,
            measure_config(4),
        );
        println!(
            "{:<15} {:>13} {:>11} {:>9.3}s {:>7} {:>13.2}s{}",
            name,
            fmt_pct(report.avg_backpressure),
            fmt_rate(report.avg_throughput),
            report.avg_latency,
            solution.breakdown.slots_used,
            decision_time.as_secs_f64(),
            if solution.proven_optimal { "" } else { "+" }
        );
    }

    println!(
        "\n('+' marks ODRP runs cut off by the {:.0}s budget before proving",
        budget.as_secs_f64()
    );
    println!(" optimality; the paper's CPLEX runs took 27-67 minutes on this query,");
    println!(" while CAPSys decided in 0.2s — the orders-of-magnitude gap is the point)");
}
