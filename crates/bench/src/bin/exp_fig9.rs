//! Figure 9: effect of task placement on auto-scaling convergence.
//!
//! Runs the DS2 closed loop on Q3-inf under a square-wave input rate
//! (§6.4.2): all operators start at parallelism 1, DS2 evaluates every 5
//! seconds (90 s activation period), and each reconfiguration re-places
//! the job with the strategy under test. The experiment reports, per
//! strategy, the timeline of scaling actions, the number of scaling
//! decisions, throughput tracking per rate phase, and slot usage.
//!
//! Paper reference: CAPSys converges within a single step per rate
//! change and never over-provisions; `default`/`evenly` oscillate and
//! take up to 8 extra scaling decisions.

use capsys_bench::{banner, fast_mode, fmt_rate};
use capsys_controller::ClosedLoop;
use capsys_ds2::Ds2Config;
use capsys_model::{Cluster, RateSchedule, WorkerSpec};
use capsys_placement::{CapsStrategy, FlinkDefault, FlinkEvenly, PlacementStrategy};
use capsys_queries::q3_inf;
use capsys_sim::SimConfig;

fn main() {
    banner(
        "Figure 9",
        "auto-scaling convergence under variable load",
        "§6.4.2, Figure 9",
    );

    let cluster = Cluster::homogeneous(6, WorkerSpec::r5d_xlarge(8)).expect("cluster");
    // The paper alternates the rate every 20 min; the simulated loop uses
    // a shorter period with the same DS2 timing ratios.
    let (phase, total) = if fast_mode() {
        (240.0, 960.0)
    } else {
        (600.0, 2400.0)
    };
    let schedule = RateSchedule::SquareWave {
        high: 2880.0,
        low: 1080.0,
        period_sec: phase,
    };
    let ds2 = Ds2Config {
        activation_period: 90.0,
        policy_interval: 5.0,
        max_parallelism: 16,
        headroom: 1.0,
    };
    println!(
        "Q3-inf, square wave {}/{} rec/s every {}s, {}s total\n",
        fmt_rate(2880.0),
        fmt_rate(1080.0),
        phase,
        total
    );

    let caps = CapsStrategy::default();
    let strategies: [(&str, &dyn PlacementStrategy); 3] = [
        ("caps", &caps),
        ("default", &FlinkDefault),
        ("evenly", &FlinkEvenly),
    ];

    let mut decision_counts = Vec::new();
    for (name, strategy) in strategies {
        let query = q3_inf()
            .with_parallelism(&[1, 1, 1, 1, 1])
            .expect("parallelism");
        let loop_ = ClosedLoop::new(
            &query,
            &cluster,
            strategy,
            ds2.clone(),
            SimConfig {
                duration: 1.0,
                warmup: 0.0,
                noise: 0.03,
                ..SimConfig::default()
            },
            schedule.clone(),
            17,
        )
        .expect("closed loop");
        let trace = loop_.run(total).expect("loop runs");

        println!("--- {name} ---");
        println!("scaling decisions: {}", trace.num_scalings());
        for e in &trace.events {
            println!(
                "  t={:>6.0}s -> parallelism {:?} ({} slots)",
                e.time, e.parallelism, e.slots
            );
        }
        // Per-phase tracking: average throughput vs target in the second
        // half of each phase (after DS2 had a chance to react).
        let phases = (total / phase) as usize;
        print!("phase tracking (tput/target):");
        let mut met = 0;
        for k in 0..phases {
            let from = k as f64 * phase + phase / 2.0;
            let to = (k + 1) as f64 * phase;
            let tp = trace.avg_throughput(from, to);
            let target = trace.avg_target(from, to);
            if target > 0.0 && tp >= 0.95 * target {
                met += 1;
            }
            print!("  {}/{}", fmt_rate(tp), fmt_rate(target));
        }
        println!();
        println!("phases meeting target (2nd half): {met}/{phases}");
        let max_slots = trace.max_slots(0.0, total);
        println!("peak slots used: {max_slots}\n");
        decision_counts.push((name, trace.num_scalings(), met, phases));
    }

    println!("Summary:");
    for (name, decisions, met, phases) in &decision_counts {
        println!("  {name:<9} {decisions:>2} scaling decisions, {met}/{phases} phases on target");
    }
    let caps_n = decision_counts[0].1;
    let extra: usize = decision_counts[1..]
        .iter()
        .map(|(_, n, _, _)| n.saturating_sub(caps_n))
        .max()
        .unwrap_or(0);
    println!("\n(paper: the baselines incur up to 8 additional scaling decisions; here: +{extra})");
}
