//! Figure 8: multi-tenant placement on a 144-slot cluster.
//!
//! Deploys all six queries concurrently on 18 `m5d.2xlarge` workers with
//! 8 slots each (§6.2.2). CAPSys treats the whole workload as one merged
//! dataflow and optimizes placement globally; the Flink baselines place
//! one query at a time and are therefore sensitive to submission order,
//! which is randomized across repetitions.
//!
//! Paper reference: CAPSys is the only policy that reaches the target
//! rate for all six queries; `evenly` only manages Q2-join and `default`
//! three of six.

use std::collections::HashMap;

use capsys_bench::{
    banner, box_stats, combine_placements, fmt_pct, fmt_rate, mapped_sources, measure_config,
    place_sequentially, repetitions,
};
use capsys_core::SearchConfig;
use capsys_model::{Cluster, WorkerSpec};
use capsys_placement::{CapsStrategy, PlacementContext, PlacementStrategy};
use capsys_queries::{all_queries, merge_queries, Query};
use capsys_sim::Simulation;
use capsys_util::rng::SmallRng;
use capsys_util::rng::SliceRandom;
use capsys_util::rng::SeedableRng;

fn main() {
    banner(
        "Figure 8",
        "multi-tenant deployment of all six queries",
        "§6.2.2, Figure 8",
    );

    let cluster = Cluster::homogeneous(18, WorkerSpec::m5d_2xlarge(8)).expect("cluster");
    let queries = all_queries();
    let four_workers = Cluster::homogeneous(4, WorkerSpec::m5d_2xlarge(8)).expect("cluster");

    // Per-query target rates: each query was calibrated against a
    // 4-worker cluster; six queries need ~24 worker-equivalents, so all
    // rates are scaled to fit the 18-worker cluster at ~90% aggregate
    // utilization — the regime where placement decides who meets target.
    let scale = 0.75;
    let rates: Vec<f64> = queries
        .iter()
        .map(|q| q.capacity_rate(&four_workers, 0.9).expect("rate") * scale)
        .collect();

    let pairs: Vec<(&Query, f64)> = queries.iter().zip(rates.iter().copied()).collect();
    let (merged, mappings) = merge_queries("multi-tenant", &pairs).expect("merge");
    let merged_physical = merged.physical();
    let total_rate: f64 = rates.iter().sum();
    println!(
        "merged workload: {} operators, {} tasks on {} slots, total target {} rec/s\n",
        merged.logical().num_operators(),
        merged_physical.num_tasks(),
        cluster.total_slots(),
        fmt_rate(total_rate)
    );

    let runs = repetitions();
    // Per-strategy, per-query (throughput, target, backpressure) samples.
    type QuerySamples = Vec<Vec<(f64, f64, f64)>>;
    let mut results: HashMap<&str, QuerySamples> = HashMap::new();

    // CAPSys: one global placement over the merged graph.
    {
        let loads = merged
            .load_model_at(&merged_physical, total_rate)
            .expect("loads");
        let ctx = PlacementContext {
            logical: merged.logical(),
            physical: &merged_physical,
            cluster: &cluster,
            loads: &loads,
        };
        let caps = CapsStrategy::new(SearchConfig {
            time_budget: Some(std::time::Duration::from_secs(20)),
            max_plans: 64,
            auto_tune: capsys_core::AutoTuneConfig {
                timeout: std::time::Duration::from_secs(30),
                probe_node_budget: 300_000,
                ..capsys_core::AutoTuneConfig::default()
            },
            ..SearchConfig::auto_tuned()
        });
        let mut rng = SmallRng::seed_from_u64(1);
        let plan = caps.place(&ctx, &mut rng).expect("CAPS plan");
        let entry = results.entry("caps").or_default();
        for run in 0..runs {
            let schedules = merged.schedules(total_rate);
            let mut sim = Simulation::new(
                merged.logical(),
                &merged_physical,
                &cluster,
                &plan,
                &schedules,
                measure_config(run as u64),
            )
            .expect("valid deployment");
            let report = sim.run();
            let mut per_query = Vec::new();
            for (qi, q) in queries.iter().enumerate() {
                let sources = mapped_sources(q, &mappings[qi]);
                let stats = report.query_stats(&sources);
                per_query.push((stats.throughput, stats.target, stats.backpressure));
            }
            entry.push(per_query);
        }
    }

    // Baselines: sequential per-query placement, randomized order.
    for policy in ["default", "evenly"] {
        let entry = results.entry(policy).or_default();
        for run in 0..runs {
            let mut rng = SmallRng::seed_from_u64(run as u64 * 31 + 7);
            let mut order: Vec<usize> = (0..queries.len()).collect();
            order.shuffle(&mut rng);
            let ordered: Vec<&Query> = order.iter().map(|&i| &queries[i]).collect();
            let plans = place_sequentially(&ordered, &cluster, policy, &mut rng)
                .expect("144 slots fit 120 tasks");
            // Un-permute so plans[i] matches queries[i].
            let mut by_query: Vec<Option<capsys_model::Placement>> = vec![None; queries.len()];
            for (pos, &qi) in order.iter().enumerate() {
                by_query[qi] = Some(plans[pos].clone());
            }
            let plans: Vec<capsys_model::Placement> =
                by_query.into_iter().map(|p| p.expect("placed")).collect();
            let qrefs: Vec<&Query> = queries.iter().collect();
            let combined = combine_placements(&qrefs, &plans, &merged_physical, &mappings);
            let schedules = merged.schedules(total_rate);
            let mut sim = Simulation::new(
                merged.logical(),
                &merged_physical,
                &cluster,
                &combined,
                &schedules,
                measure_config(run as u64 + 1000),
            )
            .expect("valid deployment");
            let report = sim.run();
            let mut per_query = Vec::new();
            for (qi, q) in queries.iter().enumerate() {
                let sources = mapped_sources(q, &mappings[qi]);
                let stats = report.query_stats(&sources);
                per_query.push((stats.throughput, stats.target, stats.backpressure));
            }
            entry.push(per_query);
        }
    }

    // Report.
    let mut met_counts: HashMap<&str, usize> = HashMap::new();
    for (qi, q) in queries.iter().enumerate() {
        println!(
            "--- {} (target {} rec/s) ---",
            q.name(),
            fmt_rate(rates[qi])
        );
        let header = format!(
            "{:<9} {:>12} {:>21} {:>14} {:>8}",
            "strategy", "tput med", "tput [min..max]", "bp med", "meets?"
        );
        println!("{header}");
        capsys_bench::rule(&header);
        for policy in ["caps", "default", "evenly"] {
            let samples = &results[policy];
            let tps: Vec<f64> = samples.iter().map(|r| r[qi].0).collect();
            let bps: Vec<f64> = samples.iter().map(|r| r[qi].2).collect();
            let tp = box_stats(&tps);
            let bp = box_stats(&bps);
            let meets = tp.median >= 0.95 * rates[qi];
            if meets {
                *met_counts.entry(policy).or_default() += 1;
            }
            println!(
                "{:<9} {:>12} {:>10}..{:>9} {:>14} {:>8}",
                policy,
                fmt_rate(tp.median),
                fmt_rate(tp.min),
                fmt_rate(tp.max),
                fmt_pct(bp.median),
                if meets { "yes" } else { "NO" }
            );
        }
        println!();
    }

    println!("Queries meeting >=95% of target (median across runs):");
    for policy in ["caps", "default", "evenly"] {
        println!(
            "  {:<9} {} / {}",
            policy,
            met_counts.get(policy).unwrap_or(&0),
            queries.len()
        );
    }
    println!("(paper: CAPSys 6/6, default 3/6, evenly 1/6)");
}
