//! Figure 3: effect of co-locating resource-intensive tasks.
//!
//! Three sub-experiments (§3.3), selected with `a`, `b`, or `c` as the
//! first argument (default: all):
//!
//! * `a` — compute contention: co-locating Q3-inf's *inference* tasks;
//! * `b` — disk contention: co-locating Q2-join's *tumbling join* tasks;
//! * `c` — network contention: Q3-inf with worker NICs capped at 1 Gbps,
//!   co-locating the traffic-intensive source/decode tasks.
//!
//! For each sub-experiment, nine plans are selected from the full plan
//! space by contention degree: P1-P3 low, P4-P6 medium, P7-P9 high.

use capsys_bench::{
    banner, colocation_degree, fmt_pct, fmt_rate, max_worker_weight, measure_config, run_plan,
};
use capsys_core::CostModel;
use capsys_model::{enumerate_plans, Cluster, Placement, TaskId, WorkerId, WorkerSpec};
use capsys_queries::{q2_join, q3_inf, Query};

/// Selects three plans each with the lowest, median, and highest value of
/// a contention metric.
///
/// `tiebreak` orders plans with equal contention; the paper manually
/// selected plans that vary only in the contention dimension, and the
/// tiebreak (lowest value first) plays that role here.
fn pick_plans(
    plans: Vec<Placement>,
    metric: impl Fn(&Placement) -> f64,
    tiebreak: impl Fn(&Placement) -> f64,
) -> Vec<(String, Placement, f64)> {
    let mut scored: Vec<(Placement, f64, f64)> = plans
        .into_iter()
        .map(|p| {
            let m = metric(&p).max(0.0);
            let t = tiebreak(&p);
            (p, m, t)
        })
        .collect();
    scored.sort_by(|a, b| (a.1, a.2).partial_cmp(&(b.1, b.2)).expect("finite metric"));
    let n = scored.len();
    let mut picked = Vec::new();
    for (label, base) in [("low", 0), ("med", n / 2 - 1), ("high", n - 3)] {
        for k in 0..3 {
            let idx = (base + k).min(n - 1);
            let (p, m, _) = &scored[idx];
            picked.push((format!("P{} ({label})", picked.len() + 1), p.clone(), *m));
        }
    }
    picked
}

fn run_group(
    name: &str,
    query: &Query,
    cluster: &Cluster,
    rate: f64,
    picked: Vec<(String, Placement, f64)>,
    metric_name: &str,
) {
    println!("--- {name} ---");
    println!("target rate: {} rec/s", fmt_rate(rate));
    let header = format!(
        "{:<12} {:>16} {:>12} {:>14}",
        "plan", metric_name, "throughput", "backpressure"
    );
    println!("{header}");
    capsys_bench::rule(&header);
    let mut lows = Vec::new();
    let mut highs = Vec::new();
    for (i, (label, plan, metric)) in picked.iter().enumerate() {
        let report = run_plan(query, cluster, plan, rate, measure_config(11 + i as u64));
        println!(
            "{:<12} {:>16.2} {:>12} {:>14}",
            label,
            metric,
            fmt_rate(report.avg_throughput),
            fmt_pct(report.avg_backpressure)
        );
        if i < 3 {
            lows.push(report.avg_throughput);
        }
        if i >= 6 {
            highs.push(report.avg_throughput);
        }
    }
    let low_avg: f64 = lows.iter().sum::<f64>() / lows.len() as f64;
    let high_avg: f64 = highs.iter().sum::<f64>() / highs.len() as f64;
    println!(
        "low-contention avg {} vs high-contention avg {} ({:.2}x)\n",
        fmt_rate(low_avg),
        fmt_rate(high_avg),
        low_avg / high_avg.max(1.0)
    );
}

fn exp_a() {
    let query = q3_inf();
    let cluster = Cluster::homogeneous(4, WorkerSpec::r5d_xlarge(4)).expect("cluster");
    let physical = query.physical();
    let inf = query
        .logical()
        .operator_by_name("inference")
        .expect("inference");
    let plans = enumerate_plans(&physical, &cluster, usize::MAX).expect("plan space");
    println!("plan space: {} plans (paper: 950)", plans.len());
    let rate = query.capacity_rate(&cluster, 0.9).expect("rate");
    let loads = query.load_model(&physical).expect("loads");
    let picked = pick_plans(
        plans,
        |p| colocation_degree(p, &physical, inf, cluster.num_workers()) as f64,
        |p| max_worker_weight(p, cluster.num_workers(), |t| loads.load(TaskId(t)).cpu),
    );
    run_group(
        "Figure 3a: co-locating compute-intensive (inference) tasks",
        &query,
        &cluster,
        rate,
        picked,
        "inference/worker",
    );
}

fn exp_b() {
    let query = q2_join();
    let cluster = Cluster::homogeneous(4, WorkerSpec::r5d_xlarge(4)).expect("cluster");
    let physical = query.physical();
    let join = query
        .logical()
        .operator_by_name("tumbling-join")
        .expect("join");
    let plans = enumerate_plans(&physical, &cluster, usize::MAX).expect("plan space");
    println!("plan space: {} plans (paper: 665)", plans.len());
    let rate = query.capacity_rate(&cluster, 0.92).expect("rate");
    let loads = query.load_model(&physical).expect("loads");
    let picked = pick_plans(
        plans,
        |p| colocation_degree(p, &physical, join, cluster.num_workers()) as f64,
        |p| max_worker_weight(p, cluster.num_workers(), |t| loads.load(TaskId(t)).cpu),
    );
    run_group(
        "Figure 3b: co-locating I/O-intensive (tumbling join) tasks",
        &query,
        &cluster,
        rate,
        picked,
        "join/worker",
    );
}

fn exp_c() {
    let query = q3_inf();
    // The paper caps outbound bandwidth at 1 Gbps for this experiment.
    let spec = WorkerSpec::r5d_xlarge(4).with_network_cap(125e6);
    let cluster = Cluster::homogeneous(4, spec).expect("cluster");
    let physical = query.physical();
    let loads = query.load_model(&physical).expect("loads");
    let rate = query.capacity_rate(&cluster, 0.9).expect("rate");
    let plans = enumerate_plans(&physical, &cluster, usize::MAX).expect("plan space");
    // Rank by the heaviest per-worker outbound byte rate (traffic-heavy
    // source and decode tasks from multiple operators, as in the paper).
    // Rank by the bottleneck worker's *effective* outbound rate (Eq. 8:
    // only cross-worker channels count), breaking ties by CPU balance so
    // the selected plans differ mainly in network contention.
    let model = CostModel::new(&physical, &cluster, &loads).expect("cost model");
    let max_net = |p: &Placement| {
        (0..cluster.num_workers())
            .map(|w| model.worker_load(&physical, p, WorkerId(w))[2].to_f64())
            .fold(0.0f64, f64::max)
    };
    let picked = pick_plans(
        plans,
        |p| max_net(p) / 1e6,
        |p| max_worker_weight(p, cluster.num_workers(), |t| loads.load(TaskId(t)).cpu),
    );
    run_group(
        "Figure 3c: co-locating network-intensive tasks (1 Gbps NICs)",
        &query,
        &cluster,
        rate,
        picked,
        "max MB/s/worker",
    );
}

fn main() {
    banner(
        "Figure 3",
        "co-location contention by resource type",
        "§3.3",
    );
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    match which.as_str() {
        "a" => exp_a(),
        "b" => exp_b(),
        "c" => exp_c(),
        _ => {
            exp_a();
            exp_b();
            exp_c();
        }
    }
}
