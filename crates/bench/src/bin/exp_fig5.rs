//! Figure 5: plan costs vs. achieved throughput for Q1-sliding.
//!
//! Evaluates the CAPS cost model (§4.2) on every one of Q1-sliding's 80
//! plans and prints `C_cpu`, `C_io`, `C_net` next to the simulated
//! throughput — the data behind the paper's scatter plot showing that
//! high-performing plans separate cleanly below a cost threshold. Also
//! reports the rank correlation between each cost dimension and
//! throughput, and the threshold-separation check the paper draws as
//! dashed lines.

use capsys_bench::{banner, fmt_rate, measure_config, run_plan};
use capsys_core::CostModel;
use capsys_model::{enumerate_plans, Cluster, WorkerSpec};
use capsys_queries::q1_sliding;

/// Spearman rank correlation between two equally long samples.
fn spearman(a: &[f64], b: &[f64]) -> f64 {
    let rank = |v: &[f64]| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&x, &y| v[x].partial_cmp(&v[y]).expect("finite"));
        let mut r = vec![0.0; v.len()];
        for (pos, &i) in idx.iter().enumerate() {
            r[i] = pos as f64;
        }
        r
    };
    let ra = rank(a);
    let rb = rank(b);
    let n = a.len() as f64;
    let mean = (n - 1.0) / 2.0;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for i in 0..a.len() {
        cov += (ra[i] - mean) * (rb[i] - mean);
        va += (ra[i] - mean).powi(2);
        vb += (rb[i] - mean).powi(2);
    }
    cov / (va.sqrt() * vb.sqrt())
}

fn main() {
    banner(
        "Figure 5",
        "plan cost vs. throughput for Q1-sliding",
        "§4.4.1, Figure 5",
    );

    let query = q1_sliding();
    let cluster = Cluster::homogeneous(4, WorkerSpec::r5d_xlarge(4)).expect("cluster");
    let physical = query.physical();
    let rate = query.capacity_rate(&cluster, 0.92).expect("rate");
    let loads = query.load_model_at(&physical, rate).expect("loads");
    let model = CostModel::new(&physical, &cluster, &loads).expect("cost model");
    let plans = enumerate_plans(&physical, &cluster, usize::MAX).expect("plan space");

    let header = format!(
        "{:<6} {:>8} {:>8} {:>8} {:>12}",
        "plan", "C_cpu", "C_io", "C_net", "throughput"
    );
    println!("{header}");
    capsys_bench::rule(&header);

    let mut c_cpu = Vec::new();
    let mut c_io = Vec::new();
    let mut c_net = Vec::new();
    let mut tps = Vec::new();
    for (i, plan) in plans.iter().enumerate() {
        let cost = model.cost(&physical, plan);
        let report = run_plan(&query, &cluster, plan, rate, measure_config(5));
        println!(
            "{:<6} {:>8.3} {:>8.3} {:>8.3} {:>12}",
            i,
            cost.cpu,
            cost.io,
            cost.net,
            fmt_rate(report.avg_throughput)
        );
        c_cpu.push(cost.cpu);
        c_io.push(cost.io);
        c_net.push(cost.net);
        tps.push(report.avg_throughput);
    }

    println!(
        "\nSpearman rank correlation with throughput (negative = higher cost, lower throughput):"
    );
    println!("  C_cpu: {:+.3}", spearman(&c_cpu, &tps));
    println!("  C_io : {:+.3}", spearman(&c_io, &tps));
    println!("  C_net: {:+.3}", spearman(&c_net, &tps));

    // The paper's dashed-line check: a cost threshold separates the
    // plans that meet the target from those that do not.
    let target = 0.95 * rate;
    let meets: Vec<bool> = tps.iter().map(|&t| t >= target).collect();
    let best_threshold = |costs: &[f64]| -> (f64, usize) {
        // Choose the threshold minimizing misclassifications.
        let mut best = (f64::INFINITY, usize::MAX);
        for &cut in costs {
            let errors = costs
                .iter()
                .zip(&meets)
                .filter(|&(&c, &m)| (c <= cut) != m)
                .count();
            if errors < best.1 {
                best = (cut, errors);
            }
        }
        best
    };
    let (cut_cpu, err_cpu) = best_threshold(&c_cpu);
    let (cut_io, err_io) = best_threshold(&c_io);
    println!(
        "\nThreshold separation of target-meeting plans ({} of {}):",
        meets.iter().filter(|&&m| m).count(),
        meets.len()
    );
    println!("  alpha_cpu = {cut_cpu:.3} misclassifies {err_cpu} plans");
    println!("  alpha_io  = {cut_io:.3} misclassifies {err_io} plans");
    println!("(paper: high-performing plans separate by cost thresholds; C_net is");
    println!(" not a dominant factor for Q1-sliding, which is not network-intensive)");
}
