//! Anytime search quality: DFS vs MCTS best-cost-versus-budget curves.
//!
//! Runs the sequential DFS backend and the MCTS backend side by side on
//! a family of pipelines at 16, 64, 256, and 1024 tasks under a shared
//! node budget, and records each backend's *anytime curve* — the best
//! feasible `max_component` cost as a function of nodes spent — to
//! `BENCH_anytime.json` at the repository root.
//!
//! The instance family is chosen so the two backends genuinely separate:
//!
//! * At 16 tasks the plan space is exhaustible, so the DFS optimum is
//!   ground truth; MCTS (which fully expands every narrow node) must
//!   reach the *identical* best cost, bit for bit, for every seed.
//! * At 256 and 1024 tasks the mid-pipeline operator carries Zipf-skewed
//!   per-task loads ([`apply_skew`] placement groups) and the CPU
//!   threshold sits a small margin above the fractional lower bound
//!   `total_load / workers`. Feasible plans therefore require *load*-aware
//!   packing of the heavy group tasks, but the DFS enumerates rows in
//!   slot-balanced order — blind to loads until the threshold finally
//!   prunes deep in the tree — so within the budget it exhausts without
//!   a single feasible leaf, while MCTS rollouts scored by the CAPS cost
//!   model are steered toward spread-out heavy tasks and find feasible
//!   plans with budget to spare.
//!
//! `--smoke` (used by `ci.sh`) runs seeds 7/11/23 and self-asserts the
//! separation: MCTS == DFS optimum at 16 tasks, MCTS feasible where the
//! DFS reports budget exhaustion at 256/1024, every anytime curve
//! monotone non-increasing, and a same-seed replay byte-identical.

use std::collections::HashMap;
use std::time::Instant;

use capsys_bench::banner;
use capsys_core::{
    CapsSearch, CostModel, MctsConfig, SearchBackend, SearchConfig, SearchOutcome, Thresholds,
};
use capsys_model::{
    apply_skew, Cluster, ConnectionPattern, LoadModel, LogicalGraph, OperatorId, OperatorKind,
    PhysicalGraph, ResourceProfile, SkewSpec, WorkerSpec,
};
use capsys_util::fixed::Fixed64;
use capsys_util::json::{obj, Json};

/// Seeds exercised by both modes; `ci.sh` relies on these exact values.
const SEEDS: [u64; 3] = [7, 11, 23];

/// One benchmark instance.
struct Case {
    name: &'static str,
    tasks: usize,
    workers: usize,
    logical: LogicalGraph,
    rates: HashMap<OperatorId, f64>,
    /// Shared node budget for both backends (DFS-comparable units).
    node_budget: usize,
    /// `None` => unbounded thresholds (the 16-task ground-truth case);
    /// `Some(m)` => CPU threshold at `(1 + m) ×` the fractional lower
    /// bound `total_cpu_load / workers`.
    cpu_margin: Option<f64>,
    /// MCTS rollout greediness for this case.
    greedy_bias: f64,
    /// Smoke-mode expectation: the DFS must exhaust its budget without
    /// finding any feasible plan, while MCTS must find one.
    expect_separation: bool,
}

/// The 16-task ground-truth case: four homogeneous operators on four
/// workers, exhaustible by the DFS, unbounded thresholds.
fn case16() -> Case {
    let mut b = LogicalGraph::builder("any16");
    let s = b.operator(
        "src",
        OperatorKind::Source,
        4,
        ResourceProfile::new(0.0004, 0.0, 80.0, 1.0),
    );
    let f = b.operator(
        "filter",
        OperatorKind::Stateless,
        4,
        ResourceProfile::new(0.0008, 0.0, 10.0, 0.6),
    );
    let h = b.operator(
        "agg",
        OperatorKind::Window,
        4,
        ResourceProfile::new(0.0015, 400.0, 40.0, 0.5),
    );
    let k = b.operator(
        "sink",
        OperatorKind::Sink,
        4,
        ResourceProfile::new(0.0001, 0.0, 0.0, 1.0),
    );
    b.edge(s, f, ConnectionPattern::Rebalance);
    b.edge(f, h, ConnectionPattern::Hash);
    b.edge(h, k, ConnectionPattern::Hash);
    let logical = b.build().expect("16-task graph");
    let mut rates = HashMap::new();
    rates.insert(OperatorId(0), 800.0);
    Case {
        name: "t16",
        tasks: 16,
        workers: 4,
        logical,
        rates,
        node_budget: 600_000,
        cpu_margin: None,
        greedy_bias: 0.3,
        expect_separation: false,
    }
}

/// A Zipf-skewed pipeline: `src -> work -> sink` where `work` carries a
/// Zipf(s) per-task input distribution and is split into `groups`
/// placement-group operators. Group parallelisms are deliberately *not*
/// divisible by the worker count, so no slot-balanced row is load
/// balanced and feasibility under a tight CPU margin requires the
/// anti-balanced packings the DFS visits last.
#[allow(clippy::too_many_arguments)]
fn skewed_case(
    name: &'static str,
    src_par: usize,
    work_par: usize,
    sink_par: usize,
    groups: usize,
    workers: usize,
    rate: f64,
    node_budget: usize,
    cpu_margin: f64,
    expect_separation: bool,
) -> Case {
    let mut b = LogicalGraph::builder(name);
    let s = b.operator(
        "src",
        OperatorKind::Source,
        src_par,
        ResourceProfile::new(0.0002, 0.0, 60.0, 1.0),
    );
    let w = b.operator(
        "work",
        OperatorKind::Window,
        work_par,
        ResourceProfile::new(0.004, 200.0, 30.0, 0.5),
    );
    let k = b.operator(
        "sink",
        OperatorKind::Sink,
        sink_par,
        ResourceProfile::new(0.0002, 0.0, 0.0, 1.0),
    );
    b.edge(s, w, ConnectionPattern::Hash);
    b.edge(w, k, ConnectionPattern::Hash);
    let base = b.build().expect("skewed base graph");
    let skew = apply_skew(&base, &[SkewSpec::zipf(w, work_par, 1.1)], groups)
        .expect("skew transformation");
    let mut rates = HashMap::new();
    rates.insert(OperatorId(0), rate);
    Case {
        name,
        tasks: src_par + work_par + sink_par,
        workers,
        logical: skew.logical,
        rates,
        node_budget,
        cpu_margin: Some(cpu_margin),
        greedy_bias: 0.85,
        expect_separation,
    }
}

fn cases() -> Vec<Case> {
    vec![
        case16(),
        // 64 tasks: curve comparison only (no separation claim) — the
        // space is already too big to exhaust but small enough that the
        // DFS sometimes stumbles onto feasible corners.
        skewed_case("t64", 8, 42, 14, 6, 8, 2000.0, 400_000, 0.30, false),
        // 256 and 1024 tasks: the DFS must exhaust its budget with zero
        // feasible plans while MCTS finds one within the same budget.
        // The margins were calibrated empirically: one notch looser and
        // the DFS stumbles onto feasible corners (at 0.12 / 0.09 it
        // finds thousands), one notch tighter and the feasible set thins
        // out beyond what cost-guided sampling reaches in budget.
        skewed_case("t256", 16, 216, 24, 8, 8, 4000.0, 1_500_000, 0.10, true),
        skewed_case("t1024", 32, 928, 64, 8, 16, 8000.0, 1_200_000, 0.07, true),
    ]
}

fn parse_args() -> bool {
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            other => {
                eprintln!("unknown argument: {other} (supported: --smoke)");
                std::process::exit(2);
            }
        }
    }
    smoke
}

fn best_cost(out: &SearchOutcome) -> Option<f64> {
    out.feasible
        .iter()
        .map(|s| s.cost.max_component())
        .min_by(|a, b| a.partial_cmp(b).expect("finite costs"))
}

/// Renders everything a run must reproduce under the same seed and
/// budget into one comparable string.
fn determinism_surface(out: &SearchOutcome) -> String {
    let assignments: Vec<Vec<usize>> = out
        .feasible
        .iter()
        .map(|s| s.plan.assignment().iter().map(|w| w.0).collect())
        .collect();
    let costs: Vec<[u64; 3]> = out
        .feasible
        .iter()
        .map(|s| {
            [
                s.cost.cpu.to_bits(),
                s.cost.io.to_bits(),
                s.cost.net.to_bits(),
            ]
        })
        .collect();
    format!(
        "assignments={assignments:?} costs={costs:?} anytime={:?} report={:?} nodes={}",
        out.anytime, out.mcts, out.stats.nodes
    )
}

fn curve_json(out: &SearchOutcome) -> Json {
    Json::Arr(
        out.anytime
            .iter()
            .map(|p| {
                obj(vec![
                    ("nodes", Json::Num(p.nodes as f64)),
                    ("cost", Json::Num(p.cost)),
                ])
            })
            .collect(),
    )
}

fn assert_monotone(out: &SearchOutcome, label: &str) {
    for pair in out.anytime.windows(2) {
        assert!(
            pair[1].cost < pair[0].cost && pair[1].nodes >= pair[0].nodes,
            "{label}: anytime curve must be monotone non-increasing"
        );
    }
}

fn main() {
    let smoke = parse_args();
    banner(
        "exp_search",
        "anytime search quality: DFS vs MCTS under a node budget",
        "§4.4 / §5.1",
    );
    let started = Instant::now();
    let mut case_records = Vec::new();

    for case in cases() {
        let physical = PhysicalGraph::expand(&case.logical);
        assert_eq!(physical.num_tasks(), case.tasks, "{}: task count", case.name);
        let slots = case.tasks.div_ceil(case.workers);
        let cluster = Cluster::homogeneous(case.workers, WorkerSpec::new(slots, 4.0, 1e8, 1e9))
            .expect("cluster");
        let loads = LoadModel::derive(&case.logical, &physical, &case.rates).expect("load model");
        let model = CostModel::new(&physical, &cluster, &loads).expect("cost model");

        // CPU threshold: a small margin above the fractional lower bound
        // `total / workers`, expressed in cost space so the search's own
        // threshold-to-load inversion is exercised.
        let total_cpu: f64 = (0..case.tasks)
            .map(|t| model.task_load(capsys_model::TaskId(t))[0].to_f64())
            .sum();
        let ideal = total_cpu / case.workers as f64;
        let thresholds = match case.cpu_margin {
            None => Thresholds::unbounded(),
            Some(margin) => {
                let bound = Fixed64::from_f64(ideal * (1.0 + margin));
                Thresholds::new(
                    model.load_to_cost(0, bound),
                    f64::INFINITY,
                    f64::INFINITY,
                )
            }
        };

        let search = CapsSearch::new(&case.logical, &physical, &cluster, &loads).expect("search");
        let base = SearchConfig {
            max_plans: 16,
            node_budget: Some(case.node_budget),
            ..SearchConfig::with_thresholds(thresholds)
        };

        let dfs_started = Instant::now();
        let dfs = search.run(&base.clone()).expect("dfs run");
        let dfs_secs = dfs_started.elapsed().as_secs_f64();
        let dfs_best = best_cost(&dfs);
        assert_monotone(&dfs, case.name);
        println!(
            "[{}] dfs: nodes={} plans={} aborted={} best={:?} ({dfs_secs:.2}s)",
            case.name, dfs.stats.nodes, dfs.stats.plans_found, dfs.stats.aborted, dfs_best
        );

        let mut mcts_records = Vec::new();
        let mut first_seed_surface = None;
        for seed in SEEDS {
            let cfg = SearchConfig {
                backend: SearchBackend::Mcts(MctsConfig {
                    greedy_bias: case.greedy_bias,
                    ..MctsConfig::seeded(seed)
                }),
                ..base.clone()
            };
            let run_started = Instant::now();
            let out = search.run(&cfg).expect("mcts run");
            let secs = run_started.elapsed().as_secs_f64();
            let best = best_cost(&out);
            assert_monotone(&out, case.name);
            let report = out.mcts.as_ref().expect("mcts report");
            println!(
                "[{}] mcts seed {seed}: nodes={} playouts={} feasible_rollouts={} best={best:?} ({secs:.2}s)",
                case.name, out.stats.nodes, report.iterations, report.feasible_rollouts
            );
            if smoke && seed == SEEDS[0] {
                // Same seed + same budget must replay byte-identically,
                // even after the DFS ran in between.
                let replay = search.run(&cfg).expect("mcts replay");
                assert_eq!(
                    determinism_surface(&out),
                    determinism_surface(&replay),
                    "{}: same-seed MCTS replay diverged",
                    case.name
                );
                first_seed_surface = Some(determinism_surface(&out));
            }
            mcts_records.push((seed, out, best, secs));
        }
        drop(first_seed_surface);

        if smoke {
            if case.cpu_margin.is_none() {
                // Ground-truth case: the DFS exhausts the space and MCTS
                // must land on the identical optimum for every seed.
                assert!(!dfs.stats.aborted, "{}: DFS must exhaust", case.name);
                let dfs_opt = dfs_best.expect("DFS optimum");
                for (seed, _, best, _) in &mcts_records {
                    let b = best.unwrap_or(f64::INFINITY);
                    assert_eq!(
                        b.to_bits(),
                        dfs_opt.to_bits(),
                        "{}: seed {seed} MCTS best {b} != DFS optimum {dfs_opt}",
                        case.name
                    );
                }
            }
            if case.expect_separation {
                assert!(
                    dfs.stats.aborted && dfs.feasible.is_empty(),
                    "{}: DFS was expected to exhaust its budget with no \
                     feasible plan (found {})",
                    case.name,
                    dfs.stats.plans_found
                );
                for (seed, out, best, _) in &mcts_records {
                    assert!(
                        best.is_some() && out.stats.nodes <= case.node_budget + case.workers,
                        "{}: seed {seed} MCTS found no feasible plan in budget",
                        case.name
                    );
                }
            }
        }

        let mcts_json: Vec<Json> = mcts_records
            .iter()
            .map(|(seed, out, best, secs)| {
                let report = out.mcts.as_ref().expect("mcts report");
                obj(vec![
                    ("seed", Json::Num(*seed as f64)),
                    ("nodes", Json::Num(out.stats.nodes as f64)),
                    ("playouts", Json::Num(report.iterations as f64)),
                    (
                        "feasible_rollouts",
                        Json::Num(report.feasible_rollouts as f64),
                    ),
                    ("feasible", Json::Bool(best.is_some())),
                    (
                        "best_cost",
                        best.map(Json::Num).unwrap_or(Json::Null),
                    ),
                    ("seconds", Json::Num(*secs)),
                    ("anytime", curve_json(out)),
                ])
            })
            .collect();

        case_records.push(obj(vec![
            ("name", Json::Str(case.name.to_string())),
            ("tasks", Json::Num(case.tasks as f64)),
            ("workers", Json::Num(case.workers as f64)),
            ("node_budget", Json::Num(case.node_budget as f64)),
            (
                "cpu_margin",
                case.cpu_margin.map(Json::Num).unwrap_or(Json::Null),
            ),
            ("separation_expected", Json::Bool(case.expect_separation)),
            (
                "dfs",
                obj(vec![
                    ("nodes", Json::Num(dfs.stats.nodes as f64)),
                    ("plans_found", Json::Num(dfs.stats.plans_found as f64)),
                    ("aborted", Json::Bool(dfs.stats.aborted)),
                    ("feasible", Json::Bool(dfs_best.is_some())),
                    (
                        "best_cost",
                        dfs_best.map(Json::Num).unwrap_or(Json::Null),
                    ),
                    ("seconds", Json::Num(dfs_secs)),
                    ("anytime", curve_json(&dfs)),
                ]),
            ),
            ("mcts", Json::Arr(mcts_json)),
        ]));
    }

    let record = obj(vec![
        ("schema", Json::Str("capsys/bench-anytime/v1".to_string())),
        ("smoke", Json::Bool(smoke)),
        (
            "seeds",
            Json::Arr(SEEDS.iter().map(|s| Json::Num(*s as f64)).collect()),
        ),
        ("cases", Json::Arr(case_records)),
        ("total_seconds", Json::Num(started.elapsed().as_secs_f64())),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_anytime.json");
    std::fs::write(path, record.to_pretty() + "\n").expect("write BENCH_anytime.json");
    println!("\nwrote {path}");

    // The record must round-trip and carry the keys downstream tooling
    // (and the acceptance criteria) rely on.
    let raw = std::fs::read_to_string(path).expect("re-read BENCH_anytime.json");
    let parsed = Json::parse(&raw).expect("BENCH_anytime.json must parse");
    for key in ["schema", "smoke", "seeds", "cases"] {
        assert!(parsed.get(key).is_some(), "missing key {key:?}");
    }
    let cases_arr = parsed.get("cases").and_then(|c| c.as_array()).expect("cases");
    assert_eq!(cases_arr.len(), 4, "expected 4 cases");
    for c in cases_arr {
        for key in ["name", "dfs", "mcts", "node_budget"] {
            assert!(c.get(key).is_some(), "case missing key {key:?}");
        }
    }
    println!("exp_search done in {:.1}s", started.elapsed().as_secs_f64());
}
