//! Figure 10a: scalability of the CAPS placement search.
//!
//! Scales Q2-join from 16 to 256 tasks (cluster scaled alongside, 4-slot
//! workers) and measures the time CAPS needs to find the *first* plan
//! satisfying each of the paper's three threshold configurations:
//! `α⃗₁ (0.08, 0.15, 0.6)`, `α⃗₂ (0.15, 0.25, 0.8)`, and
//! `α⃗₃ (0.25, 0.3, 0.9)`.
//!
//! Paper reference: tens of milliseconds in all cases, up to ~100 ms for
//! the tightest thresholds at 256 tasks.

use std::time::Instant;

use capsys_bench::banner;
use capsys_core::{CapsSearch, SearchConfig, Thresholds};
use capsys_model::{Cluster, WorkerSpec};
use capsys_queries::q2_join;

fn main() {
    banner(
        "Figure 10a",
        "CAPS search time vs. problem size",
        "§6.5.1, Figure 10a",
    );

    let alphas = [
        ("alpha1", Thresholds::new(0.08, 0.15, 0.6)),
        ("alpha2", Thresholds::new(0.15, 0.25, 0.8)),
        ("alpha3", Thresholds::new(0.25, 0.3, 0.9)),
    ];
    // The paper uses 20 threads on a 20-core CloudLab node; this host has
    // fewer cores, so we report the thread count used.
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(20);
    println!("threads: {threads}\n");

    let header = format!(
        "{:<8} {:>9} {:>9} {:>12} {:>12} {:>12}",
        "tasks", "workers", "slots", "alpha1", "alpha2", "alpha3"
    );
    println!("{header}");
    capsys_bench::rule(&header);

    for scale in [1usize, 2, 4, 8, 16] {
        let query = q2_join().scaled(scale).expect("scaling");
        let tasks = query.logical().total_tasks();
        let workers = tasks / 4;
        let cluster = Cluster::homogeneous(workers, WorkerSpec::r5d_xlarge(4)).expect("cluster");
        let physical = query.physical();
        let loads = query.load_model(&physical).expect("loads");
        let search = CapsSearch::new(query.logical(), &physical, &cluster, &loads).expect("search");

        let mut times = Vec::new();
        for (_, th) in &alphas {
            // An infeasible threshold forces a first-feasible search to
            // exhaust the (pruned) space before giving up; bound it.
            let config = SearchConfig {
                threads,
                time_budget: Some(std::time::Duration::from_secs(20)),
                ..SearchConfig::with_thresholds(*th).first_feasible()
            };
            let start = Instant::now();
            let outcome = search.run(&config).expect("search runs");
            let elapsed = start.elapsed();
            times.push(if outcome.feasible.is_empty() {
                format!("none@{:.1}s", elapsed.as_secs_f64())
            } else {
                format!("{:.1}ms", elapsed.as_secs_f64() * 1e3)
            });
        }
        println!(
            "{:<8} {:>9} {:>9} {:>12} {:>12} {:>12}",
            tasks,
            workers,
            workers * 4,
            times[0],
            times[1],
            times[2]
        );
    }

    println!("\n(paper Figure 10a: first satisfactory plan within tens of ms up to");
    println!(" 256 tasks; tighter thresholds take slightly longer at scale)");
}
