//! Figure 7: CAPS vs. Flink's default and evenly strategies, per query.
//!
//! Deploys each of the six queries in isolation on a 4-worker
//! `m5d.2xlarge` cluster (8 slots each, §6.2) and compares the three
//! placement strategies over 10 runs each (box statistics): average
//! throughput, source backpressure, and latency. CAPS is deterministic;
//! the baselines' randomness makes their performance vary across runs.
//!
//! Paper reference: CAPS achieves the highest throughput and lowest
//! backpressure on every query, with up to 6x throughput on
//! Q5-aggregate, and is far more stable across runs.

use capsys_bench::{
    banner, box_stats, fmt_pct, fmt_rate, measure_config, repetitions, run_plan, BoxStats,
};
use capsys_core::SearchConfig;
use capsys_model::{Cluster, WorkerSpec};
use capsys_placement::{
    CapsStrategy, FlinkDefault, FlinkEvenly, PlacementContext, PlacementStrategy,
};
use capsys_queries::{all_queries, Query};
use capsys_util::rng::SmallRng;
use capsys_util::rng::SeedableRng;

struct StrategyResult {
    throughput: BoxStats,
    backpressure: BoxStats,
    latency: BoxStats,
}

fn evaluate(
    query: &Query,
    cluster: &Cluster,
    strategy: &dyn PlacementStrategy,
    rate: f64,
    runs: usize,
) -> StrategyResult {
    let physical = query.physical();
    let loads = query.load_model_at(&physical, rate).expect("loads");
    let ctx = PlacementContext {
        logical: query.logical(),
        physical: &physical,
        cluster,
        loads: &loads,
    };
    let mut tps = Vec::new();
    let mut bps = Vec::new();
    let mut lats = Vec::new();
    for run in 0..runs {
        let mut rng = SmallRng::seed_from_u64(run as u64 * 7919 + 13);
        let plan = strategy.place(&ctx, &mut rng).expect("placement succeeds");
        let report = run_plan(query, cluster, &plan, rate, measure_config(run as u64));
        tps.push(report.avg_throughput);
        bps.push(report.avg_backpressure);
        lats.push(report.avg_latency);
    }
    StrategyResult {
        throughput: box_stats(&tps),
        backpressure: box_stats(&bps),
        latency: box_stats(&lats),
    }
}

fn main() {
    banner(
        "Figure 7",
        "per-query comparison with Flink strategies",
        "§6.2.1, Figure 7",
    );

    let cluster = Cluster::homogeneous(4, WorkerSpec::m5d_2xlarge(8)).expect("cluster");
    let runs = repetitions();
    let caps = CapsStrategy::new(SearchConfig::auto_tuned());
    let strategies: [(&str, &dyn PlacementStrategy); 3] = [
        ("caps", &caps),
        ("default", &FlinkDefault),
        ("evenly", &FlinkEvenly),
    ];

    let mut summary: Vec<(String, f64, f64)> = Vec::new();
    for (qi, base_query) in all_queries().into_iter().enumerate() {
        // Q1/Q2/Q3 were calibrated for the 16-slot study cluster; on the
        // 32-slot m5d cluster DS2 would assign twice the parallelism.
        let query = if qi < 3 {
            base_query.scaled(2).expect("scaling")
        } else {
            base_query
        };
        let rate = query.capacity_rate(&cluster, 0.92).expect("rate");
        println!(
            "--- {} (target {} rec/s, {} tasks) ---",
            query.name(),
            fmt_rate(rate),
            query.logical().total_tasks()
        );
        let header = format!(
            "{:<9} {:>10} {:>21} {:>20} {:>16}",
            "strategy", "tput med", "tput [min..max]", "backpressure med", "latency med"
        );
        println!("{header}");
        capsys_bench::rule(&header);
        let mut caps_med = 0.0;
        let mut worst_base_med = f64::INFINITY;
        for (name, strategy) in &strategies {
            // CAPS is deterministic: a single placement, but still
            // repeated runs to capture simulator noise.
            let r = evaluate(&query, &cluster, *strategy, rate, runs);
            println!(
                "{:<9} {:>10} {:>10}..{:>9} {:>20} {:>15.2}s",
                name,
                fmt_rate(r.throughput.median),
                fmt_rate(r.throughput.min),
                fmt_rate(r.throughput.max),
                fmt_pct(r.backpressure.median),
                r.latency.median,
            );
            if *name == "caps" {
                caps_med = r.throughput.median;
            } else {
                worst_base_med = worst_base_med.min(r.throughput.median);
            }
        }
        let gain = caps_med / worst_base_med.max(1.0);
        summary.push((query.name().to_string(), caps_med, gain));
        println!("CAPS vs worst baseline (median): {gain:.2}x\n");
    }

    println!("Summary (median-throughput gain of CAPS over the worse baseline):");
    for (name, _tp, gain) in &summary {
        println!("  {name:<14} {gain:.2}x");
    }
    println!("(paper: 1.18x on Q1 up to ~6x on Q5-aggregate)");
}
