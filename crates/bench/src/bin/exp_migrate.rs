//! Incremental migration vs whole-plan redeploy after a worker crash.
//!
//! Both arms run the same scenario — Q1 on four r5d.xlarge workers,
//! the worker hosting task 0 crashing at t=60s — with state-transfer
//! charging on, so reconfigurations pay for the operator state they
//! move at the bottleneck disk/NIC bandwidth while the affected tasks
//! are paused:
//!
//! * **whole-plan**: the crash recovery redeploys the full plan and
//!   restores every stateful byte;
//! * **incremental**: the recovery runs the minimum-movement optimizer
//!   (cheapest plan within ε of the cost optimum) and migrates only
//!   the displaced tasks, one journaled two-phase wave at a time.
//!
//! The experiment self-asserts the claims: the incremental arm moves
//! strictly fewer bytes, accrues strictly less paused-task downtime
//! (only displaced tasks pause, and less state means a shorter drain),
//! and loses strictly less throughput area over the outage; the
//! journaled migration target re-derives byte-identically through the
//! same optimizer and sits within ε of the unconstrained optimum; and
//! a same-seed re-run reproduces the trace and journal exactly.
//!
//! Usage: `exp_migrate [--seed N] [--smoke]`

use capsys_bench::banner;
use capsys_controller::{
    place_with_movemin, ClosedLoop, ClosedLoopTrace, DecisionRecord, MigrationConfig,
    RecoveryConfig,
};
use capsys_core::{min_movement_plan, CapsSearch};
use capsys_ds2::Ds2Config;
use capsys_model::{Cluster, Placement, RateSchedule, StateModel, TaskId, WorkerId, WorkerSpec};
use capsys_placement::{CapsStrategy, PlacementContext};
use capsys_queries::q1_sliding;
use capsys_sim::{FaultEvent, FaultKind, FaultPlan, SimConfig};

/// Working set of the sliding window: 4000 B/record x 2e5 records =
/// 800 MB of operator state, however it is split over subtasks.
const RETAINED_RECORDS: f64 = 2e5;
const EPSILON: f64 = 0.05;
const CRASH_AT: f64 = 60.0;

/// Minimal std-only flag parsing: `--seed N` and `--smoke`.
fn parse_args() -> (u64, bool) {
    let mut seed = 7u64;
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--seed expects an integer; using 7");
                        7
                    });
            }
            "--smoke" => smoke = true,
            other => eprintln!("ignoring unknown argument `{other}`"),
        }
    }
    (seed, smoke)
}

fn ds2() -> Ds2Config {
    // A huge activation period keeps DS2 out of the way after its
    // initial right-sizing: the recovery is the reconfiguration under
    // test.
    Ds2Config {
        activation_period: 1000.0,
        policy_interval: 5.0,
        max_parallelism: 8,
        headroom: 1.0,
    }
}

fn sim() -> SimConfig {
    SimConfig {
        duration: 1.0,
        warmup: 0.0,
        ..SimConfig::default()
    }
}

/// Runs one arm of the comparison; returns the trace, the journal
/// text, and the crashed worker.
fn run_arm(
    seed: u64,
    duration: f64,
    incremental: bool,
) -> Result<(ClosedLoopTrace, String, WorkerId), Box<dyn std::error::Error>> {
    let query = q1_sliding();
    let cluster = Cluster::homogeneous(4, WorkerSpec::r5d_xlarge(4))?;
    let target = q1_sliding().capacity_rate(&cluster, 0.5)?;
    let strategy = CapsStrategy::default();
    let loop_ = ClosedLoop::new(
        &query,
        &cluster,
        &strategy,
        ds2(),
        sim(),
        RateSchedule::Constant(target),
        seed,
    )?;
    let victim = loop_.placement().worker_of(TaskId(0));
    let plan = FaultPlan::new(vec![FaultEvent {
        time: CRASH_AT,
        kind: FaultKind::Crash(victim),
    }])?;
    let (journal, buf) = capsys_controller::DecisionJournal::in_memory();
    let mut loop_ = loop_
        .with_fault_plan(plan)?
        .with_recovery(RecoveryConfig::default())
        .with_state_transfer(RETAINED_RECORDS)?;
    if incremental {
        // A crash outage ends only once every task of the dead worker
        // is relocated (channels into a dead task fill and backpressure
        // the source), and waves start at policy-window boundaries — so
        // chunking the dead tasks across waves would stretch the outage
        // by one window per extra wave. The bench migrates them in a
        // single wave; fine-grained wave chunking is a blast-radius
        // control for live-task moves, exercised by the controller's
        // kill-sweep tests and `exp_recovery`.
        loop_ = loop_.with_incremental_migration(MigrationConfig {
            epsilon: EPSILON,
            wave_size: 4,
        })?;
    }
    let trace = loop_.with_journal(journal)?.run(duration)?;
    Ok((trace, buf.text(), victim))
}

/// Bytes and paused-task seconds charged by waves of the recovery
/// reconfiguration (`completed_at` after the crash); waves before the
/// crash belong to DS2's initial right-sizing, identical in both arms.
fn recovery_waves(trace: &ClosedLoopTrace) -> (u64, f64, usize) {
    let mut bytes = 0u64;
    let mut downtime = 0.0;
    let mut count = 0usize;
    for w in &trace.migration_waves {
        if w.completed_at > CRASH_AT {
            bytes += w.bytes;
            downtime += w.downtime;
            count += 1;
        }
    }
    (bytes, downtime, count)
}

/// The migration decision from the incremental arm's journal: the
/// incumbent it diffed against, the target it chose, the moved task
/// set, the rate it planned at, and the parallelism in force.
struct MigrationDecision {
    incumbent: Vec<usize>,
    target: Vec<usize>,
    moved: Vec<usize>,
    rate: f64,
    parallelism: Vec<usize>,
    steps: usize,
    commits: usize,
}

fn parse_migration(journal_text: &str) -> Result<MigrationDecision, Box<dyn std::error::Error>> {
    let parsed = capsys_controller::journal::parse_journal(journal_text)?;
    let mut incumbent = match parsed.records.first() {
        Some(DecisionRecord::Init { assignment, .. }) => assignment.clone(),
        other => return Err(format!("journal does not start with init: {other:?}").into()),
    };
    let mut decision = None;
    for r in &parsed.records {
        match r {
            DecisionRecord::Prepare { assignment, .. } if decision.is_none() => {
                incumbent = assignment.clone();
            }
            DecisionRecord::MigratePrepare {
                assignment,
                moved,
                rate,
                parallelism,
                ..
            } if decision.is_none() => {
                decision = Some((assignment.clone(), moved.clone(), *rate, parallelism.clone()));
            }
            _ => {}
        }
    }
    let (target, moved, rate, parallelism) =
        decision.ok_or("incremental arm journaled no migrate-prepare")?;
    let steps = parsed
        .records
        .iter()
        .filter(|r| matches!(r, DecisionRecord::MigrateStep { .. }))
        .count();
    let commits = parsed
        .records
        .iter()
        .filter(|r| matches!(r, DecisionRecord::MigrateCommit { .. }))
        .count();
    Ok(MigrationDecision {
        incumbent,
        target,
        moved,
        rate,
        parallelism,
        steps,
        commits,
    })
}

/// Re-derives the migration target outside the controller — through
/// the same exported optimizer entry point — and checks the ε bound
/// against the unconstrained optimum.
fn check_optimizer(
    decision: &MigrationDecision,
    victim: WorkerId,
) -> Result<(), Box<dyn std::error::Error>> {
    let query = q1_sliding().with_parallelism(&decision.parallelism)?;
    let physical = query.physical();
    let cluster = Cluster::homogeneous(4, WorkerSpec::r5d_xlarge(4))?;
    let loads = query.load_model_at(&physical, decision.rate)?;
    let state = StateModel::derive(query.logical(), &physical, RETAINED_RECORDS)?;
    let incumbent = Placement::new(decision.incumbent.iter().map(|&w| WorkerId(w)).collect());
    let mut search = RecoveryConfig::default().search;
    let mut free = vec![cluster.slots_per_worker(); cluster.num_workers()];
    free[victim.0] = 0;
    search.free_slots = Some(free);

    // The controller's exact path: same entry point, same config.
    let ctx = PlacementContext {
        logical: query.logical(),
        physical: &physical,
        cluster: &cluster,
        loads: &loads,
    };
    let (plan, diff) = place_with_movemin(&ctx, &search, EPSILON, &incumbent, &state)
        .map_err(|e| format!("re-derivation failed: {e:?}"))?;
    let rederived: Vec<usize> = plan.assignment().iter().map(|w| w.0).collect();
    if rederived != decision.target {
        return Err(format!(
            "re-derived migration target {rederived:?} != journaled {:?}",
            decision.target
        )
        .into());
    }
    let moved: Vec<usize> = diff.moves().iter().map(|m| m.task.0).collect();
    if moved != decision.moved {
        return Err(format!(
            "re-derived move set {moved:?} != journaled {:?}",
            decision.moved
        )
        .into());
    }

    // The ε bound, on the raw optimizer outcome: the chosen plan's
    // worst load component is within ε of the unconstrained optimum's.
    let mut cfg = search.clone();
    cfg.first_feasible = false;
    cfg.max_plans = cfg.max_plans.max(4096);
    let caps = CapsSearch::new(query.logical(), &physical, &cluster, &loads)
        .map_err(|e| format!("caps search: {e:?}"))?;
    let mm = min_movement_plan(&caps, &cfg, EPSILON, &incumbent, &state)
        .map_err(|e| format!("min-movement: {e:?}"))?;
    let chosen = mm.chosen.cost.max_component();
    let optimum = mm.optimum.cost.max_component();
    if chosen > optimum + EPSILON + 1e-12 {
        return Err(format!(
            "chosen plan cost {chosen:.6} exceeds optimum {optimum:.6} + ε {EPSILON}"
        )
        .into());
    }
    println!(
        "optimizer: target re-derived byte-identically; chosen cost {chosen:.4} \
         within ε={EPSILON} of optimum {optimum:.4} ({} plans in band)",
        mm.within_tolerance
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (seed, smoke) = parse_args();
    banner(
        "Migration",
        "incremental minimum-movement migration vs whole-plan redeploy",
        "migration extension (not a paper figure)",
    );
    let duration = if smoke { 150.0 } else { 300.0 };
    println!("seed {seed}, {duration}s per run, crash at t={CRASH_AT}s\n");

    let (whole, _, victim_a) = run_arm(seed, duration, false)?;
    let (inc, inc_journal, victim_b) = run_arm(seed, duration, true)?;
    if victim_a != victim_b {
        return Err("arms crashed different workers; comparison is invalid".into());
    }
    if whole.recovery_events.len() != 1 || inc.recovery_events.len() != 1 {
        return Err(format!(
            "expected exactly one recovery per arm, got {} / {}",
            whole.recovery_events.len(),
            inc.recovery_events.len()
        )
        .into());
    }

    let (wp_bytes, wp_down, wp_waves) = recovery_waves(&whole);
    let (inc_bytes, inc_down, inc_waves) = recovery_waves(&inc);
    let wp_loss = whole.throughput_loss_area(CRASH_AT, duration);
    let inc_loss = inc.throughput_loss_area(CRASH_AT, duration);
    println!("whole-plan : {wp_waves} wave(s), {wp_bytes} bytes restored, {wp_down:.2}s paused-task downtime, loss area {wp_loss:.0} records");
    println!("incremental: {inc_waves} wave(s), {inc_bytes} bytes migrated, {inc_down:.2}s paused-task downtime, loss area {inc_loss:.0} records");

    if inc_bytes >= wp_bytes {
        return Err(format!(
            "incremental moved {inc_bytes} bytes, not strictly below whole-plan's {wp_bytes}"
        )
        .into());
    }
    if inc_down >= wp_down {
        return Err(format!(
            "incremental downtime {inc_down:.3}s not strictly below whole-plan's {wp_down:.3}s"
        )
        .into());
    }
    if inc_loss >= wp_loss {
        return Err(format!(
            "incremental loss area {inc_loss:.0} not strictly below whole-plan's {wp_loss:.0}"
        )
        .into());
    }

    // The journaled protocol: one two-phase wave per chunk of four
    // moved tasks, exactly one commit, and the move set is exactly the
    // tasks whose worker changed.
    let decision = parse_migration(&inc_journal)?;
    let expected_steps = decision.moved.len().div_ceil(4);
    if decision.steps != expected_steps || decision.commits != 1 {
        return Err(format!(
            "expected {expected_steps} migrate-steps and 1 commit, journal has {} and {}",
            decision.steps, decision.commits
        )
        .into());
    }
    if decision.incumbent.len() != decision.target.len() {
        return Err("incumbent and target cover different task counts".into());
    }
    for t in 0..decision.incumbent.len() {
        let moved = decision.moved.contains(&t);
        let changed = decision.incumbent[t] != decision.target[t];
        if moved != changed {
            return Err(format!(
                "task {t}: journaled-as-moved={moved} but worker-changed={changed}"
            )
            .into());
        }
    }
    println!(
        "protocol: {} task(s) migrated in {} journaled two-phase wave(s); \
         {} task(s) never moved",
        decision.moved.len(),
        decision.steps,
        decision.incumbent.len() - decision.moved.len()
    );

    check_optimizer(&decision, victim_a)?;

    // Same-seed determinism: the incremental arm replays exactly.
    let (inc2, inc2_journal, _) = run_arm(seed, duration, true)?;
    if inc2.to_json().to_string() != inc.to_json().to_string() {
        return Err("same-seed incremental re-run produced a different trace".into());
    }
    if inc2_journal != inc_journal {
        return Err("same-seed incremental re-run produced a different journal".into());
    }
    println!("determinism: same-seed re-run reproduced trace and journal byte-identically");

    println!("\nall migration invariants hold");
    Ok(())
}
