//! Hostile-workload survival: drift-aware governor A/B, overload
//! shedding, and byte-identical crash recovery under adversarial
//! traffic.
//!
//! Not a figure from the paper — the paper evaluates placement under
//! steady rates — but the survival layer its adaptive controller needs
//! once traffic turns hostile. Four seeded scenarios, each built from
//! [`capsys_sim::WorkloadEngine`] rate programs:
//!
//! * **growth** — pure organic growth steep enough that every scale-out
//!   canary saturates mid-probation. A healthy plan, a hostile load: the
//!   absolute-baseline governor mistakes the load for a regression and
//!   rolls back a good plan; the drift-aware governor (the default)
//!   commits every canary. Run A/B across seeds 7/11/23.
//! * **flash** — a flash crowd ramping through a scale-out's probation
//!   window. Same A/B, same claim: zero drift-aware rollbacks, at least
//!   one absolute false rollback across the seeds.
//! * **regression** — an injected [`capsys_sim::ModelSkew`] true
//!   regression: the drift-aware governor must still detect it within
//!   one probation window and roll back.
//! * **overload** — a flash crowd far beyond any deployable capacity
//!   with DS2 pinned. Unshedded, queues collapse (balloon latency, near-1
//!   backpressure); with the admission controller armed, the shed
//!   fraction is journaled (`Shed` records), backpressure returns under
//!   the engage threshold, goodput (throughput gated by a latency SLO)
//!   beats the unshedded baseline, and full admission is restored once
//!   the crowd decays. A controller kill right after the first `Shed`
//!   record recovers byte-identically from the journal.
//!
//! Writes `BENCH_hostile.json` at the repository root and self-asserts
//! every claim. Usage: `exp_hostile [--smoke]` (smoke = shorter runs;
//! `ci.sh` relies on the seeds 7/11/23 baked in here).

use std::time::Instant;

use capsys_bench::{banner, fmt_rate};
use capsys_controller::{
    BaselineMode, ClosedLoop, ClosedLoopTrace, ControllerError, DecisionJournal, DecisionRecord,
    GuardConfig, ShedConfig,
};
use capsys_ds2::Ds2Config;
use capsys_model::{Cluster, OperatorId, RateSchedule, WorkerSpec};
use capsys_placement::CapsStrategy;
use capsys_queries::q1_sliding;
use capsys_sim::{
    ChaosConfig, FaultPlan, KillPoint, SimConfig, WorkloadConfig, WorkloadEngine,
};
use capsys_util::json::{obj, Json};

/// Seeds exercised by the governor A/B; `ci.sh` relies on these.
const SEEDS: [u64; 3] = [7, 11, 23];
const POLICY_INTERVAL: f64 = 5.0;
/// Latency SLO for goodput accounting: a window's throughput only
/// counts as goodput when its end-to-end latency estimate is below this.
const SLO_SECONDS: f64 = 5.0;

fn parse_args() -> bool {
    let mut smoke = capsys_bench::fast_mode();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--smoke" | "--quick" => smoke = true,
            other => eprintln!("ignoring unknown argument `{other}`"),
        }
    }
    smoke
}

fn cluster() -> Cluster {
    Cluster::homogeneous(6, WorkerSpec::r5d_xlarge(4)).expect("cluster")
}

fn sim_config() -> SimConfig {
    SimConfig {
        duration: 1.0,
        warmup: 0.0,
        ..SimConfig::default()
    }
}

fn ds2(activation: f64) -> Ds2Config {
    Ds2Config {
        activation_period: activation,
        policy_interval: POLICY_INTERVAL,
        max_parallelism: 8,
        headroom: 1.0,
    }
}

/// Runs one governed closed loop over `schedule` and returns its trace.
fn run_governed(
    seed: u64,
    schedule: RateSchedule,
    duration: f64,
    activation: f64,
    mode: BaselineMode,
    plan: Option<FaultPlan>,
) -> ClosedLoopTrace {
    let query = q1_sliding();
    let cluster = cluster();
    let strategy = CapsStrategy::default();
    let mut loop_ = ClosedLoop::new(
        &query,
        &cluster,
        &strategy,
        ds2(activation),
        sim_config(),
        schedule,
        seed,
    )
    .expect("closed loop");
    if let Some(p) = plan {
        loop_ = loop_.with_fault_plan(p).expect("fault plan");
    }
    loop_ = loop_
        .with_guard(GuardConfig {
            baseline_mode: mode,
            ..GuardConfig::default()
        })
        .expect("guard");
    loop_.run(duration).expect("run")
}

/// Pure organic growth: the offered load climbs ~1.5%/s of its base —
/// fast enough that DS2 must keep scaling out for the whole run, the
/// exact traffic an absolute-baseline governor is tempted to read as a
/// slow regression.
fn growth_schedule(seed: u64, base: f64, duration: f64) -> RateSchedule {
    let engine = WorkloadEngine::new(WorkloadConfig {
        seed,
        horizon: duration,
        base_rate: base,
        growth_per_sec: (base * 0.015, base * 0.018),
        ..WorkloadConfig::default()
    })
    .expect("workload config");
    engine
        .generate(&[OperatorId(0)])
        .expect("generate")
        .pop()
        .expect("one program")
        .1
}

/// A 6-7.5x flash crowd whose ramp outruns a freshly deployed canary
/// during its probation: the calm pre-flash baseline plus a collapsing
/// probation window is exactly the shape that convicts under absolute
/// judgment and is excused under load-normalized judgment.
fn flash_schedule(seed: u64, base: f64, duration: f64) -> RateSchedule {
    let engine = WorkloadEngine::new(WorkloadConfig {
        seed,
        horizon: duration,
        base_rate: base,
        flashes: 1,
        flash_magnitude: (6.0, 7.5),
        flash_ramp: (30.0, 45.0),
        flash_hold: (40.0, 60.0),
        ..WorkloadConfig::default()
    })
    .expect("workload config");
    engine
        .generate(&[OperatorId(0)])
        .expect("generate")
        .pop()
        .expect("one program")
        .1
}

/// One A/B cell: the same seeded scenario judged by both baseline
/// modes. DS2 re-activates every 15s so scaling keeps pace with the
/// hostile load and baselines are captured while the trusted plan is
/// still healthy. `expect_false_rollback` additionally demands that the
/// absolute baseline convicts (the flash shape guarantees it; pure
/// growth degrades the rolling baseline in lockstep, which makes
/// absolute judgment lenient rather than trigger-happy).
fn ab_cell(name: &str, seed: u64, schedule: RateSchedule, duration: f64, expect_false_rollback: bool) -> Json {
    let drift = run_governed(
        seed,
        schedule.clone(),
        duration,
        15.0,
        BaselineMode::DriftAware,
        None,
    );
    let absolute = run_governed(seed, schedule, duration, 15.0, BaselineMode::Absolute, None);
    println!(
        "  {name} seed {seed}: {} scalings; rollbacks drift-aware {} / absolute {}",
        drift.num_scalings(),
        drift.oscillations(),
        absolute.oscillations()
    );
    assert_eq!(
        drift.oscillations(),
        0,
        "{name} seed {seed}: the drift-aware governor must not mistake \
         hostile-but-organic load for a regression"
    );
    assert!(
        drift.num_scalings() >= 1,
        "{name} seed {seed}: the load must actually force a scale-out \
         (no canary, no discrimination to test)"
    );
    if expect_false_rollback {
        assert!(
            absolute.oscillations() >= 1,
            "{name} seed {seed}: the absolute baseline must false-rollback \
             here — a calm baseline followed by a collapsing probation is \
             its signature failure"
        );
    }
    obj(vec![
        ("seed", Json::Num(seed as f64)),
        ("scalings", Json::Num(drift.num_scalings() as f64)),
        ("drift_rollbacks", Json::Num(drift.oscillations() as f64)),
        (
            "absolute_rollbacks",
            Json::Num(absolute.oscillations() as f64),
        ),
    ])
}

/// The injected-true-regression scenario of `exp_guard`, judged by the
/// drift-aware governor: a model-skew fault plus a rate step onto the
/// stale model.
fn regression_scenario(seed: u64, duration: f64) -> Json {
    let query = q1_sliding();
    let cluster = cluster();
    let base = query.capacity_rate(&cluster, 0.5).expect("capacity");
    let chaos = ChaosConfig {
        seed,
        horizon: duration,
        crashes: 0,
        stragglers: 0,
        blackouts: 0,
        metric_noise: 0.0,
        model_skews: 1,
        skew_factor: (3.0, 4.0),
        ..ChaosConfig::default()
    };
    let plan = FaultPlan::generate(&chaos, cluster.num_workers()).expect("plan");
    let skew = plan.model_skew.expect("one skew");
    let step_at = ((skew.time / POLICY_INTERVAL).floor() + 2.0) * POLICY_INTERVAL;
    let schedule = RateSchedule::Steps(vec![(0.0, base), (step_at, 1.8 * base)]);
    let trace = run_governed(seed, schedule, duration, 60.0, BaselineMode::DriftAware, Some(plan));
    let config = GuardConfig::default();
    let deadline = (config.probation_windows as f64 + 1.0) * POLICY_INTERVAL;
    assert!(
        !trace.rollback_events.is_empty(),
        "drift-aware governor must still catch an injected true regression"
    );
    let first = &trace.rollback_events[0];
    assert!(
        first.degraded_for <= deadline + 1e-9,
        "true regression must be caught within one probation window \
         ({:.0}s > {deadline:.0}s)",
        first.degraded_for
    );
    println!(
        "  regression seed {seed}: skew at t={:.0}s, rolled back after {:.0}s \
         (deadline {deadline:.0}s)",
        skew.time, first.degraded_for
    );
    obj(vec![
        ("seed", Json::Num(seed as f64)),
        ("rollbacks", Json::Num(trace.oscillations() as f64)),
        ("degraded_for", Json::Num(first.degraded_for)),
        ("deadline", Json::Num(deadline)),
    ])
}

/// The sustained-overload workload: an 8x flash crowd against a plan
/// whose scaling is pinned, so admission control is the only lever.
fn overload_schedule(seed: u64, duration: f64) -> RateSchedule {
    let query = q1_sliding();
    let base = query
        .capacity_rate(&cluster(), 0.5)
        .expect("capacity");
    let engine = WorkloadEngine::new(WorkloadConfig {
        seed,
        horizon: duration,
        base_rate: base,
        flashes: 1,
        flash_magnitude: (7.0, 7.0),
        flash_ramp: (30.0, 30.0),
        flash_hold: (90.0, 90.0),
        ..WorkloadConfig::default()
    })
    .expect("workload config");
    engine
        .generate(&[OperatorId(0)])
        .expect("generate")
        .pop()
        .expect("one program")
        .1
}

/// Builds the sustained-overload loop. `shed` arms the admission
/// controller, `kill`/`journal_text` drive the crash-recovery leg.
fn overload_run(
    seed: u64,
    duration: f64,
    shed: bool,
    kill: Option<KillPoint>,
    journal_text: Option<&str>,
) -> (Result<ClosedLoopTrace, ControllerError>, String) {
    let query = q1_sliding();
    let cluster = cluster();
    let schedule = overload_schedule(seed, duration);
    let strategy = CapsStrategy::default();
    let loop_ = match journal_text {
        None => ClosedLoop::new(
            &query,
            &cluster,
            &strategy,
            ds2(1e6),
            sim_config(),
            schedule,
            seed,
        )
        .expect("closed loop"),
        Some(t) => ClosedLoop::recover_from_journal(
            &query,
            &cluster,
            &strategy,
            ds2(1e6),
            sim_config(),
            schedule,
            t,
        )
        .expect("recovered loop"),
    };
    let mut plan = FaultPlan::new(vec![]).expect("empty plan");
    if let Some(k) = kill {
        plan = plan.with_controller_kill(k).expect("kill");
    }
    let mut loop_ = loop_.with_fault_plan(plan).expect("fault plan");
    if shed {
        loop_ = loop_.with_shedding(ShedConfig::default()).expect("shed");
    }
    let (journal, buf) = DecisionJournal::in_memory();
    let result = loop_.with_journal(journal).expect("journal").run(duration);
    (result, buf.text())
}

/// Goodput: integral of admitted throughput over windows whose latency
/// estimate meets the SLO, in records (window length = policy interval).
fn goodput(trace: &ClosedLoopTrace) -> f64 {
    trace
        .points
        .iter()
        .filter(|p| p.latency <= SLO_SECONDS)
        .fold(0.0, |acc, p| acc + p.source_throughput * POLICY_INTERVAL)
}

fn overload_scenario(seed: u64, duration: f64) -> Json {
    // The plateau bounds come from the generated program itself — the
    // flash's start is seeded.
    let flash = match overload_schedule(seed, duration) {
        RateSchedule::Program(p) => p.flashes[0].clone(),
        other => panic!("overload schedule must be a program, got {other:?}"),
    };
    let plateau = (flash.start + flash.ramp, flash.start + flash.ramp + flash.hold);
    let (bare_result, _) = overload_run(seed, duration, false, None, None);
    let bare = bare_result.expect("unshedded run");
    let (shed_result, shed_journal) = overload_run(seed, duration, true, None, None);
    let shedded = shed_result.expect("shedded run");

    assert!(
        !shedded.shed_events.is_empty(),
        "an 8x flash crowd must engage overload protection"
    );
    let engage = &shedded.shed_events[0];
    let release = shedded.shed_events.last().expect("events");
    assert!(engage.to_fraction > 0.0, "first event must engage");
    assert!(
        engage.time < plateau.1,
        "shedding must engage while the crowd is still raging"
    );
    assert_eq!(
        release.to_fraction, 0.0,
        "full admission must be restored once the crowd decays"
    );
    assert!(
        release.time > plateau.1,
        "admission must not reopen while the plateau still rages \
         (released t={:.0}s, plateau ends t={:.0}s)",
        release.time,
        plateau.1
    );

    // Backpressure stays bounded: the engage-time capacity estimate
    // carries stale pre-saturation samples, so give the controller a
    // full capacity window plus the deadband-override hysteresis to
    // converge, then demand calm for the rest of the plateau — while
    // the unshedded run stays pinned at collapse the whole way.
    let config = ShedConfig::default();
    let settle = engage.time
        + (config.capacity_windows + config.release_windows + 1) as f64 * POLICY_INTERVAL;
    assert!(
        settle < plateau.1 - 2.0 * POLICY_INTERVAL,
        "scenario must leave a post-settle plateau to judge ({settle:.0}s vs {:.0}s)",
        plateau.1
    );
    let bp_peak = |t: &ClosedLoopTrace| {
        t.points
            .iter()
            .filter(|p| p.time > settle && p.time <= plateau.1)
            .fold(0.0f64, |acc, p| acc.max(p.backpressure))
    };
    let shed_bp = bp_peak(&shedded);
    let bare_bp = bp_peak(&bare);
    assert!(
        shed_bp <= config.engage_threshold,
        "shedding must bound backpressure (peak {shed_bp:.2} after settling)"
    );
    assert!(
        bare_bp > 0.9,
        "the unshedded baseline must actually be collapsing (peak {bare_bp:.2})"
    );

    // Goodput: latency-gated throughput must strictly beat the
    // unshedded run — bounded queues drain as the crowd decays instead
    // of serving stale records for another minute.
    let shed_good = goodput(&shedded);
    let bare_good = goodput(&bare);
    assert!(
        shed_good > bare_good,
        "shedding must win goodput ({} vs {})",
        fmt_rate(shed_good / duration),
        fmt_rate(bare_good / duration)
    );

    // Every shed decision made it into the journal.
    let parsed = capsys_controller::journal::parse_journal(&shed_journal).expect("journal");
    let journaled_sheds = parsed
        .records
        .iter()
        .filter(|r| matches!(r, DecisionRecord::Shed { .. }))
        .count();
    assert_eq!(
        journaled_sheds,
        shedded.shed_events.len(),
        "every shed change must be journaled"
    );

    // Crash-recovery: die right after the first Shed record (the change
    // is in doubt), recover from the journal, and reproduce the golden
    // trace and journal byte-for-byte.
    let golden = shedded.to_json().to_string();
    let shed_at = parsed
        .records
        .iter()
        .position(|r| matches!(r, DecisionRecord::Shed { .. }))
        .expect("a shed record") as u64;
    let (killed, partial) = overload_run(
        seed,
        duration,
        true,
        Some(KillPoint::AfterRecord(shed_at)),
        None,
    );
    assert!(
        matches!(killed, Err(ControllerError::ControllerKilled { .. })),
        "the controller kill must fire"
    );
    let (recovered, rewritten) = overload_run(seed, duration, true, None, Some(&partial));
    let identical = recovered.expect("recovered run").to_json().to_string() == golden
        && rewritten == shed_journal;
    assert!(
        identical,
        "crash recovery must replay the hostile run byte-identically"
    );

    println!(
        "  overload seed {seed}: {} shed change(s), engaged t={:.0}s at {:.0}% \
         (offered {} vs capacity {}), released t={:.0}s",
        shedded.shed_events.len(),
        engage.time,
        100.0 * engage.to_fraction,
        fmt_rate(engage.offered),
        fmt_rate(engage.capacity),
        release.time,
    );
    println!(
        "  overload seed {seed}: bp peak {shed_bp:.2} shedded vs {bare_bp:.2} bare; \
         goodput {} vs {} rec/s; crash recovery byte-identical",
        fmt_rate(shed_good / duration),
        fmt_rate(bare_good / duration)
    );

    obj(vec![
        ("seed", Json::Num(seed as f64)),
        ("shed_events", Json::Num(shedded.shed_events.len() as f64)),
        ("engage_fraction", Json::Num(engage.to_fraction)),
        ("time_shedding", Json::Num(shedded.time_shedding(duration))),
        ("bp_peak_shedded", Json::Num(shed_bp)),
        ("bp_peak_unshedded", Json::Num(bare_bp)),
        ("goodput_shedded", Json::Num(shed_good / duration)),
        ("goodput_unshedded", Json::Num(bare_good / duration)),
        ("journaled_sheds", Json::Num(journaled_sheds as f64)),
        ("recovery_identical", Json::Bool(identical)),
    ])
}

fn main() {
    let started = Instant::now();
    let smoke = parse_args();
    banner(
        "Hostile",
        "adversarial traffic: governor drift A/B, overload shedding, crash replay",
        "robustness extension (not a paper figure)",
    );
    // Scenario horizons are fixed properties of the tuned workload
    // shapes (growth must not outrun the cluster's deployable maximum);
    // full mode widens the seed set instead of stretching the runs.
    const AB_DURATION: f64 = 300.0;
    let mut seeds: Vec<u64> = SEEDS.to_vec();
    if !smoke {
        seeds.extend([31, 47]);
    }
    let query = q1_sliding();
    let base = query.capacity_rate(&cluster(), 0.5).expect("capacity");
    println!(
        "Q1-sliding, 6 workers, base rate {} ({AB_DURATION}s per scenario, seeds {seeds:?})\n",
        fmt_rate(base),
    );

    // --- Governor A/B under pure growth and a flash crowd. ---
    println!("--- governor A/B: drift-aware vs absolute baseline ---");
    let mut growth_cells = Vec::new();
    let mut flash_cells = Vec::new();
    let mut absolute_false_rollbacks = 0.0;
    for &seed in &seeds {
        let g = ab_cell(
            "growth",
            seed,
            growth_schedule(seed, base * 0.5, AB_DURATION),
            AB_DURATION,
            false,
        );
        absolute_false_rollbacks += g
            .get("absolute_rollbacks")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        growth_cells.push(g);
        let f = ab_cell(
            "flash",
            seed,
            flash_schedule(seed, base * 0.45, AB_DURATION),
            AB_DURATION,
            true,
        );
        absolute_false_rollbacks += f
            .get("absolute_rollbacks")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        flash_cells.push(f);
    }
    assert!(
        absolute_false_rollbacks >= 1.0,
        "the absolute baseline must false-rollback at least once across the \
         growth/flash scenarios — otherwise the A/B shows nothing"
    );
    println!(
        "  absolute baseline false rollbacks across seeds: {absolute_false_rollbacks}\n"
    );

    // --- Injected true regression: still caught, fast. ---
    println!("--- injected true regression (drift-aware) ---");
    let regression = regression_scenario(7, if smoke { 300.0 } else { 600.0 });
    println!();

    // --- Sustained overload: shed, bound, restore, replay. ---
    println!("--- sustained overload: admission control A/B ---");
    let overload = overload_scenario(7, 300.0);

    let record = obj(vec![
        (
            "schema",
            Json::Str("capsys/bench-hostile/v1".to_string()),
        ),
        ("smoke", Json::Bool(smoke)),
        (
            "seeds",
            Json::Arr(seeds.iter().map(|s| Json::Num(*s as f64)).collect()),
        ),
        ("growth", Json::Arr(growth_cells)),
        ("flash", Json::Arr(flash_cells)),
        (
            "absolute_false_rollbacks",
            Json::Num(absolute_false_rollbacks),
        ),
        ("regression", regression),
        ("overload", overload),
        ("slo_seconds", Json::Num(SLO_SECONDS)),
        ("total_seconds", Json::Num(started.elapsed().as_secs_f64())),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hostile.json");
    std::fs::write(path, record.to_pretty() + "\n").expect("write BENCH_hostile.json");
    println!("\nwrote {path}");

    // The record must round-trip and carry the keys the acceptance
    // criteria (and downstream tooling) rely on.
    let raw = std::fs::read_to_string(path).expect("re-read BENCH_hostile.json");
    let parsed = Json::parse(&raw).expect("BENCH_hostile.json must parse");
    for key in [
        "schema",
        "smoke",
        "seeds",
        "growth",
        "flash",
        "regression",
        "overload",
    ] {
        assert!(parsed.get(key).is_some(), "missing key {key:?}");
    }
    for arm in ["growth", "flash"] {
        let cells = parsed.get(arm).and_then(|c| c.as_array()).expect("cells");
        assert_eq!(cells.len(), seeds.len(), "{arm} must cover every seed");
        for c in cells {
            assert_eq!(
                c.get("drift_rollbacks").and_then(Json::as_f64),
                Some(0.0),
                "{arm}: drift-aware rollbacks must be zero in the record too"
            );
        }
    }
    println!(
        "\nall hostile-workload assertions passed in {:.1}s",
        started.elapsed().as_secs_f64()
    );
}
