//! Table 4: effect of task placement on auto-scaling accuracy.
//!
//! A controlled §6.4.1 experiment on Q3-inf: the input rate changes four
//! times (2x up, 2x up, 2x down, 2x down) and after each change DS2 makes
//! one scaling decision from metrics measured under the *current*
//! placement strategy. A ✓ in *Throughput* means the reconfigured job
//! met the target rate; a ✓ in *Resources* means DS2 did not
//! over-provision (its slot count is within one task per operator of the
//! ground-truth minimum).
//!
//! Paper reference: CAPSys is ✓✓ at every step; `default` and `evenly`
//! miss targets and over-provision once contention corrupts the metrics.

use std::collections::HashMap;

use capsys_bench::{banner, fmt_rate, measure_config};
use capsys_ds2::{Ds2Config, Ds2Controller};
use capsys_model::{Cluster, WorkerSpec};
use capsys_placement::{
    CapsStrategy, FlinkDefault, FlinkEvenly, PlacementContext, PlacementStrategy,
};
use capsys_queries::{q3_inf, Query};
use capsys_sim::Simulation;
use capsys_util::rng::SmallRng;
use capsys_util::rng::SeedableRng;

/// Ground-truth minimal parallelism to sustain `rate`, from the true
/// profiles (one core per task).
fn minimal_parallelism(query: &Query, rate: f64) -> Vec<usize> {
    let ds2 = Ds2Controller::new(Ds2Config {
        max_parallelism: 64,
        ..Ds2Config::default()
    });
    let op_rates: Vec<f64> = query
        .logical()
        .operators()
        .iter()
        .map(|o| capsys_controller::controller::true_rate_from_profile(&o.profile))
        .collect();
    let physical = query.physical();
    ds2.decide_from_op_rates(
        query.logical(),
        &physical,
        &op_rates,
        &query.source_rates(rate),
    )
    .expect("ground truth decision")
    .parallelism
}

fn main() {
    banner(
        "Table 4",
        "task placement vs. auto-scaling accuracy",
        "§6.4.1, Table 4",
    );

    let cluster = Cluster::homogeneous(6, WorkerSpec::r5d_xlarge(8)).expect("cluster");
    let base_rate = 720.0;
    let rates = [1440.0, 2880.0, 1440.0, 720.0];
    println!(
        "Q3-inf on 6x r5d.xlarge (8 slots); rate steps: {} -> {:?} rec/s\n",
        fmt_rate(base_rate),
        rates.map(|r| r as i64)
    );

    let caps = CapsStrategy::default();
    let strategies: [(&str, &dyn PlacementStrategy); 3] = [
        ("CAPSys", &caps),
        ("Default", &FlinkDefault),
        ("Evenly", &FlinkEvenly),
    ];

    let header = format!(
        "{:<9} {}",
        "policy",
        (1..=4)
            .map(|i| format!("| step {i}: tput res "))
            .collect::<Vec<_>>()
            .join("")
    );
    println!("{header}");
    capsys_bench::rule(&header);

    for (name, strategy) in strategies {
        // Start from the optimal configuration at the base rate, as the
        // paper manually tunes the starting point.
        let mut query = q3_inf()
            .with_parallelism(&minimal_parallelism(&q3_inf(), base_rate))
            .expect("parallelism");
        let ds2 = Ds2Controller::new(Ds2Config {
            max_parallelism: 16,
            ..Ds2Config::default()
        });
        let mut row = format!("{name:<9}");
        let mut rng = SmallRng::seed_from_u64(11);

        // Deploy the starting configuration with the optimal (CAPS) plan
        // for everyone, so all strategies begin with clean metrics.
        let mut physical = query.physical();
        let mut loads = query.load_model_at(&physical, base_rate).expect("loads");
        let mut plan = CapsStrategy::default()
            .place(
                &PlacementContext {
                    logical: query.logical(),
                    physical: &physical,
                    cluster: &cluster,
                    loads: &loads,
                },
                &mut rng,
            )
            .expect("initial plan");

        for (step, &next_rate) in rates.iter().enumerate() {
            // Measure under the current deployment at the *new* rate.
            let schedules = query.schedules(next_rate);
            let mut sim = Simulation::new(
                query.logical(),
                &physical,
                &cluster,
                &plan,
                &schedules,
                measure_config(step as u64),
            )
            .expect("deployment valid");
            let report = sim.run();

            // DS2 decision from the measured metrics.
            let targets: HashMap<_, _> = query.source_rates(next_rate);
            let decision = ds2
                .decide(query.logical(), &physical, &report.task_rates, &targets)
                .expect("decision");

            // Apply: new parallelism, new placement by this strategy.
            query = query
                .with_parallelism(&decision.parallelism)
                .expect("parallelism");
            physical = query.physical();
            loads = query.load_model_at(&physical, next_rate).expect("loads");
            plan = strategy
                .place(
                    &PlacementContext {
                        logical: query.logical(),
                        physical: &physical,
                        cluster: &cluster,
                        loads: &loads,
                    },
                    &mut rng,
                )
                .expect("replacement");

            // Evaluate the reconfigured deployment.
            let schedules = query.schedules(next_rate);
            let mut sim = Simulation::new(
                query.logical(),
                &physical,
                &cluster,
                &plan,
                &schedules,
                measure_config(step as u64 + 40),
            )
            .expect("deployment valid");
            let verdict = sim.run();

            let meets = verdict.meets_target(0.95);
            let minimal: usize = minimal_parallelism(&q3_inf(), next_rate).iter().sum();
            let used: usize = decision.parallelism.iter().sum();
            // Allow one extra task per operator before calling it
            // over-provisioned.
            let slack = query.logical().num_operators();
            let lean = used <= minimal + slack;
            row.push_str(&format!(
                "|        {}    {}   ",
                if meets { "Y" } else { "x" },
                if lean { "Y" } else { "x" }
            ));
        }
        println!("{row}");
    }

    println!("\n(Y = met target / minimal resources, x = missed / over-provisioned;");
    println!(" paper Table 4: CAPSys YY at all 4 steps, Default and Evenly degrade");
    println!(" once poor placements corrupt DS2's true-rate metrics)");
}
