//! Chaos experiment: deterministic fault injection against the
//! self-healing closed loop.
//!
//! Not a figure from the paper — the paper assumes healthy clusters —
//! but the scenario its adaptive controller invites: a seeded
//! [`FaultPlan`] crashes a worker, slows another down, and blacks out
//! the metrics pipeline while the DS2 + CAPS loop runs Q1-sliding. The
//! experiment reports, per recovery policy (full ladder vs. round-robin
//! only), the detection lag, the mean time to recover (MTTR), the
//! throughput-loss area of the outage, and whether two runs with the
//! same seed replay identically.
//!
//! Usage: `exp_chaos [--seed N] [--quick]`

use std::time::Duration;

use capsys_bench::{banner, fast_mode, fmt_rate};
use capsys_controller::{ClosedLoop, ClosedLoopTrace, LadderRung, RecoveryConfig};
use capsys_core::SearchConfig;
use capsys_ds2::Ds2Config;
use capsys_model::{Cluster, RateSchedule, WorkerSpec};
use capsys_placement::CapsStrategy;
use capsys_queries::q1_sliding;
use capsys_sim::{ChaosConfig, FaultPlan, SimConfig};

/// Minimal std-only flag parsing: `--seed N` and `--quick`.
fn parse_args() -> (u64, bool) {
    let mut seed = 7u64;
    let mut quick = fast_mode();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--seed expects an integer; using 7");
                        7
                    });
            }
            "--quick" => quick = true,
            other => eprintln!("ignoring unknown argument `{other}`"),
        }
    }
    (seed, quick)
}

fn chaos_config(seed: u64, horizon: f64) -> ChaosConfig {
    ChaosConfig {
        seed,
        horizon,
        crashes: 1,
        // The crash outlives the run: recovery must come from
        // re-placement, not from the worker coming back.
        crash_downtime: (horizon, horizon),
        stragglers: 1,
        slowdown: (2.0, 3.0),
        straggler_duration: (40.0, 60.0),
        blackouts: 1,
        blackout_duration: (5.0, 10.0),
        metric_noise: 0.02,
        controller_kills: 0,
        model_skews: 0,
        skew_factor: (2.0, 4.0),
        ..ChaosConfig::default()
    }
}

fn run_once(
    seed: u64,
    duration: f64,
    recovery: RecoveryConfig,
) -> Result<ClosedLoopTrace, Box<dyn std::error::Error>> {
    let query = q1_sliding();
    let cluster = Cluster::homogeneous(6, WorkerSpec::r5d_xlarge(4))?;
    let target = query.capacity_rate(&cluster, 0.5)?;
    let strategy = CapsStrategy::default();
    let plan = FaultPlan::generate(&chaos_config(seed, duration), cluster.num_workers())?;
    let trace = ClosedLoop::new(
        &query,
        &cluster,
        &strategy,
        Ds2Config {
            activation_period: 60.0,
            policy_interval: 5.0,
            max_parallelism: 8,
            headroom: 1.0,
        },
        SimConfig {
            duration: 1.0,
            warmup: 0.0,
            ..SimConfig::default()
        },
        RateSchedule::Constant(target),
        seed,
    )?
    .with_fault_plan(plan)?
    .with_recovery(recovery)
    .run(duration)?;
    Ok(trace)
}

fn report(name: &str, trace: &ClosedLoopTrace, duration: f64) {
    println!("--- {name} ---");
    if trace.recovery_events.is_empty() {
        println!("no recoveries completed (fault plan may not have hit a used worker)");
    }
    for e in &trace.recovery_events {
        println!(
            "  worker {} silent from t={:.0}s, detected at t={:.0}s (lag {:.1}s), \
             recovered in {:.1}s ({} attempt(s), rung: {})",
            e.worker.0,
            e.stale_since,
            e.detected_at,
            e.detection_lag,
            e.time_to_recover,
            e.plans_tried,
            e.rung.name()
        );
    }
    if let Some(mttr) = trace.mttr() {
        println!("MTTR: {mttr:.1}s");
    }
    let loss = trace.throughput_loss_area(0.0, duration);
    let tp = trace.avg_throughput(duration * 0.8, duration);
    let tgt = trace.avg_target(duration * 0.8, duration);
    println!("throughput-loss area: {loss:.0} records");
    println!(
        "state moved: {} bytes across {} wave(s), restore downtime {:.1} task-s",
        trace.bytes_moved(),
        trace.migration_waves.len(),
        trace.downtime()
    );
    println!(
        "final-window tracking: {}/{} ({:.0}%)\n",
        fmt_rate(tp),
        fmt_rate(tgt),
        if tgt > 0.0 { 100.0 * tp / tgt } else { 100.0 }
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (seed, quick) = parse_args();
    banner(
        "Chaos",
        "fault injection + self-healing recovery",
        "robustness extension (not a paper figure)",
    );
    let duration = if quick { 240.0 } else { 600.0 };
    println!("Q1-sliding, seed {seed}, {duration}s, 6 workers, 1 crash + 1 straggler + 1 blackout\n");

    // Full ladder: auto-tuned CAPS first.
    let full = run_once(seed, duration, RecoveryConfig::default())?;
    report("ladder: caps -> relaxed -> round-robin", &full, duration);

    // Budget-starved ladder: forces the round-robin rung.
    let starved = RecoveryConfig {
        search: SearchConfig {
            time_budget: Some(Duration::ZERO),
            ..SearchConfig::auto_tuned()
        },
        ..RecoveryConfig::default()
    };
    let rr = run_once(seed, duration, starved)?;
    report("ladder: round-robin only (zero search budget)", &rr, duration);
    if rr
        .recovery_events
        .iter()
        .any(|e| e.rung != LadderRung::RoundRobin)
    {
        println!("WARNING: starved ladder used a CAPS rung");
    }

    // Determinism: same seed, same everything.
    let replay = run_once(seed, duration, RecoveryConfig::default())?;
    let identical = replay.recovery_events == full.recovery_events
        && replay.events == full.events
        && replay.points == full.points;
    println!(
        "determinism: two seed-{seed} runs {}",
        if identical { "replay identically" } else { "DIVERGED" }
    );
    if !identical {
        return Err("same-seed chaos runs diverged".into());
    }
    Ok(())
}
