//! Ablation study over the search's design choices.
//!
//! Not a paper table — this quantifies the techniques DESIGN.md §5
//! calls out, on Q3-inf (4 workers x 4 slots, 950 plans) and its x2
//! scaling (8 workers x 4 slots, ~1.8M plans):
//!
//! * symmetric-worker duplicate elimination (§4.3),
//! * threshold pruning (§4.4.1),
//! * operator exploration reordering (§4.4.2),
//! * pressure-weighted plan selection (DESIGN.md §5a).

use std::time::Instant;

use capsys_bench::{banner, fmt_pct};
use capsys_core::{CapsSearch, CostModel, SearchConfig, Thresholds};
use capsys_model::{Cluster, PlanEnumerator, PlanVisitor, WorkerSpec};
use capsys_queries::q3_inf;

struct CountOnly;
impl PlanVisitor for CountOnly {
    fn place(&mut self, _: usize, _: capsys_model::OperatorId, _: usize) -> bool {
        true
    }
    fn unplace(&mut self, _: usize, _: capsys_model::OperatorId, _: usize) {}
    fn leaf(&mut self, _: &[Vec<usize>]) -> bool {
        true
    }
}

fn main() {
    banner(
        "Ablation",
        "search design choices on Q3-inf",
        "DESIGN.md §5",
    );

    // 1. Duplicate elimination: symmetric vs. labelled enumeration.
    println!("--- duplicate elimination (§4.3) ---");
    let query = q3_inf();
    let cluster = Cluster::homogeneous(4, WorkerSpec::r5d_xlarge(4)).expect("cluster");
    let physical = query.physical();
    for (label, symmetry) in [("with dedup", true), ("without", false)] {
        let start = Instant::now();
        let stats = PlanEnumerator::new(&physical, &cluster)
            .expect("enumerator")
            .with_symmetry(symmetry)
            .explore(&mut CountOnly);
        println!(
            "{label:<12} {:>10} plans {:>12} nodes {:>10.1}ms",
            stats.plans,
            stats.nodes,
            start.elapsed().as_secs_f64() * 1e3
        );
    }

    // 2. Threshold pruning and reordering on the scaled problem.
    println!("\n--- pruning x reordering (§4.4), Q3-inf x2 on 8x4 ---");
    let big = q3_inf().scaled(2).expect("scaling");
    let big_cluster = Cluster::homogeneous(8, WorkerSpec::r5d_xlarge(4)).expect("cluster");
    let big_physical = big.physical();
    let big_rate = big.capacity_rate(&big_cluster, 0.9).expect("rate");
    let big_loads = big.load_model_at(&big_physical, big_rate).expect("loads");
    let search =
        CapsSearch::new(big.logical(), &big_physical, &big_cluster, &big_loads).expect("search");
    let header = format!(
        "{:<26} {:>12} {:>14} {:>10}",
        "variant", "plans", "nodes", "time"
    );
    println!("{header}");
    capsys_bench::rule(&header);
    for (label, alpha, reorder) in [
        ("unpruned", f64::INFINITY, false),
        ("alpha_cpu=0.2", 0.2, false),
        ("alpha_cpu=0.2 + reorder", 0.2, true),
    ] {
        let th = Thresholds::new(alpha, f64::INFINITY, f64::INFINITY);
        let config = SearchConfig {
            reorder,
            max_plans: 1,
            ..SearchConfig::with_thresholds(th)
        };
        let start = Instant::now();
        let out = search.run(&config).expect("search");
        println!(
            "{label:<26} {:>12} {:>14} {:>9.2}s",
            out.stats.plans_found,
            out.stats.nodes,
            start.elapsed().as_secs_f64()
        );
    }

    // 3. Pressure-weighted selection: does the chosen plan balance the
    //    dimension that actually matters?
    println!("\n--- pressure-weighted selection (DESIGN.md §5a) ---");
    let rate = query.capacity_rate(&cluster, 0.9).expect("rate");
    let loads = query.load_model_at(&physical, rate).expect("loads");
    let model = CostModel::new(&physical, &cluster, &loads).expect("model");
    let pressure = model.pressure();
    println!(
        "dimension pressure: cpu {} io {} net {}",
        fmt_pct(pressure[0]),
        fmt_pct(pressure[1]),
        fmt_pct(pressure[2])
    );
    let search = CapsSearch::new(query.logical(), &physical, &cluster, &loads).expect("search");
    let out = search
        .run(&SearchConfig {
            max_plans: 2048,
            ..SearchConfig::exhaustive()
        })
        .expect("search");
    let weighted = out.best_scored().expect("plans exist");
    // The naive rule the weighting replaces: minimize the raw max
    // component, treating all dimensions as equally important.
    let naive = out
        .pareto
        .iter()
        .min_by(|a, b| {
            a.cost
                .max_component()
                .partial_cmp(&b.cost.max_component())
                .expect("finite")
        })
        .expect("plans exist");
    println!(
        "pressure-weighted pick: C_cpu {:.3} C_io {:.3} C_net {:.3}",
        weighted.cost.cpu, weighted.cost.io, weighted.cost.net
    );
    println!(
        "naive max-component:    C_cpu {:.3} C_io {:.3} C_net {:.3}",
        naive.cost.cpu, naive.cost.io, naive.cost.net
    );
    println!("(lower C_cpu wins here: CPU is the only pressured dimension)");
}
