//! Figure 2: exhaustive placement-plan search for Q1-sliding.
//!
//! Enumerates all 80 distinct placement plans of Q1-sliding on the
//! 4-worker, 16-slot `r5d.xlarge` cluster, simulates every plan, and
//! reports the 3 best and 3 worst plans by throughput — the paper's
//! P1-P3 and P4-P6. Paper reference values: best ≈ 14 k rec/s at 6.8 %
//! backpressure, worst ≈ 9 k rec/s at 86.4 % backpressure.

use capsys_bench::{banner, box_stats, colocation_degree, fmt_pct, fmt_rate, measure_config};
use capsys_model::{enumerate_plans, Cluster, WorkerSpec};
use capsys_queries::q1_sliding;

fn main() {
    banner(
        "Figure 2",
        "best and worst of all 80 plans for Q1-sliding",
        "§3.2",
    );

    let query = q1_sliding();
    let cluster = Cluster::homogeneous(4, WorkerSpec::r5d_xlarge(4)).expect("valid cluster");
    let physical = query.physical();
    let plans = enumerate_plans(&physical, &cluster, usize::MAX).expect("enumeration fits");
    println!("distinct plans enumerated: {} (paper: 80)", plans.len());

    let rate = query.capacity_rate(&cluster, 0.92).expect("capacity rate");
    println!(
        "target input rate: {} rec/s (paper: ~14k)\n",
        fmt_rate(rate)
    );

    let win = query
        .logical()
        .operator_by_name("sliding-window")
        .expect("window exists");
    let mut results: Vec<(usize, f64, f64, usize)> = Vec::with_capacity(plans.len());
    for (i, plan) in plans.iter().enumerate() {
        let report = capsys_bench::run_plan(&query, &cluster, plan, rate, measure_config(7));
        let degree = colocation_degree(plan, &physical, win, cluster.num_workers());
        results.push((i, report.avg_throughput, report.avg_backpressure, degree));
    }
    results.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));

    let header = format!(
        "{:<6} {:>12} {:>14} {:>18}",
        "plan", "throughput", "backpressure", "win co-location"
    );
    println!("Top 3 plans (paper P1-P3):");
    println!("{header}");
    capsys_bench::rule(&header);
    for (rank, (i, tp, bp, deg)) in results.iter().take(3).enumerate() {
        println!(
            "P{:<5} {:>12} {:>14} {:>18}   (plan #{i})",
            rank + 1,
            fmt_rate(*tp),
            fmt_pct(*bp),
            deg
        );
    }
    println!("\nBottom 3 plans (paper P4-P6):");
    println!("{header}");
    capsys_bench::rule(&header);
    for (rank, (i, tp, bp, deg)) in results.iter().rev().take(3).rev().enumerate() {
        println!(
            "P{:<5} {:>12} {:>14} {:>18}   (plan #{i})",
            rank + 4,
            fmt_rate(*tp),
            fmt_pct(*bp),
            deg
        );
    }

    let throughputs: Vec<f64> = results.iter().map(|r| r.1).collect();
    let stats = box_stats(&throughputs);
    let meeting = results.iter().filter(|r| r.1 >= 0.95 * rate).count();
    println!("\nAcross all {} plans:", results.len());
    println!(
        "  throughput min/median/max: {} / {} / {}",
        fmt_rate(stats.min),
        fmt_rate(stats.median),
        fmt_rate(stats.max)
    );
    println!("  plans meeting >=95% of target: {meeting} (paper: 3 of 80)");
    println!(
        "  best/worst throughput ratio: {:.2}x (paper: 14k/9k = 1.56x)",
        stats.max / stats.min
    );

    // Shape check the paper's core observation: high window co-location
    // hurts.
    let best_deg = results[0].3;
    let worst_deg = results.last().expect("non-empty").3;
    println!("\nwindow co-location degree of best plan: {best_deg}, of worst plan: {worst_deg}");
    println!("(paper: best plans balance window tasks; worst plans co-locate them)");
}
