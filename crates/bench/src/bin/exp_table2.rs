//! Table 2: search-space size under threshold pruning and reordering.
//!
//! Places Q3-inf (scaled 2x, 32 tasks) on an 8-worker, 4-slot cluster and
//! runs the CAPS search for compute thresholds
//! `α_cpu ∈ {∞, 0.5, 0.2, 0.1, 0.05, 0.03, 0.01}` (I/O and network
//! disabled), reporting the number of feasible plans found and the
//! search-tree nodes visited, with and without operator exploration
//! reordering (§4.4.2).
//!
//! Paper reference (16-task Q3-inf parallelism doubled to fill the same
//! 32-slot shape the paper used): 3.25 M plans / 31 M nodes unpruned,
//! shrinking to 0 plans / 28 k nodes at α_cpu = 0.01 with reordering.
//! Our parallelism calibration yields the same order of magnitude
//! (~1.8 M distinct plans).

use capsys_bench::banner;
use capsys_core::{CapsSearch, SearchConfig, Thresholds};
use capsys_model::{Cluster, WorkerSpec};
use capsys_queries::q3_inf;

fn main() {
    banner(
        "Table 2",
        "plans and nodes vs. compute threshold",
        "§4.4, Table 2",
    );

    let query = q3_inf().scaled(2).expect("scaling");
    let cluster = Cluster::homogeneous(8, WorkerSpec::r5d_xlarge(4)).expect("cluster");
    let physical = query.physical();
    let loads = query.load_model(&physical).expect("loads");
    let search = CapsSearch::new(query.logical(), &physical, &cluster, &loads).expect("search");

    println!(
        "Q3-inf x2: {} tasks on {} workers x {} slots\n",
        physical.num_tasks(),
        cluster.num_workers(),
        cluster.slots_per_worker()
    );

    let alphas: [(String, f64); 7] = [
        ("inf".into(), f64::INFINITY),
        ("0.5".into(), 0.5),
        ("0.2".into(), 0.2),
        ("0.1".into(), 0.1),
        ("0.05".into(), 0.05),
        ("0.03".into(), 0.03),
        ("0.01".into(), 0.01),
    ];

    let header = format!(
        "{:<10} {:>12} {:>14} {:>22}",
        "alpha_cpu", "plans", "nodes", "nodes w/ reordering"
    );
    println!("{header}");
    capsys_bench::rule(&header);

    for (label, alpha) in &alphas {
        let thresholds = Thresholds::new(*alpha, f64::INFINITY, f64::INFINITY);
        let base = SearchConfig {
            max_plans: 1,
            ..SearchConfig::with_thresholds(thresholds)
        };
        let plain = search
            .run(&SearchConfig {
                reorder: false,
                ..base.clone()
            })
            .expect("search runs");
        let reordered = search
            .run(&SearchConfig {
                reorder: true,
                ..base
            })
            .expect("search runs");
        assert_eq!(
            plain.stats.plans_found, reordered.stats.plans_found,
            "reordering must preserve the feasible-plan set"
        );
        println!(
            "{:<10} {:>12} {:>14} {:>22}",
            label, plain.stats.plans_found, plain.stats.nodes, reordered.stats.nodes
        );
    }

    println!("\n(paper Table 2: plans 3.25M -> 0 and nodes 31M -> 28k across the same sweep;");
    println!(" reordering prunes unsatisfactory branches closer to the root)");
}
