//! Shared harness for the experiment binaries.
//!
//! One binary per table/figure of the CAPSys paper lives in `src/bin/`;
//! this library provides what they share: simulation wrappers, box-plot
//! statistics, contention-plan selection, and table formatting. See
//! `DESIGN.md` §4 for the experiment index and `EXPERIMENTS.md` for a
//! recorded run.

#![warn(missing_docs)]
use std::collections::HashMap;

use capsys_model::{Cluster, OperatorId, Placement, WorkerId};
use capsys_queries::Query;
use capsys_sim::{SimConfig, Simulation, SimulationReport};

/// Environment knob: set `CAPSYS_FAST=1` to shrink simulation times and
/// repetition counts for a quick smoke run of every experiment.
pub fn fast_mode() -> bool {
    std::env::var("CAPSYS_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Number of repetitions for randomized strategies (paper: 10).
pub fn repetitions() -> usize {
    if fast_mode() {
        3
    } else {
        10
    }
}

/// Simulation config for measurement runs.
pub fn measure_config(seed: u64) -> SimConfig {
    let (duration, warmup) = if fast_mode() {
        (60.0, 15.0)
    } else {
        (150.0, 40.0)
    };
    SimConfig {
        duration,
        warmup,
        noise: 0.04,
        seed,
        ..SimConfig::default()
    }
}

/// Runs one placement plan in the simulator at the given aggregate rate.
pub fn run_plan(
    query: &Query,
    cluster: &Cluster,
    plan: &Placement,
    rate: f64,
    config: SimConfig,
) -> SimulationReport {
    let physical = query.physical();
    let schedules = query.schedules(rate);
    let mut sim = Simulation::new(
        query.logical(),
        &physical,
        cluster,
        plan,
        &schedules,
        config,
    )
    .expect("deployment is valid");
    sim.run()
}

/// Five-number summary plus mean, for the paper's box plots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Smallest sample.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

/// Computes box statistics; panics on empty input.
pub fn box_stats(values: &[f64]) -> BoxStats {
    assert!(!values.is_empty(), "box_stats needs at least one sample");
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let q = |p: f64| {
        let pos = p * (v.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    };
    BoxStats {
        min: v[0],
        q1: q(0.25),
        median: q(0.5),
        q3: q(0.75),
        max: *v.last().expect("non-empty"),
        mean: values.iter().sum::<f64>() / values.len() as f64,
    }
}

/// The co-location degree of an operator under a plan: the largest number
/// of its tasks sharing one worker (the paper's §3.3 contention knob).
pub fn colocation_degree(
    plan: &Placement,
    physical: &capsys_model::PhysicalGraph,
    op: OperatorId,
    num_workers: usize,
) -> usize {
    let mut counts = vec![0usize; num_workers];
    for t in physical.operator_tasks(op) {
        counts[plan.worker_of(capsys_model::TaskId(t)).0] += 1;
    }
    counts.into_iter().max().unwrap_or(0)
}

/// The highest per-worker aggregate of a per-task weight (e.g. outbound
/// bytes/s), used to rank plans by network contention.
pub fn max_worker_weight(
    plan: &Placement,
    num_workers: usize,
    task_weight: impl Fn(usize) -> f64,
) -> f64 {
    let mut load = vec![0.0f64; num_workers];
    for (t, w) in plan.assignment().iter().enumerate() {
        load[w.0] += task_weight(t);
    }
    load.into_iter().fold(0.0, f64::max)
}

/// Sequentially places several queries with a slot-aware baseline policy,
/// as Flink would when jobs are submitted one after another (§6.2.2).
///
/// `policy` is `"default"` (fill workers in order) or `"evenly"`
/// (round-robin over workers with free slots). Returns per-query
/// placements in submission order, or `None` if the cluster ran out of
/// slots.
pub fn place_sequentially(
    queries: &[&Query],
    cluster: &Cluster,
    policy: &str,
    rng: &mut capsys_util::rng::SmallRng,
) -> Option<Vec<Placement>> {
    use capsys_util::rng::SliceRandom;
    let mut free: Vec<usize> = cluster.workers().iter().map(|w| w.spec.slots).collect();
    let mut result = Vec::with_capacity(queries.len());
    for q in queries {
        let physical = q.physical();
        let mut order: Vec<usize> = (0..physical.num_tasks()).collect();
        order.shuffle(rng);
        let mut assignment = vec![WorkerId(0); physical.num_tasks()];
        match policy {
            "default" => {
                let mut w = 0usize;
                for &t in &order {
                    while w < free.len() && free[w] == 0 {
                        w += 1;
                    }
                    if w == free.len() {
                        return None;
                    }
                    assignment[t] = WorkerId(w);
                    free[w] -= 1;
                }
            }
            "evenly" => {
                let n_workers = free.len();
                let mut w = 0usize;
                for &t in &order {
                    let mut tries = 0;
                    while free[w % n_workers] == 0 {
                        w += 1;
                        tries += 1;
                        if tries > n_workers {
                            return None;
                        }
                    }
                    assignment[t] = WorkerId(w % n_workers);
                    free[w % n_workers] -= 1;
                    w += 1;
                }
            }
            other => panic!("unknown policy `{other}`"),
        }
        result.push(Placement::new(assignment));
    }
    Some(result)
}

/// Combines per-query placements into one placement of the merged graph.
///
/// `mappings[q]` is the operator-id mapping returned by
/// [`capsys_queries::merge_queries`]; task order within an operator is
/// preserved.
pub fn combine_placements(
    queries: &[&Query],
    placements: &[Placement],
    merged_physical: &capsys_model::PhysicalGraph,
    mappings: &[Vec<OperatorId>],
) -> Placement {
    let mut assignment = vec![WorkerId(0); merged_physical.num_tasks()];
    for (qi, q) in queries.iter().enumerate() {
        let physical = q.physical();
        for t in physical.tasks() {
            let merged_op = mappings[qi][t.operator.0];
            let merged_task = merged_physical.operator_tasks(merged_op).start + t.subtask;
            assignment[merged_task] = placements[qi].worker_of(t.id);
        }
    }
    Placement::new(assignment)
}

/// Formats a rate as `12.3k` / `456`.
pub fn fmt_rate(rate: f64) -> String {
    if rate >= 10_000.0 {
        format!("{:.1}k", rate / 1000.0)
    } else if rate >= 1000.0 {
        format!("{:.2}k", rate / 1000.0)
    } else {
        format!("{rate:.0}")
    }
}

/// Formats a fraction as a percentage.
pub fn fmt_pct(frac: f64) -> String {
    format!("{:.1}%", (frac * 100.0).max(0.0))
}

/// Prints a horizontal rule sized to a header line.
pub fn rule(header: &str) {
    println!("{}", "-".repeat(header.len()));
}

/// Prints the experiment banner.
pub fn banner(id: &str, title: &str, paper_ref: &str) {
    println!();
    println!("=== {id}: {title} ===");
    println!("    (CAPSys paper, {paper_ref})");
    if fast_mode() {
        println!("    [CAPSYS_FAST=1: reduced durations and repetitions]");
    }
    println!();
}

/// Source operators of a query mapped into a merged multi-tenant graph.
pub fn mapped_sources(query: &Query, mapping: &[OperatorId]) -> Vec<OperatorId> {
    query
        .logical()
        .sources()
        .into_iter()
        .map(|s| mapping[s.0])
        .collect()
}

/// Constant schedules for a merged multi-tenant query at a total rate.
pub fn merged_schedules(
    merged: &Query,
    total_rate: f64,
) -> HashMap<OperatorId, capsys_model::RateSchedule> {
    merged.schedules(total_rate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsys_model::WorkerSpec;
    use capsys_queries::{merge_queries, q1_sliding, q3_inf};
    use capsys_util::rng::SeedableRng;

    #[test]
    fn box_stats_basic() {
        let s = box_stats(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
    }

    #[test]
    fn colocation_degree_counts_max() {
        let q = q1_sliding();
        let p = q.physical();
        let win = q.logical().operator_by_name("sliding-window").unwrap();
        // All window tasks on worker 0.
        let mut assignment = vec![WorkerId(1); p.num_tasks()];
        for t in p.operator_tasks(win) {
            assignment[t] = WorkerId(0);
        }
        let plan = Placement::new(assignment);
        assert_eq!(colocation_degree(&plan, &p, win, 4), 8);
    }

    #[test]
    fn sequential_placement_respects_slots() {
        let q1 = q1_sliding();
        let q3 = q3_inf();
        let cluster = Cluster::homogeneous(4, WorkerSpec::m5d_2xlarge(8)).unwrap();
        let mut rng = capsys_util::rng::SmallRng::seed_from_u64(1);
        let plans = place_sequentially(&[&q1, &q3], &cluster, "default", &mut rng).unwrap();
        // Aggregate per-worker occupancy within slots.
        let mut used = vec![0usize; 4];
        for (q, plan) in [&q1, &q3].iter().zip(&plans) {
            let p = q.physical();
            for t in p.tasks() {
                used[plan.worker_of(t.id).0] += 1;
            }
        }
        for u in used {
            assert!(u <= 8, "worker over-packed: {u}");
        }
        let mut rng = capsys_util::rng::SmallRng::seed_from_u64(1);
        assert!(place_sequentially(&[&q1, &q3], &cluster, "evenly", &mut rng).is_some());
    }

    #[test]
    fn sequential_placement_fails_when_full() {
        let q1 = q1_sliding();
        let tiny = Cluster::homogeneous(1, WorkerSpec::new(4, 2.0, 1e8, 1e9)).unwrap();
        let mut rng = capsys_util::rng::SmallRng::seed_from_u64(1);
        assert!(place_sequentially(&[&q1], &tiny, "default", &mut rng).is_none());
    }

    #[test]
    fn combine_placements_round_trips() {
        let q1 = q1_sliding();
        let q3 = q3_inf();
        let (merged, maps) = merge_queries("m", &[(&q1, 1000.0), (&q3, 500.0)]).unwrap();
        let merged_physical = merged.physical();
        let cluster = Cluster::homogeneous(4, WorkerSpec::m5d_2xlarge(8)).unwrap();
        let mut rng = capsys_util::rng::SmallRng::seed_from_u64(3);
        let plans = place_sequentially(&[&q1, &q3], &cluster, "evenly", &mut rng).unwrap();
        let combined = combine_placements(&[&q1, &q3], &plans, &merged_physical, &maps);
        combined.validate(&merged_physical, &cluster).unwrap();
        // Spot-check one task: q3's first task keeps its worker.
        let t0_worker = plans[1].worker_of(capsys_model::TaskId(0));
        let merged_t0 = merged_physical.operator_tasks(maps[1][0]).start;
        assert_eq!(
            combined.worker_of(capsys_model::TaskId(merged_t0)),
            t0_worker
        );
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_rate(14_230.0), "14.2k");
        assert_eq!(fmt_rate(1_234.0), "1.23k");
        assert_eq!(fmt_rate(680.0), "680");
        assert_eq!(fmt_pct(0.068), "6.8%");
    }

    #[test]
    fn run_plan_produces_report() {
        let q = q1_sliding();
        let cluster = Cluster::homogeneous(4, WorkerSpec::r5d_xlarge(4)).unwrap();
        let plans = capsys_model::enumerate_plans(&q.physical(), &cluster, 1).unwrap();
        let cfg = SimConfig {
            duration: 20.0,
            warmup: 5.0,
            ..SimConfig::default()
        };
        let rate = q.capacity_rate(&cluster, 0.5).unwrap();
        let r = run_plan(&q, &cluster, &plans[0], rate, cfg);
        assert!(r.avg_throughput > 0.0);
    }
}
