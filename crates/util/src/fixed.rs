//! Exact fixed-point arithmetic for the search hot path.
//!
//! [`Fixed64`] is a signed Q31.32 fixed-point number: an `i64` mantissa
//! interpreted as `mantissa / 2^32`. The representation is chosen for
//! the CAPS cost core, where the search accumulates and un-accumulates
//! per-worker load deltas millions of times per second:
//!
//! * **Addition and subtraction are exact** (integer adds), so an
//!   incremental accumulate/undo sequence reproduces the from-scratch
//!   sum bit-for-bit regardless of the order placements were applied —
//!   the property `f64` cannot offer and the reason the search once had
//!   to recost every stored plan from scratch.
//! * **Range** ±2^31 ≈ ±2.1e9 covers every load the model produces
//!   (raw worker loads stay below ~1e8) with ~20× headroom.
//! * **Resolution** 2^-32 ≈ 2.3e-10 keeps quantization error of a
//!   single model coefficient below the 1e-9 relative tolerance the
//!   differential tests demand against the legacy `f64` path.
//!
//! Arithmetic beyond add/sub widens through `i128` and saturates at
//! [`Fixed64::MAX`]/[`Fixed64::MIN`]; `checked_*` variants report
//! overflow instead. Saturation (rather than wrapping or panicking)
//! makes the type safe under `overflow-checks = on` and turns the
//! unbounded-threshold sentinel into ordinary arithmetic: `MAX`
//! compares greater than every representable load.
//!
//! JSON encoding is **hex-exact**: the mantissa round-trips through a
//! fixed-width hexadecimal string (`"0x0000000100000000"` for 1.0), so
//! journals and golden files carry the precise bit pattern rather than
//! a shortest-float rendering.

use std::fmt;
use std::ops::{Add, AddAssign, Neg, Sub, SubAssign};

use crate::json::{FromJson, Json, JsonError, ToJson};

/// A signed Q31.32 fixed-point number with exact add/sub and
/// saturating/checked wide ops. See the module docs for the design
/// rationale.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Fixed64(i64);

impl Fixed64 {
    /// Number of fractional bits in the representation.
    pub const SCALE_BITS: u32 = 32;
    /// The value 0.
    pub const ZERO: Fixed64 = Fixed64(0);
    /// The value 1.
    pub const ONE: Fixed64 = Fixed64(1i64 << Self::SCALE_BITS);
    /// Largest representable value (also the saturation rail and the
    /// "unbounded" sentinel: it compares greater than any real load).
    pub const MAX: Fixed64 = Fixed64(i64::MAX);
    /// Smallest (most negative) representable value.
    pub const MIN: Fixed64 = Fixed64(i64::MIN);

    /// Builds a value from a raw mantissa (`bits / 2^32`).
    pub const fn from_bits(bits: i64) -> Fixed64 {
        Fixed64(bits)
    }

    /// Returns the raw mantissa.
    pub const fn to_bits(self) -> i64 {
        self.0
    }

    /// Converts an integer exactly, saturating outside ±2^31.
    pub fn from_int(v: i64) -> Fixed64 {
        Fixed64(v.saturating_mul(1i64 << Self::SCALE_BITS))
    }

    /// Converts from `f64`, rounding to the nearest representable value
    /// and saturating at the rails. `NaN` maps to zero and infinities
    /// to the matching rail, so model ingestion of sentinel thresholds
    /// (`α = ∞`) needs no special case.
    pub fn from_f64(v: f64) -> Fixed64 {
        if v.is_nan() {
            return Fixed64::ZERO;
        }
        let scaled = v * (1i64 << Self::SCALE_BITS) as f64;
        if scaled >= i64::MAX as f64 {
            Fixed64::MAX
        } else if scaled <= i64::MIN as f64 {
            Fixed64::MIN
        } else {
            Fixed64(scaled.round_ties_even() as i64)
        }
    }

    /// Converts to `f64` (exact for mantissas below 2^53, rounded
    /// above; use [`Fixed64::to_bits`] when exactness matters).
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / (1i64 << Self::SCALE_BITS) as f64
    }

    /// Exact addition, saturating at the rails.
    pub fn saturating_add(self, rhs: Fixed64) -> Fixed64 {
        Fixed64(self.0.saturating_add(rhs.0))
    }

    /// Exact subtraction, saturating at the rails.
    pub fn saturating_sub(self, rhs: Fixed64) -> Fixed64 {
        Fixed64(self.0.saturating_sub(rhs.0))
    }

    /// Exact addition, `None` on overflow.
    pub fn checked_add(self, rhs: Fixed64) -> Option<Fixed64> {
        self.0.checked_add(rhs.0).map(Fixed64)
    }

    /// Exact subtraction, `None` on overflow.
    pub fn checked_sub(self, rhs: Fixed64) -> Option<Fixed64> {
        self.0.checked_sub(rhs.0).map(Fixed64)
    }

    /// Multiplies by an integer **exactly** (no rounding: scaling an
    /// integer multiplies the mantissa directly), saturating at the
    /// rails. This is the hot-path product: `count × rate` distributes
    /// over addition, so `Σ (kᵢ·r)` equals `(Σ kᵢ)·r` bit-for-bit.
    pub fn mul_int(self, k: i64) -> Fixed64 {
        Fixed64(saturate(self.0 as i128 * k as i128))
    }

    /// Integer multiply, `None` on overflow.
    pub fn checked_mul_int(self, k: i64) -> Option<Fixed64> {
        let wide = self.0 as i128 * k as i128;
        i64::try_from(wide).ok().map(Fixed64)
    }

    /// Full fixed-point multiply via `i128`, truncating the extra 32
    /// fractional bits toward negative infinity, saturating.
    pub fn mul(self, rhs: Fixed64) -> Fixed64 {
        Fixed64(saturate((self.0 as i128 * rhs.0 as i128) >> Self::SCALE_BITS))
    }

    /// Full fixed-point divide via `i128`, truncating toward zero,
    /// saturating. `None` when `rhs` is zero.
    pub fn checked_div(self, rhs: Fixed64) -> Option<Fixed64> {
        if rhs.0 == 0 {
            return None;
        }
        Some(Fixed64(saturate(
            ((self.0 as i128) << Self::SCALE_BITS) / rhs.0 as i128,
        )))
    }

    /// True when the value sits on the positive saturation rail (the
    /// "unbounded" sentinel).
    pub fn is_max(self) -> bool {
        self.0 == i64::MAX
    }

    /// Absolute value, saturating (`|MIN|` → `MAX`).
    pub fn abs(self) -> Fixed64 {
        Fixed64(self.0.saturating_abs())
    }
}

/// Clamps a widened mantissa back into `i64`.
fn saturate(wide: i128) -> i64 {
    if wide > i64::MAX as i128 {
        i64::MAX
    } else if wide < i64::MIN as i128 {
        i64::MIN
    } else {
        wide as i64
    }
}

impl Add for Fixed64 {
    type Output = Fixed64;
    fn add(self, rhs: Fixed64) -> Fixed64 {
        self.saturating_add(rhs)
    }
}

impl AddAssign for Fixed64 {
    fn add_assign(&mut self, rhs: Fixed64) {
        *self = self.saturating_add(rhs);
    }
}

impl Sub for Fixed64 {
    type Output = Fixed64;
    fn sub(self, rhs: Fixed64) -> Fixed64 {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for Fixed64 {
    fn sub_assign(&mut self, rhs: Fixed64) {
        *self = self.saturating_sub(rhs);
    }
}

impl Neg for Fixed64 {
    type Output = Fixed64;
    fn neg(self) -> Fixed64 {
        Fixed64(self.0.saturating_neg())
    }
}

impl fmt::Debug for Fixed64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fixed64({})", self.to_f64())
    }
}

impl fmt::Display for Fixed64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

impl ToJson for Fixed64 {
    fn to_json(&self) -> Json {
        // Fixed-width two's-complement hex: exact round-trip, no float
        // formatting in the loop.
        Json::Str(format!("0x{:016x}", self.0 as u64))
    }
}

impl FromJson for Fixed64 {
    fn from_json(value: &Json) -> Result<Fixed64, JsonError> {
        let s = value
            .as_str()
            .ok_or_else(|| JsonError::msg("expected a hex fixed-point string"))?;
        let digits = s
            .strip_prefix("0x")
            .ok_or_else(|| JsonError::msg("fixed-point string must start with 0x"))?;
        if digits.len() != 16 {
            return Err(JsonError::msg(format!(
                "fixed-point string must have 16 hex digits, got {}",
                digits.len()
            )));
        }
        let bits = u64::from_str_radix(digits, 16)
            .map_err(|e| JsonError::msg(format!("bad fixed-point hex: {e}")))?;
        Ok(Fixed64(bits as i64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_and_float_conversions_round_trip() {
        assert_eq!(Fixed64::from_int(0), Fixed64::ZERO);
        assert_eq!(Fixed64::from_int(1), Fixed64::ONE);
        assert_eq!(Fixed64::from_int(-3).to_f64(), -3.0);
        // Powers of two and their sums are exactly representable.
        for v in [0.0, 0.5, 1.25, -7.75, 1024.0 + 1.0 / 1024.0] {
            assert_eq!(Fixed64::from_f64(v).to_f64(), v, "{v} must be exact");
        }
        // Quantization error is bounded by half a ulp of 2^-32.
        let v = 0.1;
        assert!((Fixed64::from_f64(v).to_f64() - v).abs() <= 0.5 / (1u64 << 32) as f64);
    }

    #[test]
    fn non_finite_floats_map_to_sentinels() {
        assert_eq!(Fixed64::from_f64(f64::INFINITY), Fixed64::MAX);
        assert_eq!(Fixed64::from_f64(f64::NEG_INFINITY), Fixed64::MIN);
        assert_eq!(Fixed64::from_f64(f64::NAN), Fixed64::ZERO);
        assert!(Fixed64::MAX.is_max());
        assert!(!Fixed64::ONE.is_max());
    }

    #[test]
    fn add_sub_are_exact_and_order_independent() {
        // The property the search relies on: any accumulate/undo
        // interleaving lands on the same bits as the straight sum.
        let xs: Vec<Fixed64> = (1..100).map(|i| Fixed64::from_f64(0.1 * i as f64)).collect();
        let forward = xs.iter().fold(Fixed64::ZERO, |a, &b| a + b);
        let backward = xs.iter().rev().fold(Fixed64::ZERO, |a, &b| a + b);
        assert_eq!(forward, backward);
        let mut acc = forward;
        for &x in &xs {
            acc += x;
            acc -= x;
        }
        assert_eq!(acc, forward, "accumulate+undo must be a bit-exact no-op");
    }

    #[test]
    fn saturation_at_extremes() {
        assert_eq!(Fixed64::MAX + Fixed64::ONE, Fixed64::MAX);
        assert_eq!(Fixed64::MIN - Fixed64::ONE, Fixed64::MIN);
        assert_eq!(Fixed64::MAX.mul_int(2), Fixed64::MAX);
        assert_eq!(Fixed64::MIN.mul_int(2), Fixed64::MIN);
        assert_eq!(Fixed64::MAX.mul(Fixed64::MAX), Fixed64::MAX);
        assert_eq!(Fixed64::MAX.mul(-Fixed64::ONE), Fixed64::from_bits(-i64::MAX));
        assert_eq!(Fixed64::MIN.mul(Fixed64::from_int(2)), Fixed64::MIN);
        assert_eq!(-Fixed64::MIN, Fixed64::MAX);
        assert_eq!(Fixed64::MIN.abs(), Fixed64::MAX);
        assert_eq!(Fixed64::from_int(i64::MAX), Fixed64::MAX);
        assert_eq!(Fixed64::from_f64(1e300), Fixed64::MAX);
        assert_eq!(Fixed64::from_f64(-1e300), Fixed64::MIN);
    }

    #[test]
    fn checked_ops_report_overflow() {
        assert_eq!(Fixed64::MAX.checked_add(Fixed64::ONE), None);
        assert_eq!(Fixed64::MIN.checked_sub(Fixed64::ONE), None);
        assert_eq!(Fixed64::MAX.checked_mul_int(2), None);
        assert!(Fixed64::ONE.checked_add(Fixed64::ONE).is_some());
        assert_eq!(
            Fixed64::ONE.checked_mul_int(7),
            Some(Fixed64::from_int(7))
        );
        assert_eq!(Fixed64::ONE.checked_div(Fixed64::ZERO), None);
        assert_eq!(
            Fixed64::from_int(10).checked_div(Fixed64::from_int(4)),
            Some(Fixed64::from_f64(2.5))
        );
    }

    #[test]
    fn mul_int_distributes_over_addition_exactly() {
        let r = Fixed64::from_f64(0.3337);
        let ks = [3i64, 7, 11, 20];
        let lhs: Fixed64 = ks.iter().map(|&k| r.mul_int(k)).fold(Fixed64::ZERO, Add::add);
        let rhs = r.mul_int(ks.iter().sum());
        assert_eq!(lhs, rhs, "k·r must distribute bit-exactly");
    }

    #[test]
    fn json_round_trip_is_hex_exact() {
        for v in [
            Fixed64::ZERO,
            Fixed64::ONE,
            Fixed64::MAX,
            Fixed64::MIN,
            Fixed64::from_f64(-0.12345),
            Fixed64::from_bits(0x0123_4567_89ab_cdef),
        ] {
            let j = v.to_json();
            assert_eq!(Fixed64::from_json(&j).unwrap(), v);
            // Through the encoder and parser too.
            let text = j.to_string();
            let back = Json::parse(&text).unwrap();
            assert_eq!(Fixed64::from_json(&back).unwrap(), v);
        }
        assert_eq!(Fixed64::ONE.to_json(), Json::Str("0x0000000100000000".into()));
    }

    #[test]
    fn json_decode_rejects_malformed_input() {
        assert!(Fixed64::from_json(&Json::Num(1.0)).is_err());
        assert!(Fixed64::from_json(&Json::Str("1234".into())).is_err());
        assert!(Fixed64::from_json(&Json::Str("0x12".into())).is_err());
        assert!(Fixed64::from_json(&Json::Str("0xzzzzzzzzzzzzzzzz".into())).is_err());
    }

    #[test]
    fn ordering_follows_value() {
        assert!(Fixed64::MIN < Fixed64::from_int(-1));
        assert!(Fixed64::from_int(-1) < Fixed64::ZERO);
        assert!(Fixed64::ZERO < Fixed64::from_f64(1e-9));
        assert!(Fixed64::from_int(5) < Fixed64::MAX);
    }
}
