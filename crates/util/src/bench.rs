//! Wall-clock benchmark runner (std-only `criterion` replacement).
//!
//! Mirrors the criterion surface the workspace's benches use —
//! `Criterion`, `benchmark_group`, `sample_size`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — so a bench file
//! only swaps its `use criterion::...` line.
//!
//! Each sample times one invocation of the measured closure; the
//! runner warms up first, then reports `[min median max]` per
//! benchmark. Environment knobs:
//!
//! * `CAPSYS_BENCH_QUICK=1` — one warm-up, one sample (smoke mode; CI
//!   uses this to prove benches run end-to-end without burning time).
//! * `CAPSYS_BENCH_JSON=<path>` — append one JSON line per benchmark
//!   (`{"bench": ..., "median_ns": ...}`), building the perf
//!   trajectory across commits.
//!
//! A single positional CLI argument filters benchmarks by substring,
//! like criterion: `cargo bench --bench caps_search -- alpha1`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub use crate::{criterion_group, criterion_main};

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A compound id, rendered `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Passed to the measured closure; its [`iter`](Bencher::iter) method
/// runs and times the workload.
pub struct Bencher<'a> {
    samples: usize,
    warmup: usize,
    results_ns: &'a mut Vec<u128>,
}

impl Bencher<'_> {
    /// Times `routine`, collecting the configured number of samples.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..self.warmup {
            black_box(routine());
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.results_ns.push(start.elapsed().as_nanos());
        }
    }
}

/// Top-level benchmark driver; one per bench binary.
pub struct Criterion {
    filter: Option<String>,
    quick: bool,
    json_path: Option<String>,
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            filter: None,
            quick: std::env::var("CAPSYS_BENCH_QUICK").is_ok_and(|v| v != "0"),
            json_path: std::env::var("CAPSYS_BENCH_JSON").ok(),
            default_samples: 20,
        }
    }
}

impl Criterion {
    /// Builds a driver from CLI args: flags are ignored (cargo passes
    /// `--bench`), the first positional argument is a substring filter.
    pub fn from_env() -> Criterion {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                // `cargo test --benches` smoke-runs each bench binary.
                c.quick = true;
            } else if !arg.starts_with('-') {
                c.filter = Some(arg);
            }
        }
        c
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            samples: None,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        let samples = self.default_samples;
        self.run_one(None, &id.into(), samples, f);
        self
    }

    fn run_one(
        &mut self,
        group: Option<&str>,
        id: &BenchmarkId,
        samples: usize,
        mut f: impl FnMut(&mut Bencher),
    ) {
        let full_name = match group {
            Some(g) => format!("{g}/{}", id.label),
            None => id.label.clone(),
        };
        if let Some(filter) = &self.filter {
            if !full_name.contains(filter.as_str()) {
                return;
            }
        }
        let (samples, warmup) = if self.quick { (1, 1) } else { (samples, 2) };
        let mut results_ns = Vec::with_capacity(samples);
        let mut b = Bencher {
            samples,
            warmup,
            results_ns: &mut results_ns,
        };
        f(&mut b);
        if results_ns.is_empty() {
            // The closure never called `iter`; nothing to report.
            println!("{full_name:<50} (no measurement)");
            return;
        }
        results_ns.sort_unstable();
        let min = results_ns[0];
        let median = results_ns[results_ns.len() / 2];
        let max = results_ns[results_ns.len() - 1];
        println!(
            "{full_name:<50} time: [{} {} {}]  ({} samples)",
            format_ns(min),
            format_ns(median),
            format_ns(max),
            results_ns.len(),
        );
        if let Some(path) = &self.json_path {
            use crate::json::{obj, Json, ToJson};
            let line = obj(vec![
                ("bench", full_name.to_json()),
                ("samples", results_ns.len().to_json()),
                ("min_ns", Json::Num(min as f64)),
                ("median_ns", Json::Num(median as f64)),
                ("max_ns", Json::Num(max as f64)),
            ]);
            append_line(path, &line.to_string());
        }
    }
}

/// A named group of benchmarks sharing a sample-count setting.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    samples: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        assert!(samples > 0, "sample_size must be positive");
        self.samples = Some(samples);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let samples = self.samples.unwrap_or(self.criterion.default_samples);
        let name = self.name.clone();
        self.criterion.run_one(Some(&name), &id.into(), samples, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for criterion API parity).
    pub fn finish(self) {}
}

fn format_ns(ns: u128) -> String {
    let ns = ns as f64;
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn append_line(path: &str, line: &str) {
    use std::io::Write;
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path);
    match file {
        Ok(mut f) => {
            let _ = writeln!(f, "{line}");
        }
        Err(e) => eprintln!("CAPSYS_BENCH_JSON: cannot open {path}: {e}"),
    }
}

/// Approximate total wall-clock budget sanity helper used by smoke
/// tests: runs `f` once and returns the elapsed duration.
pub fn time_once<O>(f: impl FnOnce() -> O) -> (O, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Defines a bench group function from benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::bench::Criterion::from_env();
            $( $target(&mut criterion); )+
        }
    };
}

/// Defines `main` from bench group functions, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut results = Vec::new();
        let mut b = Bencher {
            samples: 5,
            warmup: 1,
            results_ns: &mut results,
        };
        let mut calls = 0usize;
        b.iter(|| calls += 1);
        assert_eq!(calls, 6); // 1 warmup + 5 samples
        assert_eq!(results.len(), 5);
    }

    #[test]
    fn groups_and_filters_run() {
        let mut c = Criterion {
            filter: Some("keep".into()),
            quick: true,
            json_path: None,
            default_samples: 3,
        };
        let mut ran = Vec::new();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_function("keep_this", |b| {
                b.iter(|| ran.push("keep"));
            });
            g.bench_with_input(BenchmarkId::new("skip", 4), &4, |b, &x| {
                b.iter(|| ran.push(if x == 4 { "skip" } else { "?" }));
            });
            g.finish();
        }
        assert_eq!(ran, vec!["keep", "keep"]); // quick: 1 warmup + 1 sample
    }

    #[test]
    fn benchmark_ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("alpha", 16).label, "alpha/16");
        assert_eq!(BenchmarkId::from_parameter(8).label, "8");
    }

    #[test]
    fn json_lines_are_appended_and_parse() {
        let path = std::env::temp_dir().join(format!(
            "capsys_bench_test_{}.jsonl",
            std::process::id()
        ));
        let path_str = path.to_str().unwrap().to_string();
        let _ = std::fs::remove_file(&path);
        let mut c = Criterion {
            filter: None,
            quick: true,
            json_path: Some(path_str.clone()),
            default_samples: 2,
        };
        c.bench_function("jsonline", |b| b.iter(|| black_box(2 + 2)));
        let contents = std::fs::read_to_string(&path).unwrap();
        let line = contents.lines().next().unwrap();
        let v = crate::json::Json::parse(line).unwrap();
        assert_eq!(v.get("bench").unwrap().as_str(), Some("jsonline"));
        assert!(v.get("median_ns").unwrap().as_f64().unwrap() >= 0.0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn format_ns_uses_human_units() {
        assert_eq!(format_ns(500), "500 ns");
        assert_eq!(format_ns(1_500), "1.50 µs");
        assert_eq!(format_ns(2_500_000), "2.50 ms");
        assert_eq!(format_ns(3_000_000_000), "3.000 s");
    }
}
