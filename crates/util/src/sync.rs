//! Poison-free lock wrappers over `std::sync` (std-only `parking_lot`
//! replacement).
//!
//! `parking_lot`'s ergonomic win is that `lock()` returns the guard
//! directly instead of a `Result` that is `unwrap()`ed at every call
//! site. These wrappers keep that surface: a poisoned lock (a thread
//! panicked while holding it) panics here too, which is the only sane
//! behavior for this workspace — all shared state is search caches and
//! metrics, worthless after a panic.

use std::sync::{self, LockResult, PoisonError};

fn ignore_poison<G>(result: LockResult<G>) -> G {
    result.unwrap_or_else(PoisonError::into_inner)
}

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        ignore_poison(self.0.lock())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<sync::MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        ignore_poison(self.0.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        ignore_poison(self.0.get_mut())
    }
}

/// A reader-writer lock whose guards are returned directly.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        ignore_poison(self.0.read())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        ignore_poison(self.0.write())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        ignore_poison(self.0.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0usize));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let m = Arc::clone(&m);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(5);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().unwrap(), 5);
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let l = RwLock::new(vec![1, 2, 3]);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(r1.len() + r2.len(), 6);
        drop((r1, r2));
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn poisoned_lock_recovers_value() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // A poisoned std mutex would error; the wrapper recovers.
        assert_eq!(*m.lock(), 7);
    }
}
