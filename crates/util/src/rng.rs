//! Seedable pseudo-random number generation (std-only `rand`
//! replacement).
//!
//! [`SmallRng`] is xoshiro256++ seeded through SplitMix64, the same
//! construction `rand`'s `SmallRng` used on 64-bit targets, so it is
//! fast, has a 2^256-1 period, and gives well-distributed 64-bit
//! outputs from any single `u64` seed. The API mirrors the subset of
//! `rand` the workspace uses:
//!
//! ```
//! use capsys_util::rng::{Rng, SeedableRng, SliceRandom, SmallRng};
//!
//! let mut rng = SmallRng::seed_from_u64(7);
//! let jitter: f64 = rng.gen_range(-1.0..1.0);
//! assert!((-1.0..1.0).contains(&jitter));
//! let mut order: Vec<usize> = (0..10).collect();
//! order.shuffle(&mut rng);
//! ```
//!
//! Determinism is load-bearing: placement plans, simulator noise, and
//! property-test cases must replay byte-identically from a seed, in
//! debug and release, on any platform.

/// Core trait for generators: a source of uniform 64-bit outputs.
pub trait RngCore {
    /// Returns the next uniform 64-bit output.
    fn next_u64(&mut self) -> u64;
}

/// SplitMix64 step: the standard seed expander (Steele et al.).
///
/// Used to derive the xoshiro256++ state from a single `u64` so that
/// similar seeds still produce uncorrelated streams.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small, fast, seedable PRNG (xoshiro256++).
///
/// Not cryptographically secure; intended for simulation noise,
/// randomized placement orders, and test-case generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a single `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SmallRng { s }
    }
}

impl SmallRng {
    /// The raw xoshiro256++ state, for checkpointing. Restore with
    /// [`SmallRng::try_from_state`] to resume the exact stream.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a checkpointed state. `None` for the
    /// all-zero state, which xoshiro256++ can never leave (and
    /// [`SeedableRng::seed_from_u64`] can never produce).
    pub fn try_from_state(s: [u64; 4]) -> Option<SmallRng> {
        if s == [0; 4] {
            None
        } else {
            Some(SmallRng { s })
        }
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can describe a sampling range for [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Sample;
    /// Draws one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Sample;
}

/// Uniform `u64` below `bound` without modulo bias (Lemire rejection).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Widening-multiply method; reject the biased zone.
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Sample = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Sample = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let off = uniform_below(rng, span as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32);

impl SampleRange for std::ops::Range<f64> {
    type Sample = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Sample = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + unit * (hi - lo)
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws one uniform sample from `range`, e.g. `rng.gen_range(0..10)`
    /// or `rng.gen_range(-1.0..1.0)`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Sample {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        self.gen_range(0.0..1.0) < p
    }

    /// Uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        self.gen_range(0.0..1.0)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice helpers, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly chooses one element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_below(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_below(rng, self.len() as u64) as usize])
        }
    }
}

/// Compatibility alias module so call sites can keep the
/// `rand::rngs::SmallRng` path shape (`capsys_util::rng::rngs::SmallRng`).
pub mod rngs {
    pub use super::SmallRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_clones_and_seeds() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn known_xoshiro_vector() {
        // First outputs for seed 0 must stay frozen forever: golden
        // files and simulation replays depend on them.
        let mut r = SmallRng::seed_from_u64(0);
        let first: Vec<u64> = (0..3).map(|_| r.next_u64()).collect();
        let mut r2 = SmallRng::seed_from_u64(0);
        let again: Vec<u64> = (0..3).map(|_| r2.next_u64()).collect();
        assert_eq!(first, again);
        assert!(first.iter().any(|&x| x != 0));
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..2000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&y));
            let z = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation_and_seed_stable() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());

        let mut rng2 = SmallRng::seed_from_u64(9);
        let mut v2: Vec<usize> = (0..20).collect();
        v2.shuffle(&mut rng2);
        assert_eq!(v, v2);
    }

    #[test]
    fn gen_bool_probability_is_plausible() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn state_checkpoint_resumes_exact_stream() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..17 {
            rng.next_u64();
        }
        let snap = rng.state();
        let expected: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        let mut resumed = SmallRng::try_from_state(snap).unwrap();
        let actual: Vec<u64> = (0..8).map(|_| resumed.next_u64()).collect();
        assert_eq!(expected, actual);
        assert!(SmallRng::try_from_state([0; 4]).is_none());
    }

    #[test]
    fn choose_picks_existing_elements() {
        let mut rng = SmallRng::seed_from_u64(11);
        let v = [10, 20, 30];
        for _ in 0..50 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
