//! `capsys-util`: the std-only utility layer that keeps the CAPSys
//! workspace hermetic.
//!
//! The build environment has no network access and no vendored crate
//! registry, so every external dependency the workspace once used is
//! replaced by an in-repo equivalent:
//!
//! * [`rng`] — a seedable SplitMix64/xoshiro256++ PRNG with the
//!   `SmallRng` / `gen_range` / `shuffle` surface (replaces `rand`).
//! * [`json`] — a JSON value type with parser, compact + pretty
//!   encoders, and [`json::ToJson`] / [`json::FromJson`] traits
//!   (replaces `serde` + `serde_json`).
//! * [`fixed`] — exact Q31.32 fixed-point arithmetic for the search
//!   cost core (replaces ad-hoc `f64` accumulation and the fixed-point
//!   crates the ecosystem would normally supply).
//! * [`queue`] — an `Injector`-style MPMC work queue (replaces
//!   `crossbeam::deque`'s global injector).
//! * [`deque`] — per-thread LIFO worker deques with FIFO stealers for
//!   the work-stealing parallel search (replaces `crossbeam-deque`'s
//!   `Worker`/`Stealer`).
//! * [`sync`] — poison-free `Mutex` / `RwLock` wrappers over
//!   `std::sync` (replaces `parking_lot`).
//! * [`journal`] — append-only, checksummed JSON-lines journal framing
//!   (CRC-32 frames, torn-tail-tolerant reads) for write-ahead logs.
//! * [`prop`] — a mini property-testing harness with seeded case
//!   generation, failing-seed reporting, and input shrinking
//!   (replaces `proptest`).
//! * [`bench`] — a wall-clock benchmark runner with warm-up,
//!   configurable sample counts, and median reporting (replaces
//!   `criterion`).
//!
//! Everything in this crate uses only `std`. Reintroducing an external
//! registry dependency anywhere in the workspace is a CI failure
//! (`scripts/ci.sh` greps every manifest).

#![warn(missing_docs)]

pub mod bench;
pub mod deque;
pub mod fixed;
pub mod journal;
pub mod json;
pub mod prop;
pub mod queue;
pub mod rng;
pub mod sync;
