//! Per-thread work-stealing deques (std-only `crossbeam-deque`
//! replacement).
//!
//! The parallel CAPS search gives every thread its own [`Worker`] deque:
//! the owner pushes and pops at the back (LIFO — the most recently split
//! work is hot in cache and deepest in the tree), while idle threads
//! steal from the front through a [`Stealer`] handle (FIFO — the oldest
//! unit is the coarsest remaining subtree, so one steal transfers the
//! most work). This mirrors the `crossbeam-deque` `Worker`/`Stealer`
//! split the way [`crate::queue`] mirrors its `Injector`.
//!
//! The implementation sits behind the workspace's poison-free
//! [`crate::sync::Mutex`] rather than a lock-free Chase-Lev buffer:
//! work units are coarse (milliseconds of exploration each), so one
//! uncontended lock per transfer is noise. Steals use `try_lock` and
//! surface contention as [`Steal::Retry`], exactly like crossbeam's
//! transient-failure contract.

use std::collections::VecDeque;
use std::sync::Arc;

pub use crate::queue::Steal;
use crate::sync::Mutex;

/// The owner's handle to a work-stealing deque.
///
/// Cheap to move into the owning thread; hand out [`Stealer`]s to every
/// other thread before spawning.
#[derive(Debug)]
pub struct Worker<T> {
    shared: Arc<Mutex<VecDeque<T>>>,
}

/// A thief's handle to another thread's [`Worker`] deque.
#[derive(Debug)]
pub struct Stealer<T> {
    shared: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Default for Worker<T> {
    fn default() -> Self {
        Worker::new_lifo()
    }
}

impl<T> Worker<T> {
    /// Creates an empty deque with LIFO owner semantics.
    pub fn new_lifo() -> Worker<T> {
        Worker {
            shared: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Pushes a work unit onto the owner's end (the back).
    pub fn push(&self, item: T) {
        self.shared.lock().push_back(item);
    }

    /// Pops the most recently pushed unit (LIFO).
    pub fn pop(&self) -> Option<T> {
        self.shared.lock().pop_back()
    }

    /// Creates a stealer handle for another thread.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Number of queued units.
    pub fn len(&self) -> usize {
        self.shared.lock().len()
    }

    /// True if no units are queued.
    pub fn is_empty(&self) -> bool {
        self.shared.lock().is_empty()
    }
}

impl<T> Stealer<T> {
    /// Attempts to steal the oldest unit (FIFO end).
    ///
    /// Returns [`Steal::Retry`] when the owner (or another thief) holds
    /// the lock right now; the caller should move on to the next victim
    /// and come back, rather than block behind an active deque.
    pub fn steal(&self) -> Steal<T> {
        match self.shared.try_lock() {
            Some(mut q) => match q.pop_front() {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            },
            None => Steal::Retry,
        }
    }

    /// Number of queued units (snapshot; may be stale immediately).
    pub fn len(&self) -> usize {
        self.shared.lock().len()
    }

    /// True if no units are queued (snapshot; may be stale immediately).
    pub fn is_empty(&self) -> bool {
        self.shared.lock().is_empty()
    }
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            shared: Arc::clone(&self.shared),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn owner_pops_lifo() {
        let w = Worker::new_lifo();
        assert!(w.is_empty());
        for i in 0..4 {
            w.push(i);
        }
        assert_eq!(w.len(), 4);
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
        w.push(9);
        assert_eq!(w.pop(), Some(9));
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), Some(0));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn thief_steals_fifo() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        for i in 0..4 {
            w.push(i);
        }
        assert_eq!(s.steal(), Steal::Success(0));
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(s.steal(), Steal::Success(2));
        assert_eq!(s.steal(), Steal::<i32>::Empty);
    }

    #[test]
    fn stealers_clone_and_share() {
        let w = Worker::new_lifo();
        let s1 = w.stealer();
        let s2 = s1.clone();
        w.push(7);
        assert_eq!(s1.len(), 1);
        assert_eq!(s2.steal(), Steal::Success(7));
        assert!(s1.is_empty());
    }

    #[test]
    fn concurrent_steals_take_each_item_once() {
        let w = Worker::new_lifo();
        const N: usize = 10_000;
        for i in 0..N {
            w.push(i);
        }
        let sum = AtomicUsize::new(0);
        let count = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = w.stealer();
                let sum = &sum;
                let count = &count;
                scope.spawn(move || loop {
                    match s.steal() {
                        Steal::Success(v) => {
                            sum.fetch_add(v, Ordering::Relaxed);
                            count.fetch_add(1, Ordering::Relaxed);
                        }
                        Steal::Retry => std::thread::yield_now(),
                        Steal::Empty => break,
                    }
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), N);
        assert_eq!(sum.load(Ordering::Relaxed), N * (N - 1) / 2);
    }

    #[test]
    fn owner_and_thieves_interleave() {
        // Owner keeps producing and consuming while thieves drain; every
        // produced unit is consumed exactly once overall.
        let w = Worker::new_lifo();
        const N: usize = 4_000;
        let stolen = AtomicUsize::new(0);
        let popped = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let s = w.stealer();
                let stolen = &stolen;
                let popped = &popped;
                scope.spawn(move || loop {
                    match s.steal() {
                        Steal::Success(_) => {
                            stolen.fetch_add(1, Ordering::Relaxed);
                        }
                        Steal::Retry => std::thread::yield_now(),
                        Steal::Empty => {
                            if popped.load(Ordering::Relaxed) + stolen.load(Ordering::Relaxed) >= N
                            {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
            for i in 0..N {
                w.push(i);
                if i % 3 == 0 {
                    if w.pop().is_some() {
                        popped.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            // Drain whatever the thieves left behind.
            while w.pop().is_some() {
                popped.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(
            stolen.load(Ordering::Relaxed) + popped.load(Ordering::Relaxed),
            N
        );
    }
}
