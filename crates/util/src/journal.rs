//! Append-only, checksummed JSON-lines journal framing (the write-ahead
//! log substrate for durable controllers).
//!
//! A journal is a sequence of frames, one per line:
//!
//! ```text
//! {"seq":0,"crc":2768625435,"data":{...}}
//! {"seq":1,"crc":1234567890,"data":{...}}
//! ```
//!
//! * `seq` — a contiguous, zero-based sequence number; a gap or
//!   repetition means the file was tampered with or mis-assembled.
//! * `crc` — CRC-32 (IEEE) over the *compact* encoding of `data`. The
//!   payload is re-encoded on read, so any bit flip inside `data` that
//!   still parses is caught by the checksum, and one that breaks the
//!   JSON grammar is caught by the parser.
//! * `data` — an arbitrary [`Json`] payload supplied by the caller.
//!
//! Writes go through [`JournalWriter`], which flushes after every
//! append: a frame is either fully on its way to the sink or not written
//! at all from the writer's point of view. A crash can still tear the
//! final line (partial OS-level write); [`read_journal`] therefore
//! tolerates exactly one trailing invalid line — the torn tail is
//! dropped and reported via [`ReadOutcome::torn`] — while an invalid
//! line *before* the tail is a hard [`JournalError::Corrupt`] error.
//!
//! [`SharedBuf`] is an in-memory `Write` sink whose contents stay
//! readable through clones after the writer is gone, so tests and
//! crash-recovery sweeps can journal without touching the filesystem.

use std::io::Write;
use std::sync::Arc;

use crate::json::Json;
use crate::sync::Mutex;

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) of `bytes`.
///
/// Bitwise implementation — journals are small and appends are rare
/// (one per controller decision), so no lookup table is warranted.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Errors raised while writing or reading a journal.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalError {
    /// The underlying sink failed (message of the `io::Error`).
    Io(String),
    /// A frame before the tail failed validation.
    Corrupt {
        /// Zero-based line number of the bad frame.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(msg) => write!(f, "journal I/O error: {msg}"),
            JournalError::Corrupt { line, reason } => {
                write!(f, "journal corrupt at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

/// An append-only writer of checksummed journal frames.
pub struct JournalWriter {
    out: Box<dyn Write + Send>,
    next_seq: u64,
}

impl JournalWriter {
    /// A writer that starts at sequence number 0.
    pub fn new(out: Box<dyn Write + Send>) -> JournalWriter {
        JournalWriter { out, next_seq: 0 }
    }

    /// A writer resuming an existing journal at `next_seq` (the number
    /// of valid frames already in the sink).
    pub fn resuming(out: Box<dyn Write + Send>, next_seq: u64) -> JournalWriter {
        JournalWriter { out, next_seq }
    }

    /// The sequence number the next append will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Appends one frame and flushes the sink. Returns the frame's
    /// sequence number.
    pub fn append(&mut self, data: &Json) -> Result<u64, JournalError> {
        let body = data.to_string();
        let crc = crc32(body.as_bytes());
        let line = format!("{{\"seq\":{},\"crc\":{crc},\"data\":{body}}}\n", self.next_seq);
        self.out
            .write_all(line.as_bytes())
            .map_err(|e| JournalError::Io(e.to_string()))?;
        self.out
            .flush()
            .map_err(|e| JournalError::Io(e.to_string()))?;
        let seq = self.next_seq;
        self.next_seq += 1;
        Ok(seq)
    }
}

impl std::fmt::Debug for JournalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JournalWriter")
            .field("next_seq", &self.next_seq)
            .finish_non_exhaustive()
    }
}

/// What [`read_journal`] recovered from a journal's text.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadOutcome {
    /// The `data` payloads of every valid frame, in sequence order.
    pub records: Vec<Json>,
    /// Whether a torn (partially written) final line was dropped.
    pub torn: bool,
}

/// Validates one frame line; returns its payload.
fn check_frame(line: &str, expected_seq: u64) -> Result<Json, String> {
    let frame = Json::parse(line).map_err(|e| format!("unparseable frame: {e}"))?;
    let seq = frame
        .get("seq")
        .and_then(Json::as_f64)
        .ok_or("frame has no numeric `seq`")?;
    if seq != expected_seq as f64 {
        return Err(format!("sequence gap: expected {expected_seq}, found {seq}"));
    }
    let crc = frame
        .get("crc")
        .and_then(Json::as_f64)
        .ok_or("frame has no numeric `crc`")?;
    let data = frame.get("data").ok_or("frame has no `data`")?;
    let actual = crc32(data.to_string().as_bytes());
    if crc != actual as f64 {
        return Err(format!("checksum mismatch: stored {crc}, computed {actual}"));
    }
    Ok(data.clone())
}

/// Reads back a journal written by [`JournalWriter`].
///
/// Frames are validated in order (parse, contiguous `seq`, checksum). An
/// invalid *final* line is treated as a torn tail and dropped; an
/// invalid line anywhere else is a [`JournalError::Corrupt`] error.
pub fn read_journal(text: &str) -> Result<ReadOutcome, JournalError> {
    let mut lines: Vec<&str> = text.split('\n').collect();
    while lines.last().is_some_and(|l| l.is_empty()) {
        lines.pop();
    }
    let mut records = Vec::with_capacity(lines.len());
    let last = lines.len().saturating_sub(1);
    for (i, line) in lines.iter().enumerate() {
        match check_frame(line, records.len() as u64) {
            Ok(data) => records.push(data),
            Err(_) if i == last => {
                return Ok(ReadOutcome {
                    records,
                    torn: true,
                });
            }
            Err(reason) => return Err(JournalError::Corrupt { line: i, reason }),
        }
    }
    Ok(ReadOutcome {
        records,
        torn: false,
    })
}

/// A clonable in-memory byte sink.
///
/// Every clone shares the same buffer, so the contents written through a
/// `Box<dyn Write>` handed to a [`JournalWriter`] remain readable from a
/// retained clone — the crash-recovery analogue of a file surviving the
/// process that wrote it.
#[derive(Debug, Clone, Default)]
pub struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    /// An empty shared buffer.
    pub fn new() -> SharedBuf {
        SharedBuf::default()
    }

    /// A copy of the bytes written so far.
    pub fn contents(&self) -> Vec<u8> {
        self.0.lock().clone()
    }

    /// The bytes written so far, as UTF-8 text (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.0.lock()).into_owned()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: u64) -> Json {
        Json::Obj(vec![
            ("kind".into(), Json::Str("test".into())),
            ("i".into(), Json::Num(i as f64)),
        ])
    }

    fn write_n(n: u64) -> (SharedBuf, Vec<Json>) {
        let buf = SharedBuf::new();
        let mut w = JournalWriter::new(Box::new(buf.clone()));
        let mut recs = Vec::new();
        for i in 0..n {
            assert_eq!(w.append(&rec(i)).unwrap(), i);
            recs.push(rec(i));
        }
        (buf, recs)
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trip_preserves_records() {
        let (buf, recs) = write_n(5);
        let out = read_journal(&buf.text()).unwrap();
        assert!(!out.torn);
        assert_eq!(out.records, recs);
    }

    #[test]
    fn torn_tail_is_dropped() {
        let (buf, recs) = write_n(3);
        let mut text = buf.text();
        // Simulate a crash mid-write of a 4th frame.
        text.push_str("{\"seq\":3,\"crc\":1,\"da");
        let out = read_journal(&text).unwrap();
        assert!(out.torn);
        assert_eq!(out.records, recs);
        // Also torn: a complete-looking final line with a bad checksum.
        let mut text2 = buf.text();
        text2.push_str("{\"seq\":3,\"crc\":1,\"data\":{}}\n");
        let out2 = read_journal(&text2).unwrap();
        assert!(out2.torn);
        assert_eq!(out2.records.len(), 3);
    }

    #[test]
    fn mid_file_corruption_is_an_error() {
        let (buf, _) = write_n(4);
        let text = buf.text();
        let mut lines: Vec<&str> = text.lines().collect();
        let bad = lines[1].replace("\"i\":1", "\"i\":7");
        lines[1] = &bad;
        let corrupted = lines.join("\n");
        let err = read_journal(&corrupted).unwrap_err();
        assert!(matches!(err, JournalError::Corrupt { line: 1, .. }), "{err}");
    }

    #[test]
    fn sequence_gaps_are_detected() {
        let (buf, _) = write_n(3);
        let text = buf.text();
        // Drop the middle line: seq 0 then seq 2.
        let lines: Vec<&str> = text.lines().collect();
        let gapped = format!("{}\n{}\n", lines[0], lines[2]);
        // The gap lands on the final line, so it reads as a torn tail...
        let out = read_journal(&gapped).unwrap();
        assert!(out.torn);
        assert_eq!(out.records.len(), 1);
        // ...but a gap before the tail is corruption.
        let gapped2 = format!("{}\n{}\n{}\n", lines[0], lines[2], lines[1]);
        assert!(matches!(
            read_journal(&gapped2),
            Err(JournalError::Corrupt { line: 1, .. })
        ));
    }

    #[test]
    fn empty_journal_reads_empty() {
        let out = read_journal("").unwrap();
        assert!(out.records.is_empty() && !out.torn);
    }

    #[test]
    fn resuming_writer_continues_sequence() {
        let (buf, _) = write_n(2);
        let mut w = JournalWriter::resuming(Box::new(buf.clone()), 2);
        w.append(&rec(2)).unwrap();
        let out = read_journal(&buf.text()).unwrap();
        assert_eq!(out.records.len(), 3);
        assert!(!out.torn);
    }
}
