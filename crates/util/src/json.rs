//! Minimal JSON value type, parser, and encoders (std-only
//! `serde`/`serde_json` replacement).
//!
//! [`Json`] covers the full JSON data model (objects, arrays, strings,
//! numbers, booleans, null). Objects preserve insertion order so
//! encoding is deterministic — a requirement for the golden-file
//! determinism tests. Conversion goes through two derive-free traits:
//!
//! ```
//! use capsys_util::json::{FromJson, Json, JsonError, ToJson};
//!
//! let v = Json::parse(r#"{"rate": 1500.0, "tags": ["a", "b"]}"#).unwrap();
//! let rate = f64::from_json(v.get("rate").unwrap()).unwrap();
//! assert_eq!(rate, 1500.0);
//! assert_eq!(v.to_string(), r#"{"rate":1500,"tags":["a","b"]}"#);
//! ```

use std::collections::HashMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers up to 2^53 are exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (deterministic encoding).
    Obj(Vec<(String, Json)>),
}

/// Error raised by JSON parsing or by [`FromJson`] conversions.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Byte offset in the input where the parser failed, if parsing.
    pub offset: Option<usize>,
}

impl JsonError {
    /// A conversion (non-parse) error.
    pub fn msg(message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: None,
        }
    }

    fn at(message: impl Into<String>, offset: usize) -> JsonError {
        JsonError {
            message: message.into(),
            offset: Some(offset),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(off) => write!(f, "{} at byte {off}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a JSON document. Rejects trailing garbage.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::at("trailing characters after value", p.pos));
        }
        Ok(v)
    }

    /// Member lookup on objects; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object members, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// True if the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Compact encoding (no whitespace). Also available via `Display`.
    #[allow(clippy::inherent_to_string_shadow_display)]
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty encoding with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d)
                })
            }
            Json::Obj(members) => {
                write_seq(out, indent, depth, '{', '}', members.len(), |out, i, d| {
                    write_string(out, &members[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    members[i].1.write(out, indent, d);
                })
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string())
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..width * (depth + 1) {
                out.push(' ');
            }
        }
        item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

/// Writes a finite `f64` in the shortest round-trip form, with whole
/// numbers rendered as integers (`1` not `1.0`). Non-finite values
/// (which JSON cannot represent) encode as `null`.
fn write_number(out: &mut String, n: f64) {
    use fmt::Write;
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        write!(out, "{}", n as i64).expect("write to String");
    } else {
        write!(out, "{n}").expect("write to String");
    }
}

fn write_string(out: &mut String, s: &str) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("write to String")
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::at(
                format!("expected `{}`", b as char),
                self.pos,
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::at(format!("expected `{word}`"), self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(b) => Err(JsonError::at(
                format!("unexpected character `{}`", b as char),
                self.pos,
            )),
            None => Err(JsonError::at("unexpected end of input", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::at("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(JsonError::at("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(JsonError::at("unterminated string", start)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| JsonError::at("unterminated escape", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000C}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(JsonError::at(
                                            "invalid low surrogate",
                                            start,
                                        ));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(JsonError::at("lone surrogate", start));
                                }
                            } else {
                                hi
                            };
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| JsonError::at("invalid codepoint", start))?,
                            );
                        }
                        other => {
                            return Err(JsonError::at(
                                format!("invalid escape `\\{}`", other as char),
                                start,
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Copy a run of plain UTF-8 bytes.
                    let mut end = self.pos;
                    while end < self.bytes.len()
                        && self.bytes[end] != b'"'
                        && self.bytes[end] != b'\\'
                    {
                        if self.bytes[end] < 0x20 {
                            return Err(JsonError::at("control character in string", end));
                        }
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[self.pos..end])
                        .map_err(|_| JsonError::at("invalid UTF-8", self.pos))?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(JsonError::at("truncated \\u escape", self.pos));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| JsonError::at("invalid \\u escape", self.pos))?;
        let v = u32::from_str_radix(hex, 16)
            .map_err(|_| JsonError::at("invalid \\u escape", self.pos))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Parser| {
            let from = p.pos;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            p.pos > from
        };
        if !digits(self) {
            return Err(JsonError::at("expected digits", self.pos));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(JsonError::at("expected fraction digits", self.pos));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(JsonError::at("expected exponent digits", self.pos));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError::at("number out of range", start))
    }
}

/// Types that can encode themselves as a [`Json`] value.
pub trait ToJson {
    /// Encodes `self`.
    fn to_json(&self) -> Json;
}

/// Types that can decode themselves from a [`Json`] value.
pub trait FromJson: Sized {
    /// Decodes from `value`, or explains why it cannot.
    fn from_json(value: &Json) -> Result<Self, JsonError>;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(value: &Json) -> Result<Json, JsonError> {
        Ok(value.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(value: &Json) -> Result<bool, JsonError> {
        value
            .as_bool()
            .ok_or_else(|| JsonError::msg("expected a boolean"))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for String {
    fn from_json(value: &Json) -> Result<String, JsonError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::msg("expected a string"))
    }
}

macro_rules! num_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
        impl FromJson for $t {
            fn from_json(value: &Json) -> Result<$t, JsonError> {
                let n = value
                    .as_f64()
                    .ok_or_else(|| JsonError::msg("expected a number"))?;
                let cast = n as $t;
                if (cast as f64 - n).abs() > 1e-9 {
                    return Err(JsonError::msg(format!(
                        "number {n} does not fit in {}",
                        stringify!($t)
                    )));
                }
                Ok(cast)
            }
        }
    )*};
}

num_json!(f64, f32, usize, u64, u32, i64, i32);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(value: &Json) -> Result<Option<T>, JsonError> {
        if value.is_null() {
            Ok(None)
        } else {
            T::from_json(value).map(Some)
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Json) -> Result<Vec<T>, JsonError> {
        value
            .as_array()
            .ok_or_else(|| JsonError::msg("expected an array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: FromJson, const N: usize> FromJson for [T; N] {
    fn from_json(value: &Json) -> Result<[T; N], JsonError> {
        let v = Vec::<T>::from_json(value)?;
        let len = v.len();
        v.try_into()
            .map_err(|_| JsonError::msg(format!("expected {N} elements, got {len}")))
    }
}

impl<T: ToJson> ToJson for HashMap<String, T> {
    fn to_json(&self) -> Json {
        // Sort keys so map encoding is deterministic.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Json::Obj(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].to_json()))
                .collect(),
        )
    }
}

impl<T: FromJson> FromJson for HashMap<String, T> {
    fn from_json(value: &Json) -> Result<HashMap<String, T>, JsonError> {
        value
            .as_object()
            .ok_or_else(|| JsonError::msg("expected an object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), T::from_json(v)?)))
            .collect()
    }
}

/// Builds a `Json::Obj` from `(key, value)` pairs; small helper for
/// hand-written [`ToJson`] impls.
pub fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Fetches a required object member and decodes it.
pub fn req<T: FromJson>(value: &Json, key: &str) -> Result<T, JsonError> {
    let member = value
        .get(key)
        .ok_or_else(|| JsonError::msg(format!("missing required field `{key}`")))?;
    T::from_json(member).map_err(|e| JsonError::msg(format!("field `{key}`: {}", e.message)))
}

/// Fetches an optional object member, with a default when absent or null.
pub fn opt<T: FromJson>(value: &Json, key: &str, default: T) -> Result<T, JsonError> {
    match value.get(key) {
        None => Ok(default),
        Some(Json::Null) => Ok(default),
        Some(v) => {
            T::from_json(v).map_err(|e| JsonError::msg(format!("field `{key}`: {}", e.message)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_value_kinds() {
        let v = Json::parse(
            r#"{"a": [1, -2.5, 1e3], "b": "x\ny\u0041", "c": true, "d": null, "e": {}}"#,
        )
        .unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[2].as_f64(), Some(1000.0));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\nyA"));
        assert_eq!(v.get("c").unwrap().as_bool(), Some(true));
        assert!(v.get("d").unwrap().is_null());
        assert_eq!(v.get("e").unwrap().as_object().unwrap().len(), 0);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "{", "[1,", "\"abc", "{\"a\":}", "01e", "tru", "{\"a\":1,}", "[1] x",
            "{\"a\" 1}", "\"\\q\"", "nan",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn round_trips_compact_encoding() {
        let text = r#"{"name":"q1","rate":1234.5,"ids":[1,2,3],"ok":true,"none":null}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.to_string(), text);
        // Parse(encode(v)) is identity.
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn pretty_encoding_is_parseable_and_indented() {
        let v = Json::parse(r#"{"a":[1,2],"b":{"c":"d"}}"#).unwrap();
        let pretty = v.to_pretty();
        assert!(pretty.contains("\n  \"a\": [\n    1,"));
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn numbers_encode_like_serde_json() {
        let cases = [
            (1.0, "1"),
            (-3.0, "-3"),
            (2.5, "2.5"),
            (1e-5, "0.00001"),
            (0.0, "0"),
        ];
        for (n, want) in cases {
            assert_eq!(Json::Num(n).to_string(), want);
        }
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line1\nline2\t\"quoted\" \\ \u{1F600} \u{0007}";
        let encoded = Json::Str(original.to_string()).to_string();
        assert_eq!(
            Json::parse(&encoded).unwrap().as_str().unwrap(),
            original
        );
        // Surrogate-pair escapes decode too.
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap().as_str().unwrap(),
            "\u{1F600}"
        );
    }

    #[test]
    fn trait_conversions_work() {
        let v: Vec<f64> = vec![1.0, 2.0];
        assert_eq!(v.to_json().to_string(), "[1,2]");
        let back = Vec::<f64>::from_json(&Json::parse("[1,2]").unwrap()).unwrap();
        assert_eq!(back, v);
        let arr = <[f64; 3]>::from_json(&Json::parse("[1,2,3]").unwrap()).unwrap();
        assert_eq!(arr, [1.0, 2.0, 3.0]);
        assert!(<[f64; 3]>::from_json(&Json::parse("[1,2]").unwrap()).is_err());
        assert_eq!(Option::<f64>::from_json(&Json::Null).unwrap(), None);
        assert!(usize::from_json(&Json::Num(1.5)).is_err());
        assert_eq!(u64::from_json(&Json::Num(7.0)).unwrap(), 7);
    }

    #[test]
    fn helpers_report_field_context() {
        let v = Json::parse(r#"{"workers": "four"}"#).unwrap();
        let err = req::<usize>(&v, "workers").unwrap_err();
        assert!(err.message.contains("workers"));
        let err = req::<usize>(&v, "slots").unwrap_err();
        assert!(err.message.contains("slots"));
        assert_eq!(opt(&v, "slots", 4usize).unwrap(), 4);
    }

    #[test]
    fn hashmap_encoding_is_sorted() {
        let mut m = HashMap::new();
        m.insert("zeta".to_string(), 1.0);
        m.insert("alpha".to_string(), 2.0);
        assert_eq!(m.to_json().to_string(), r#"{"alpha":2,"zeta":1}"#);
    }
}
