//! MPMC work queue for the parallel search (std-only
//! `crossbeam::deque::Injector` replacement).
//!
//! The parallel CAPS search publishes prefix work units into one shared
//! queue; worker threads pull the next unit when they finish their
//! current one. The access pattern is "push a batch up front, then many
//! consumers drain", so a mutex-protected ring buffer is fully adequate
//! — contention is one uncontended lock acquisition per work unit,
//! which is nanoseconds next to the milliseconds each unit takes to
//! explore.
//!
//! The API mirrors the `Injector`/`Steal` surface so call sites read
//! the same as with crossbeam.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Outcome of a [`Injector::steal`] attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// A work unit was taken.
    Success(T),
    /// The queue is empty.
    Empty,
    /// Transient interference; retry. (Never produced by this
    /// implementation, kept so call sites match crossbeam's contract.)
    Retry,
}

impl<T> Steal<T> {
    /// Converts to `Option`, mapping both `Empty` and `Retry` to `None`.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(v) => Some(v),
            _ => None,
        }
    }
}

/// An MPMC FIFO work queue shared by reference among threads.
#[derive(Debug, Default)]
pub struct Injector<T> {
    items: Mutex<VecDeque<T>>,
}

impl<T> Injector<T> {
    /// Creates an empty queue.
    pub fn new() -> Injector<T> {
        Injector {
            items: Mutex::new(VecDeque::new()),
        }
    }

    /// Pushes one work unit to the back.
    pub fn push(&self, item: T) {
        self.items
            .lock()
            .expect("injector lock poisoned")
            .push_back(item);
    }

    /// Attempts to take one work unit from the front.
    pub fn steal(&self) -> Steal<T> {
        match self
            .items
            .lock()
            .expect("injector lock poisoned")
            .pop_front()
        {
            Some(v) => Steal::Success(v),
            None => Steal::Empty,
        }
    }

    /// True if no work units are queued right now.
    pub fn is_empty(&self) -> bool {
        self.items.lock().expect("injector lock poisoned").is_empty()
    }

    /// Number of queued work units.
    pub fn len(&self) -> usize {
        self.items.lock().expect("injector lock poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_single_thread() {
        let q = Injector::new();
        assert!(q.is_empty());
        for i in 0..5 {
            q.push(i);
        }
        assert_eq!(q.len(), 5);
        for i in 0..5 {
            assert_eq!(q.steal(), Steal::Success(i));
        }
        assert_eq!(q.steal(), Steal::<i32>::Empty);
    }

    #[test]
    fn drains_exactly_once_across_threads() {
        let q = Injector::new();
        const N: usize = 10_000;
        for i in 0..N {
            q.push(i);
        }
        let sum = AtomicUsize::new(0);
        let count = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    while let Steal::Success(v) = q.steal() {
                        sum.fetch_add(v, Ordering::Relaxed);
                        count.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), N);
        assert_eq!(sum.load(Ordering::Relaxed), N * (N - 1) / 2);
        assert!(q.is_empty());
    }

    #[test]
    fn concurrent_producers_and_consumers() {
        let q = Injector::new();
        let consumed = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let q = &q;
                scope.spawn(move || {
                    for i in 0..1000 {
                        q.push(t * 1000 + i);
                    }
                });
            }
            for _ in 0..4 {
                let q = &q;
                let consumed = &consumed;
                scope.spawn(move || loop {
                    match q.steal() {
                        Steal::Success(_) => {
                            consumed.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {
                            if consumed.load(Ordering::Relaxed) == 4000 {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        assert_eq!(consumed.load(Ordering::Relaxed), 4000);
    }
}
