//! Mini property-based testing harness (std-only `proptest`
//! replacement).
//!
//! A property is an ordinary closure over a generated input; failures
//! (panics or `assert!`s inside the closure) are caught, the input is
//! shrunk toward a minimal counterexample, and the failing case seed is
//! printed so the exact case replays with
//! `CAPSYS_PROP_SEED=<seed> cargo test`.
//!
//! ```
//! use capsys_util::forall;
//! use capsys_util::prop::{ints, vec_of, Config};
//!
//! forall!(Config::default().cases(64), (
//!     xs in vec_of(ints(0usize..100), 1..=8),
//! ) => {
//!     let total: usize = xs.iter().sum();
//!     assert!(total <= 100 * xs.len());
//! });
//! ```
//!
//! Strategies compose as tuples: `(a in s1, b in s2)` draws both from
//! the same case seed. Integer strategies shrink toward their lower
//! bound by binary halving; vector strategies shrink by dropping
//! chunks, then elements, then shrinking surviving elements.

use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

use crate::rng::{Rng, SeedableRng, SmallRng};

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases (overridden by `CAPSYS_PROP_CASES`).
    pub cases: usize,
    /// Base seed for case-seed derivation.
    pub seed: u64,
    /// Maximum number of shrink candidates to evaluate after a failure.
    pub max_shrink_steps: usize,
}

impl Default for Config {
    fn default() -> Config {
        let cases = std::env::var("CAPSYS_PROP_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(32);
        Config {
            cases,
            seed: 0xCA95_0001,
            max_shrink_steps: 512,
        }
    }
}

impl Config {
    /// Sets the case count (unless `CAPSYS_PROP_CASES` overrides it).
    pub fn cases(mut self, cases: usize) -> Config {
        if std::env::var("CAPSYS_PROP_CASES").is_err() {
            self.cases = cases;
        }
        self
    }

    /// Sets the base seed.
    pub fn seed(mut self, seed: u64) -> Config {
        self.seed = seed;
        self
    }
}

/// A generator of random test inputs with optional shrinking.
pub trait Strategy {
    /// The generated input type.
    type Value: Clone + Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Proposes strictly "smaller" variants of a failing value, most
    /// aggressive first. Default: no shrinking.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

/// Uniform integers in a range, shrinking toward the lower bound.
pub struct IntStrategy<T> {
    lo: T,
    hi_inclusive: T,
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for IntStrategy<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.lo..=self.hi_inclusive)
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let mut out = Vec::new();
                let mut v = *value;
                // Halve the distance to the lower bound repeatedly
                // (aggressive), then step down by one (fine-grained) so
                // the greedy shrink loop can land exactly on the
                // boundary a halving chain jumps over.
                while v > self.lo {
                    let next = self.lo + (v - self.lo) / 2;
                    out.push(next);
                    if next == self.lo {
                        break;
                    }
                    v = next;
                }
                if *value > self.lo {
                    out.push(*value - 1);
                }
                out
            }
        }

        impl From<std::ops::Range<$t>> for IntStrategy<$t> {
            fn from(r: std::ops::Range<$t>) -> Self {
                assert!(r.start < r.end, "ints: empty range");
                IntStrategy { lo: r.start, hi_inclusive: r.end - 1 }
            }
        }

        impl From<std::ops::RangeInclusive<$t>> for IntStrategy<$t> {
            fn from(r: std::ops::RangeInclusive<$t>) -> Self {
                assert!(r.start() <= r.end(), "ints: empty range");
                IntStrategy { lo: *r.start(), hi_inclusive: *r.end() }
            }
        }
    )*};
}

int_strategy!(usize, u64, u32, i64, i32);

/// Integers drawn uniformly from `range` (`a..b` or `a..=b`),
/// shrinking toward the lower bound.
pub fn ints<T, R: Into<IntStrategy<T>>>(range: R) -> IntStrategy<T> {
    range.into()
}

/// Uniform floats in `[lo, hi)`, shrinking toward the lower bound.
pub struct FloatStrategy {
    lo: f64,
    hi: f64,
}

impl Strategy for FloatStrategy {
    type Value = f64;

    fn generate(&self, rng: &mut SmallRng) -> f64 {
        rng.gen_range(self.lo..self.hi)
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        let mut out = Vec::new();
        let mut v = *value;
        for _ in 0..8 {
            let next = self.lo + (v - self.lo) / 2.0;
            if (next - self.lo).abs() < 1e-12 || next == v {
                break;
            }
            out.push(next);
            v = next;
        }
        out
    }
}

/// Floats drawn uniformly from `[lo, hi)`.
pub fn floats(range: std::ops::Range<f64>) -> FloatStrategy {
    assert!(range.start < range.end, "floats: empty range");
    FloatStrategy {
        lo: range.start,
        hi: range.end,
    }
}

/// Vectors of values from an element strategy, with length in a range.
pub struct VecStrategy<S> {
    element: S,
    min_len: usize,
    max_len: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.min_len..=self.max_len);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        // 1. Drop the back half, then single elements (keeping >= min_len).
        if value.len() > self.min_len {
            let half = (value.len() + self.min_len).div_ceil(2);
            if half < value.len() {
                out.push(value[..half].to_vec());
            }
            for i in (0..value.len()).rev() {
                if value.len() - 1 >= self.min_len {
                    let mut smaller = value.clone();
                    smaller.remove(i);
                    out.push(smaller);
                }
            }
        }
        // 2. Shrink individual elements, first shrink candidate each.
        for (i, v) in value.iter().enumerate() {
            if let Some(sv) = self.element.shrink(v).into_iter().next() {
                let mut smaller = value.clone();
                smaller[i] = sv;
                out.push(smaller);
            }
        }
        out
    }
}

/// `Vec`s with elements from `element` and length in `len` (`a..=b`).
pub fn vec_of<S: Strategy>(element: S, len: impl Into<IntStrategy<usize>>) -> VecStrategy<S> {
    let len = len.into();
    VecStrategy {
        element,
        min_len: len.lo,
        max_len: len.hi_inclusive,
    }
}

/// A strategy from a plain generation function; no shrinking.
pub struct FnStrategy<F>(F);

impl<V: Clone + Debug, F: Fn(&mut SmallRng) -> V> Strategy for FnStrategy<F> {
    type Value = V;

    fn generate(&self, rng: &mut SmallRng) -> V {
        (self.0)(rng)
    }
}

/// Wraps a closure `Fn(&mut SmallRng) -> V` as a strategy.
pub fn from_fn<V: Clone + Debug, F: Fn(&mut SmallRng) -> V>(f: F) -> FnStrategy<F> {
    FnStrategy(f)
}

/// Exactly one constant value.
pub struct JustStrategy<V>(V);

impl<V: Clone + Debug> Strategy for JustStrategy<V> {
    type Value = V;

    fn generate(&self, _rng: &mut SmallRng) -> V {
        self.0.clone()
    }
}

/// A strategy producing only `value`.
pub fn just<V: Clone + Debug>(value: V) -> JustStrategy<V> {
    JustStrategy(value)
}

macro_rules! tuple_strategy {
    ($($S:ident/$v:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for shrunk in self.$idx.shrink(&value.$idx) {
                        let mut candidate = value.clone();
                        candidate.$idx = shrunk;
                        out.push(candidate);
                    }
                )+
                out
            }
        }
    };
}

tuple_strategy!(S0/v0/0);
tuple_strategy!(S0/v0/0, S1/v1/1);
tuple_strategy!(S0/v0/0, S1/v1/1, S2/v2/2);
tuple_strategy!(S0/v0/0, S1/v1/1, S2/v2/2, S3/v3/3);
tuple_strategy!(S0/v0/0, S1/v1/1, S2/v2/2, S3/v3/3, S4/v4/4);
tuple_strategy!(S0/v0/0, S1/v1/1, S2/v2/2, S3/v3/3, S4/v4/4, S5/v5/5);
tuple_strategy!(S0/v0/0, S1/v1/1, S2/v2/2, S3/v3/3, S4/v4/4, S5/v5/5, S6/v6/6);

thread_local! {
    static SUPPRESS_PANIC_OUTPUT: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

static INSTALL_HOOK: Once = Once::new();

/// Installs (once) a panic hook that stays silent while the harness is
/// intentionally panicking properties during generation and shrinking.
fn install_quiet_hook() {
    INSTALL_HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SUPPRESS_PANIC_OUTPUT.with(|s| s.get()) {
                previous(info);
            }
        }));
    });
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs `test` on one value, capturing a panic as `Err(message)`.
fn run_case<V>(test: &impl Fn(&V), value: &V) -> Result<(), String> {
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(true));
    let outcome = catch_unwind(AssertUnwindSafe(|| test(value)));
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(false));
    outcome.map_err(panic_message)
}

/// Runs `test` against `config.cases` generated inputs. On failure,
/// shrinks the input and panics with the failing seed and the minimal
/// counterexample found.
///
/// Set `CAPSYS_PROP_SEED=<hex-or-dec seed>` to replay exactly one
/// failing case printed by an earlier run.
pub fn forall<S: Strategy>(name: &str, config: Config, strategy: S, test: impl Fn(&S::Value)) {
    install_quiet_hook();

    let replay = std::env::var("CAPSYS_PROP_SEED").ok().map(|v| {
        let v = v.trim().trim_start_matches("0x");
        u64::from_str_radix(v, 16)
            .or_else(|_| v.parse())
            .expect("CAPSYS_PROP_SEED must be a hex or decimal u64")
    });

    let case_seeds: Vec<u64> = match replay {
        Some(seed) => vec![seed],
        None => {
            let mut state = config.seed;
            (0..config.cases)
                .map(|_| crate::rng::splitmix64(&mut state))
                .collect()
        }
    };

    for (case_idx, &case_seed) in case_seeds.iter().enumerate() {
        let mut rng = SmallRng::seed_from_u64(case_seed);
        let value = strategy.generate(&mut rng);
        let Err(original_failure) = run_case(&test, &value) else {
            continue;
        };

        // Shrink: greedily accept any failing candidate, restarting the
        // candidate scan from the smaller value.
        let mut minimal = value;
        let mut failure = original_failure;
        let mut budget = config.max_shrink_steps;
        'shrinking: while budget > 0 {
            for candidate in strategy.shrink(&minimal) {
                budget -= 1;
                if let Err(msg) = run_case(&test, &candidate) {
                    minimal = candidate;
                    failure = msg;
                    continue 'shrinking;
                }
                if budget == 0 {
                    break;
                }
            }
            break;
        }

        panic!(
            "property `{name}` failed (case {} of {})\n\
             \x20 failing seed: {case_seed:#018x}  \
             (replay: CAPSYS_PROP_SEED={case_seed:#x} cargo test {name})\n\
             \x20 minimal input: {minimal:?}\n\
             \x20 failure: {failure}",
            case_idx + 1,
            case_seeds.len(),
        );
    }
}

/// Property-test entry macro.
///
/// ```ignore
/// forall!(Config::default(), (x in ints(0..10), ys in vec_of(floats(0.0..1.0), 1..=4)) => {
///     assert!(ys.len() <= 4 && x < 10);
/// });
/// ```
#[macro_export]
macro_rules! forall {
    ($config:expr, ($($name:ident in $strategy:expr),+ $(,)?) => $body:block) => {
        $crate::prop::forall(
            concat!(module_path!(), "::", line!()),
            $config,
            ($($strategy,)+),
            |&($(ref $name,)+)| $body,
        )
    };
}

// Allow `use capsys_util::prop::forall_macro as forall` style imports via
// the crate root; the macro itself is exported at the root by
// `#[macro_export]`.

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let counter = std::cell::Cell::new(0usize);
        forall(
            "sum-bound",
            Config::default().cases(40),
            (ints(0usize..50), vec_of(ints(1usize..=5), 0..=6)),
            |&(x, ref v)| {
                counter.set(counter.get() + 1);
                assert!(x < 50);
                assert!(v.iter().all(|&e| (1..=5).contains(&e)));
            },
        );
        assert_eq!(counter.get(), 40);
    }

    #[test]
    fn failing_property_reports_seed_and_shrinks() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            forall(
                "gt-17-fails",
                Config::default().cases(64),
                (ints(0usize..1000),),
                |&(x,)| assert!(x < 17, "x was {x}"),
            );
        }));
        let msg = panic_message(result.unwrap_err().into());
        assert!(msg.contains("failing seed"), "no seed in: {msg}");
        assert!(msg.contains("CAPSYS_PROP_SEED="), "no replay hint: {msg}");
        // Shrinking must land on the minimal counterexample, 17.
        assert!(msg.contains("minimal input: (17,)"), "bad shrink: {msg}");
    }

    #[test]
    fn vec_shrinking_minimizes_length() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            forall(
                "short-vecs-fail",
                Config::default().cases(64),
                (vec_of(ints(0usize..10), 0..=20),),
                |&(ref v,)| assert!(v.len() < 3),
            );
        }));
        let msg = panic_message(result.unwrap_err().into());
        // Minimal failing vector has exactly 3 elements, each shrunk to 0.
        assert!(
            msg.contains("minimal input: ([0, 0, 0],)"),
            "bad shrink: {msg}"
        );
    }

    #[test]
    fn forall_macro_compiles_and_runs() {
        forall!(Config::default().cases(8), (
            n in ints(1usize..=4),
            scale in floats(0.5..2.0),
        ) => {
            assert!(*n >= 1 && *scale > 0.0);
        });
    }

    #[test]
    fn cases_are_deterministic_for_fixed_seed() {
        let collect = |seed: u64| {
            let mut values = Vec::new();
            let mut state = seed;
            for _ in 0..10 {
                let mut rng = SmallRng::seed_from_u64(crate::rng::splitmix64(&mut state));
                values.push(ints(0u64..1_000_000).generate(&mut rng));
            }
            values
        };
        assert_eq!(collect(1), collect(1));
        assert_ne!(collect(1), collect(2));
    }
}
