/root/repo/target/debug/deps/exp_table2-2a96ef9309b1ed83.d: crates/bench/src/bin/exp_table2.rs

/root/repo/target/debug/deps/exp_table2-2a96ef9309b1ed83: crates/bench/src/bin/exp_table2.rs

crates/bench/src/bin/exp_table2.rs:
