/root/repo/target/debug/deps/run_all-7a8dd697d56bb4c9.d: crates/bench/src/bin/run_all.rs

/root/repo/target/debug/deps/run_all-7a8dd697d56bb4c9: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
