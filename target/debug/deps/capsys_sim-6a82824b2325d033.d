/root/repo/target/debug/deps/capsys_sim-6a82824b2325d033.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/metrics.rs

/root/repo/target/debug/deps/libcapsys_sim-6a82824b2325d033.rlib: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/metrics.rs

/root/repo/target/debug/deps/libcapsys_sim-6a82824b2325d033.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/metrics.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/metrics.rs:
