/root/repo/target/debug/deps/capsys_queries-8367c6a9a4c34ca8.d: crates/queries/src/lib.rs

/root/repo/target/debug/deps/capsys_queries-8367c6a9a4c34ca8: crates/queries/src/lib.rs

crates/queries/src/lib.rs:
