/root/repo/target/debug/deps/capsys_util-8b808165d6b43526.d: crates/util/src/lib.rs crates/util/src/bench.rs crates/util/src/json.rs crates/util/src/prop.rs crates/util/src/queue.rs crates/util/src/rng.rs crates/util/src/sync.rs

/root/repo/target/debug/deps/libcapsys_util-8b808165d6b43526.rlib: crates/util/src/lib.rs crates/util/src/bench.rs crates/util/src/json.rs crates/util/src/prop.rs crates/util/src/queue.rs crates/util/src/rng.rs crates/util/src/sync.rs

/root/repo/target/debug/deps/libcapsys_util-8b808165d6b43526.rmeta: crates/util/src/lib.rs crates/util/src/bench.rs crates/util/src/json.rs crates/util/src/prop.rs crates/util/src/queue.rs crates/util/src/rng.rs crates/util/src/sync.rs

crates/util/src/lib.rs:
crates/util/src/bench.rs:
crates/util/src/json.rs:
crates/util/src/prop.rs:
crates/util/src/queue.rs:
crates/util/src/rng.rs:
crates/util/src/sync.rs:
