/root/repo/target/debug/deps/exp_fig3-1d475e965b6d2719.d: crates/bench/src/bin/exp_fig3.rs

/root/repo/target/debug/deps/exp_fig3-1d475e965b6d2719: crates/bench/src/bin/exp_fig3.rs

crates/bench/src/bin/exp_fig3.rs:
