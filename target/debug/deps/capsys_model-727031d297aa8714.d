/root/repo/target/debug/deps/capsys_model-727031d297aa8714.d: crates/model/src/lib.rs crates/model/src/cluster.rs crates/model/src/enumerate.rs crates/model/src/error.rs crates/model/src/json.rs crates/model/src/load.rs crates/model/src/logical.rs crates/model/src/operator.rs crates/model/src/physical.rs crates/model/src/placement.rs crates/model/src/rates.rs crates/model/src/skew.rs

/root/repo/target/debug/deps/libcapsys_model-727031d297aa8714.rlib: crates/model/src/lib.rs crates/model/src/cluster.rs crates/model/src/enumerate.rs crates/model/src/error.rs crates/model/src/json.rs crates/model/src/load.rs crates/model/src/logical.rs crates/model/src/operator.rs crates/model/src/physical.rs crates/model/src/placement.rs crates/model/src/rates.rs crates/model/src/skew.rs

/root/repo/target/debug/deps/libcapsys_model-727031d297aa8714.rmeta: crates/model/src/lib.rs crates/model/src/cluster.rs crates/model/src/enumerate.rs crates/model/src/error.rs crates/model/src/json.rs crates/model/src/load.rs crates/model/src/logical.rs crates/model/src/operator.rs crates/model/src/physical.rs crates/model/src/placement.rs crates/model/src/rates.rs crates/model/src/skew.rs

crates/model/src/lib.rs:
crates/model/src/cluster.rs:
crates/model/src/enumerate.rs:
crates/model/src/error.rs:
crates/model/src/json.rs:
crates/model/src/load.rs:
crates/model/src/logical.rs:
crates/model/src/operator.rs:
crates/model/src/physical.rs:
crates/model/src/placement.rs:
crates/model/src/rates.rs:
crates/model/src/skew.rs:
