/root/repo/target/debug/deps/exp_fig10a-5332ecd66db2fd3d.d: crates/bench/src/bin/exp_fig10a.rs

/root/repo/target/debug/deps/exp_fig10a-5332ecd66db2fd3d: crates/bench/src/bin/exp_fig10a.rs

crates/bench/src/bin/exp_fig10a.rs:
