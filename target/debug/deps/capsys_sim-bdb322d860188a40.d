/root/repo/target/debug/deps/capsys_sim-bdb322d860188a40.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/metrics.rs

/root/repo/target/debug/deps/capsys_sim-bdb322d860188a40: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/metrics.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/metrics.rs:
