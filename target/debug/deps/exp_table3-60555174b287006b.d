/root/repo/target/debug/deps/exp_table3-60555174b287006b.d: crates/bench/src/bin/exp_table3.rs

/root/repo/target/debug/deps/exp_table3-60555174b287006b: crates/bench/src/bin/exp_table3.rs

crates/bench/src/bin/exp_table3.rs:
