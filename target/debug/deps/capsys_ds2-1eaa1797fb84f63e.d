/root/repo/target/debug/deps/capsys_ds2-1eaa1797fb84f63e.d: crates/ds2/src/lib.rs

/root/repo/target/debug/deps/capsys_ds2-1eaa1797fb84f63e: crates/ds2/src/lib.rs

crates/ds2/src/lib.rs:
