/root/repo/target/debug/deps/integration_plan_space-0cce32dff2fd82ed.d: tests/integration_plan_space.rs

/root/repo/target/debug/deps/integration_plan_space-0cce32dff2fd82ed: tests/integration_plan_space.rs

tests/integration_plan_space.rs:
