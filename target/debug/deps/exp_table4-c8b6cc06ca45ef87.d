/root/repo/target/debug/deps/exp_table4-c8b6cc06ca45ef87.d: crates/bench/src/bin/exp_table4.rs

/root/repo/target/debug/deps/exp_table4-c8b6cc06ca45ef87: crates/bench/src/bin/exp_table4.rs

crates/bench/src/bin/exp_table4.rs:
