/root/repo/target/debug/deps/golden_determinism-f3740434f57b5470.d: tests/golden_determinism.rs tests/golden/q1_spec.json tests/golden/q1_caps_plan.json

/root/repo/target/debug/deps/golden_determinism-f3740434f57b5470: tests/golden_determinism.rs tests/golden/q1_spec.json tests/golden/q1_caps_plan.json

tests/golden_determinism.rs:
tests/golden/q1_spec.json:
tests/golden/q1_caps_plan.json:
