/root/repo/target/debug/deps/exp_fig5-ffd1914de8b6bdec.d: crates/bench/src/bin/exp_fig5.rs

/root/repo/target/debug/deps/exp_fig5-ffd1914de8b6bdec: crates/bench/src/bin/exp_fig5.rs

crates/bench/src/bin/exp_fig5.rs:
