/root/repo/target/debug/deps/exp_fig2-2eeff7bcf03d2ddb.d: crates/bench/src/bin/exp_fig2.rs

/root/repo/target/debug/deps/exp_fig2-2eeff7bcf03d2ddb: crates/bench/src/bin/exp_fig2.rs

crates/bench/src/bin/exp_fig2.rs:
