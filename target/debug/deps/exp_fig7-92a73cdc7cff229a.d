/root/repo/target/debug/deps/exp_fig7-92a73cdc7cff229a.d: crates/bench/src/bin/exp_fig7.rs

/root/repo/target/debug/deps/exp_fig7-92a73cdc7cff229a: crates/bench/src/bin/exp_fig7.rs

crates/bench/src/bin/exp_fig7.rs:
