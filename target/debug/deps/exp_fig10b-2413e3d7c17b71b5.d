/root/repo/target/debug/deps/exp_fig10b-2413e3d7c17b71b5.d: crates/bench/src/bin/exp_fig10b.rs

/root/repo/target/debug/deps/exp_fig10b-2413e3d7c17b71b5: crates/bench/src/bin/exp_fig10b.rs

crates/bench/src/bin/exp_fig10b.rs:
