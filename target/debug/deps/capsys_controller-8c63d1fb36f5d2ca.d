/root/repo/target/debug/deps/capsys_controller-8c63d1fb36f5d2ca.d: crates/controller/src/lib.rs crates/controller/src/closed_loop.rs crates/controller/src/controller.rs crates/controller/src/online.rs crates/controller/src/profiler.rs

/root/repo/target/debug/deps/libcapsys_controller-8c63d1fb36f5d2ca.rlib: crates/controller/src/lib.rs crates/controller/src/closed_loop.rs crates/controller/src/controller.rs crates/controller/src/online.rs crates/controller/src/profiler.rs

/root/repo/target/debug/deps/libcapsys_controller-8c63d1fb36f5d2ca.rmeta: crates/controller/src/lib.rs crates/controller/src/closed_loop.rs crates/controller/src/controller.rs crates/controller/src/online.rs crates/controller/src/profiler.rs

crates/controller/src/lib.rs:
crates/controller/src/closed_loop.rs:
crates/controller/src/controller.rs:
crates/controller/src/online.rs:
crates/controller/src/profiler.rs:
