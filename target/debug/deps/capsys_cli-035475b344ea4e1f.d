/root/repo/target/debug/deps/capsys_cli-035475b344ea4e1f.d: src/bin/capsys-cli.rs

/root/repo/target/debug/deps/capsys_cli-035475b344ea4e1f: src/bin/capsys-cli.rs

src/bin/capsys-cli.rs:
