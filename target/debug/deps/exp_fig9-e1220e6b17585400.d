/root/repo/target/debug/deps/exp_fig9-e1220e6b17585400.d: crates/bench/src/bin/exp_fig9.rs

/root/repo/target/debug/deps/exp_fig9-e1220e6b17585400: crates/bench/src/bin/exp_fig9.rs

crates/bench/src/bin/exp_fig9.rs:
