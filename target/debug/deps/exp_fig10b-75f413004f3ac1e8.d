/root/repo/target/debug/deps/exp_fig10b-75f413004f3ac1e8.d: crates/bench/src/bin/exp_fig10b.rs

/root/repo/target/debug/deps/exp_fig10b-75f413004f3ac1e8: crates/bench/src/bin/exp_fig10b.rs

crates/bench/src/bin/exp_fig10b.rs:
