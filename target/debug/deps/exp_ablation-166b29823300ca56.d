/root/repo/target/debug/deps/exp_ablation-166b29823300ca56.d: crates/bench/src/bin/exp_ablation.rs

/root/repo/target/debug/deps/exp_ablation-166b29823300ca56: crates/bench/src/bin/exp_ablation.rs

crates/bench/src/bin/exp_ablation.rs:
