/root/repo/target/debug/deps/capsys_odrp-aa281231b980401d.d: crates/odrp/src/lib.rs crates/odrp/src/config.rs crates/odrp/src/objective.rs crates/odrp/src/solver.rs

/root/repo/target/debug/deps/libcapsys_odrp-aa281231b980401d.rlib: crates/odrp/src/lib.rs crates/odrp/src/config.rs crates/odrp/src/objective.rs crates/odrp/src/solver.rs

/root/repo/target/debug/deps/libcapsys_odrp-aa281231b980401d.rmeta: crates/odrp/src/lib.rs crates/odrp/src/config.rs crates/odrp/src/objective.rs crates/odrp/src/solver.rs

crates/odrp/src/lib.rs:
crates/odrp/src/config.rs:
crates/odrp/src/objective.rs:
crates/odrp/src/solver.rs:
