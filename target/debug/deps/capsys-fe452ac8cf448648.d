/root/repo/target/debug/deps/capsys-fe452ac8cf448648.d: src/lib.rs src/spec.rs

/root/repo/target/debug/deps/libcapsys-fe452ac8cf448648.rlib: src/lib.rs src/spec.rs

/root/repo/target/debug/deps/libcapsys-fe452ac8cf448648.rmeta: src/lib.rs src/spec.rs

src/lib.rs:
src/spec.rs:
