/root/repo/target/debug/deps/exp_fig8-74fa39479f777a44.d: crates/bench/src/bin/exp_fig8.rs

/root/repo/target/debug/deps/exp_fig8-74fa39479f777a44: crates/bench/src/bin/exp_fig8.rs

crates/bench/src/bin/exp_fig8.rs:
