/root/repo/target/debug/deps/integration_failure-9899d8c371cbf352.d: tests/integration_failure.rs

/root/repo/target/debug/deps/integration_failure-9899d8c371cbf352: tests/integration_failure.rs

tests/integration_failure.rs:
