/root/repo/target/debug/deps/exp_table4-27ce55fd829cefbd.d: crates/bench/src/bin/exp_table4.rs

/root/repo/target/debug/deps/exp_table4-27ce55fd829cefbd: crates/bench/src/bin/exp_table4.rs

crates/bench/src/bin/exp_table4.rs:
