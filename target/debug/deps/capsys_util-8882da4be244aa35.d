/root/repo/target/debug/deps/capsys_util-8882da4be244aa35.d: crates/util/src/lib.rs crates/util/src/bench.rs crates/util/src/json.rs crates/util/src/prop.rs crates/util/src/queue.rs crates/util/src/rng.rs crates/util/src/sync.rs

/root/repo/target/debug/deps/capsys_util-8882da4be244aa35: crates/util/src/lib.rs crates/util/src/bench.rs crates/util/src/json.rs crates/util/src/prop.rs crates/util/src/queue.rs crates/util/src/rng.rs crates/util/src/sync.rs

crates/util/src/lib.rs:
crates/util/src/bench.rs:
crates/util/src/json.rs:
crates/util/src/prop.rs:
crates/util/src/queue.rs:
crates/util/src/rng.rs:
crates/util/src/sync.rs:
