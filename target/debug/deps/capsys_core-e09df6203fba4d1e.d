/root/repo/target/debug/deps/capsys_core-e09df6203fba4d1e.d: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/cost.rs crates/core/src/error.rs crates/core/src/parallel.rs crates/core/src/pareto.rs crates/core/src/partitioned.rs crates/core/src/search.rs

/root/repo/target/debug/deps/capsys_core-e09df6203fba4d1e: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/cost.rs crates/core/src/error.rs crates/core/src/parallel.rs crates/core/src/pareto.rs crates/core/src/partitioned.rs crates/core/src/search.rs

crates/core/src/lib.rs:
crates/core/src/autotune.rs:
crates/core/src/cost.rs:
crates/core/src/error.rs:
crates/core/src/parallel.rs:
crates/core/src/pareto.rs:
crates/core/src/partitioned.rs:
crates/core/src/search.rs:
