/root/repo/target/debug/deps/capsys_placement-46c4e15fee0ee905.d: crates/placement/src/lib.rs

/root/repo/target/debug/deps/capsys_placement-46c4e15fee0ee905: crates/placement/src/lib.rs

crates/placement/src/lib.rs:
