/root/repo/target/debug/deps/exp_fig3-93ab61f44955e8b4.d: crates/bench/src/bin/exp_fig3.rs

/root/repo/target/debug/deps/exp_fig3-93ab61f44955e8b4: crates/bench/src/bin/exp_fig3.rs

crates/bench/src/bin/exp_fig3.rs:
