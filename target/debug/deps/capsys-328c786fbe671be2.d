/root/repo/target/debug/deps/capsys-328c786fbe671be2.d: src/lib.rs src/spec.rs

/root/repo/target/debug/deps/capsys-328c786fbe671be2: src/lib.rs src/spec.rs

src/lib.rs:
src/spec.rs:
