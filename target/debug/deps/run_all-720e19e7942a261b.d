/root/repo/target/debug/deps/run_all-720e19e7942a261b.d: crates/bench/src/bin/run_all.rs

/root/repo/target/debug/deps/run_all-720e19e7942a261b: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
