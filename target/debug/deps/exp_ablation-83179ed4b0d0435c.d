/root/repo/target/debug/deps/exp_ablation-83179ed4b0d0435c.d: crates/bench/src/bin/exp_ablation.rs

/root/repo/target/debug/deps/exp_ablation-83179ed4b0d0435c: crates/bench/src/bin/exp_ablation.rs

crates/bench/src/bin/exp_ablation.rs:
