/root/repo/target/debug/deps/exp_fig10a-62d74eb34136b758.d: crates/bench/src/bin/exp_fig10a.rs

/root/repo/target/debug/deps/exp_fig10a-62d74eb34136b758: crates/bench/src/bin/exp_fig10a.rs

crates/bench/src/bin/exp_fig10a.rs:
