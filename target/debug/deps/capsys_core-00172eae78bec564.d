/root/repo/target/debug/deps/capsys_core-00172eae78bec564.d: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/cost.rs crates/core/src/error.rs crates/core/src/parallel.rs crates/core/src/pareto.rs crates/core/src/partitioned.rs crates/core/src/search.rs

/root/repo/target/debug/deps/libcapsys_core-00172eae78bec564.rlib: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/cost.rs crates/core/src/error.rs crates/core/src/parallel.rs crates/core/src/pareto.rs crates/core/src/partitioned.rs crates/core/src/search.rs

/root/repo/target/debug/deps/libcapsys_core-00172eae78bec564.rmeta: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/cost.rs crates/core/src/error.rs crates/core/src/parallel.rs crates/core/src/pareto.rs crates/core/src/partitioned.rs crates/core/src/search.rs

crates/core/src/lib.rs:
crates/core/src/autotune.rs:
crates/core/src/cost.rs:
crates/core/src/error.rs:
crates/core/src/parallel.rs:
crates/core/src/pareto.rs:
crates/core/src/partitioned.rs:
crates/core/src/search.rs:
