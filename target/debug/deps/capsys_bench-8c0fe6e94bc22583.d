/root/repo/target/debug/deps/capsys_bench-8c0fe6e94bc22583.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/capsys_bench-8c0fe6e94bc22583: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
