/root/repo/target/debug/deps/exp_fig2-50c4c7ad4d52b4c4.d: crates/bench/src/bin/exp_fig2.rs

/root/repo/target/debug/deps/exp_fig2-50c4c7ad4d52b4c4: crates/bench/src/bin/exp_fig2.rs

crates/bench/src/bin/exp_fig2.rs:
