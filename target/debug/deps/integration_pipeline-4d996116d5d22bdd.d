/root/repo/target/debug/deps/integration_pipeline-4d996116d5d22bdd.d: tests/integration_pipeline.rs

/root/repo/target/debug/deps/integration_pipeline-4d996116d5d22bdd: tests/integration_pipeline.rs

tests/integration_pipeline.rs:
