/root/repo/target/debug/deps/exp_fig8-eead3177afc21213.d: crates/bench/src/bin/exp_fig8.rs

/root/repo/target/debug/deps/exp_fig8-eead3177afc21213: crates/bench/src/bin/exp_fig8.rs

crates/bench/src/bin/exp_fig8.rs:
