/root/repo/target/debug/deps/capsys_queries-c8a19f7603063885.d: crates/queries/src/lib.rs

/root/repo/target/debug/deps/libcapsys_queries-c8a19f7603063885.rlib: crates/queries/src/lib.rs

/root/repo/target/debug/deps/libcapsys_queries-c8a19f7603063885.rmeta: crates/queries/src/lib.rs

crates/queries/src/lib.rs:
