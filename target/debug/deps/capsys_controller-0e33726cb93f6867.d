/root/repo/target/debug/deps/capsys_controller-0e33726cb93f6867.d: crates/controller/src/lib.rs crates/controller/src/closed_loop.rs crates/controller/src/controller.rs crates/controller/src/online.rs crates/controller/src/profiler.rs

/root/repo/target/debug/deps/capsys_controller-0e33726cb93f6867: crates/controller/src/lib.rs crates/controller/src/closed_loop.rs crates/controller/src/controller.rs crates/controller/src/online.rs crates/controller/src/profiler.rs

crates/controller/src/lib.rs:
crates/controller/src/closed_loop.rs:
crates/controller/src/controller.rs:
crates/controller/src/online.rs:
crates/controller/src/profiler.rs:
