/root/repo/target/debug/deps/exp_table3-d0ef3eaebe23090c.d: crates/bench/src/bin/exp_table3.rs

/root/repo/target/debug/deps/exp_table3-d0ef3eaebe23090c: crates/bench/src/bin/exp_table3.rs

crates/bench/src/bin/exp_table3.rs:
