/root/repo/target/debug/deps/exp_fig7-f80b4aaf57b2d178.d: crates/bench/src/bin/exp_fig7.rs

/root/repo/target/debug/deps/exp_fig7-f80b4aaf57b2d178: crates/bench/src/bin/exp_fig7.rs

crates/bench/src/bin/exp_fig7.rs:
