/root/repo/target/debug/deps/integration_endtoend-78b0324398726a95.d: tests/integration_endtoend.rs

/root/repo/target/debug/deps/integration_endtoend-78b0324398726a95: tests/integration_endtoend.rs

tests/integration_endtoend.rs:
