/root/repo/target/debug/deps/capsys_cli-b2eecd09de861f91.d: src/bin/capsys-cli.rs

/root/repo/target/debug/deps/capsys_cli-b2eecd09de861f91: src/bin/capsys-cli.rs

src/bin/capsys-cli.rs:
