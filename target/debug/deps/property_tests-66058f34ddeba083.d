/root/repo/target/debug/deps/property_tests-66058f34ddeba083.d: tests/property_tests.rs

/root/repo/target/debug/deps/property_tests-66058f34ddeba083: tests/property_tests.rs

tests/property_tests.rs:
