/root/repo/target/debug/deps/capsys_odrp-df0e165bd4a5a215.d: crates/odrp/src/lib.rs crates/odrp/src/config.rs crates/odrp/src/objective.rs crates/odrp/src/solver.rs

/root/repo/target/debug/deps/capsys_odrp-df0e165bd4a5a215: crates/odrp/src/lib.rs crates/odrp/src/config.rs crates/odrp/src/objective.rs crates/odrp/src/solver.rs

crates/odrp/src/lib.rs:
crates/odrp/src/config.rs:
crates/odrp/src/objective.rs:
crates/odrp/src/solver.rs:
