/root/repo/target/debug/deps/capsys_ds2-6e838f3790a1d08a.d: crates/ds2/src/lib.rs

/root/repo/target/debug/deps/libcapsys_ds2-6e838f3790a1d08a.rlib: crates/ds2/src/lib.rs

/root/repo/target/debug/deps/libcapsys_ds2-6e838f3790a1d08a.rmeta: crates/ds2/src/lib.rs

crates/ds2/src/lib.rs:
