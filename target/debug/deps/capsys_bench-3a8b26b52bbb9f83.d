/root/repo/target/debug/deps/capsys_bench-3a8b26b52bbb9f83.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcapsys_bench-3a8b26b52bbb9f83.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcapsys_bench-3a8b26b52bbb9f83.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
