/root/repo/target/debug/deps/exp_fig5-0f8f5a9904404874.d: crates/bench/src/bin/exp_fig5.rs

/root/repo/target/debug/deps/exp_fig5-0f8f5a9904404874: crates/bench/src/bin/exp_fig5.rs

crates/bench/src/bin/exp_fig5.rs:
