/root/repo/target/debug/deps/exp_fig9-40811be1527654aa.d: crates/bench/src/bin/exp_fig9.rs

/root/repo/target/debug/deps/exp_fig9-40811be1527654aa: crates/bench/src/bin/exp_fig9.rs

crates/bench/src/bin/exp_fig9.rs:
