/root/repo/target/debug/deps/capsys_placement-ae4a54bc73a11ceb.d: crates/placement/src/lib.rs

/root/repo/target/debug/deps/libcapsys_placement-ae4a54bc73a11ceb.rlib: crates/placement/src/lib.rs

/root/repo/target/debug/deps/libcapsys_placement-ae4a54bc73a11ceb.rmeta: crates/placement/src/lib.rs

crates/placement/src/lib.rs:
