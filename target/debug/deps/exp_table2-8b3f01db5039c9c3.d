/root/repo/target/debug/deps/exp_table2-8b3f01db5039c9c3.d: crates/bench/src/bin/exp_table2.rs

/root/repo/target/debug/deps/exp_table2-8b3f01db5039c9c3: crates/bench/src/bin/exp_table2.rs

crates/bench/src/bin/exp_table2.rs:
