/root/repo/target/debug/examples/autoscaling-20424e73b8b7df47.d: examples/autoscaling.rs

/root/repo/target/debug/examples/autoscaling-20424e73b8b7df47: examples/autoscaling.rs

examples/autoscaling.rs:
