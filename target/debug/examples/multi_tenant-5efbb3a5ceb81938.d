/root/repo/target/debug/examples/multi_tenant-5efbb3a5ceb81938.d: examples/multi_tenant.rs

/root/repo/target/debug/examples/multi_tenant-5efbb3a5ceb81938: examples/multi_tenant.rs

examples/multi_tenant.rs:
