/root/repo/target/debug/examples/quickstart-1324fad5c0e7f64a.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-1324fad5c0e7f64a: examples/quickstart.rs

examples/quickstart.rs:
