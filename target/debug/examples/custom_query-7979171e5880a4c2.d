/root/repo/target/debug/examples/custom_query-7979171e5880a4c2.d: examples/custom_query.rs

/root/repo/target/debug/examples/custom_query-7979171e5880a4c2: examples/custom_query.rs

examples/custom_query.rs:
