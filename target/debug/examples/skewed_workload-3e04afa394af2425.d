/root/repo/target/debug/examples/skewed_workload-3e04afa394af2425.d: examples/skewed_workload.rs

/root/repo/target/debug/examples/skewed_workload-3e04afa394af2425: examples/skewed_workload.rs

examples/skewed_workload.rs:
