/root/repo/target/release/examples/custom_query-d30b665b4f2ce616.d: examples/custom_query.rs

/root/repo/target/release/examples/custom_query-d30b665b4f2ce616: examples/custom_query.rs

examples/custom_query.rs:
