/root/repo/target/release/examples/multi_tenant-6819d230542fad2b.d: examples/multi_tenant.rs

/root/repo/target/release/examples/multi_tenant-6819d230542fad2b: examples/multi_tenant.rs

examples/multi_tenant.rs:
