/root/repo/target/release/examples/autoscaling-1364a46ce4d291c3.d: examples/autoscaling.rs

/root/repo/target/release/examples/autoscaling-1364a46ce4d291c3: examples/autoscaling.rs

examples/autoscaling.rs:
