/root/repo/target/release/examples/quickstart-926a94cfa0356633.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-926a94cfa0356633: examples/quickstart.rs

examples/quickstart.rs:
