/root/repo/target/release/examples/skewed_workload-c1574c7e01c899cb.d: examples/skewed_workload.rs

/root/repo/target/release/examples/skewed_workload-c1574c7e01c899cb: examples/skewed_workload.rs

examples/skewed_workload.rs:
