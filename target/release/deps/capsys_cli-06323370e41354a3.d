/root/repo/target/release/deps/capsys_cli-06323370e41354a3.d: src/bin/capsys-cli.rs

/root/repo/target/release/deps/capsys_cli-06323370e41354a3: src/bin/capsys-cli.rs

src/bin/capsys-cli.rs:
