/root/repo/target/release/deps/capsys_placement-d5885fba5dfad772.d: crates/placement/src/lib.rs

/root/repo/target/release/deps/capsys_placement-d5885fba5dfad772: crates/placement/src/lib.rs

crates/placement/src/lib.rs:
