/root/repo/target/release/deps/autotune-4e6b6980d9ec2ee9.d: crates/bench/benches/autotune.rs

/root/repo/target/release/deps/autotune-4e6b6980d9ec2ee9: crates/bench/benches/autotune.rs

crates/bench/benches/autotune.rs:
