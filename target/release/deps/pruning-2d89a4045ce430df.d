/root/repo/target/release/deps/pruning-2d89a4045ce430df.d: crates/bench/benches/pruning.rs

/root/repo/target/release/deps/pruning-2d89a4045ce430df: crates/bench/benches/pruning.rs

crates/bench/benches/pruning.rs:
