/root/repo/target/release/deps/capsys-4f352b345e4c134e.d: src/lib.rs src/spec.rs

/root/repo/target/release/deps/libcapsys-4f352b345e4c134e.rlib: src/lib.rs src/spec.rs

/root/repo/target/release/deps/libcapsys-4f352b345e4c134e.rmeta: src/lib.rs src/spec.rs

src/lib.rs:
src/spec.rs:
