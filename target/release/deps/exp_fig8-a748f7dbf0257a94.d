/root/repo/target/release/deps/exp_fig8-a748f7dbf0257a94.d: crates/bench/src/bin/exp_fig8.rs

/root/repo/target/release/deps/exp_fig8-a748f7dbf0257a94: crates/bench/src/bin/exp_fig8.rs

crates/bench/src/bin/exp_fig8.rs:
