/root/repo/target/release/deps/capsys_sim-ca1200fac8c475f6.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/metrics.rs

/root/repo/target/release/deps/capsys_sim-ca1200fac8c475f6: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/metrics.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/metrics.rs:
