/root/repo/target/release/deps/exp_fig3-a61d630b39a7625f.d: crates/bench/src/bin/exp_fig3.rs

/root/repo/target/release/deps/exp_fig3-a61d630b39a7625f: crates/bench/src/bin/exp_fig3.rs

crates/bench/src/bin/exp_fig3.rs:
