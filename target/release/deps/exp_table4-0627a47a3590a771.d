/root/repo/target/release/deps/exp_table4-0627a47a3590a771.d: crates/bench/src/bin/exp_table4.rs

/root/repo/target/release/deps/exp_table4-0627a47a3590a771: crates/bench/src/bin/exp_table4.rs

crates/bench/src/bin/exp_table4.rs:
