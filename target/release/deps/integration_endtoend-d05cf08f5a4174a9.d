/root/repo/target/release/deps/integration_endtoend-d05cf08f5a4174a9.d: tests/integration_endtoend.rs

/root/repo/target/release/deps/integration_endtoend-d05cf08f5a4174a9: tests/integration_endtoend.rs

tests/integration_endtoend.rs:
