/root/repo/target/release/deps/capsys_util-7957b44cddb48788.d: crates/util/src/lib.rs crates/util/src/bench.rs crates/util/src/json.rs crates/util/src/prop.rs crates/util/src/queue.rs crates/util/src/rng.rs crates/util/src/sync.rs

/root/repo/target/release/deps/libcapsys_util-7957b44cddb48788.rlib: crates/util/src/lib.rs crates/util/src/bench.rs crates/util/src/json.rs crates/util/src/prop.rs crates/util/src/queue.rs crates/util/src/rng.rs crates/util/src/sync.rs

/root/repo/target/release/deps/libcapsys_util-7957b44cddb48788.rmeta: crates/util/src/lib.rs crates/util/src/bench.rs crates/util/src/json.rs crates/util/src/prop.rs crates/util/src/queue.rs crates/util/src/rng.rs crates/util/src/sync.rs

crates/util/src/lib.rs:
crates/util/src/bench.rs:
crates/util/src/json.rs:
crates/util/src/prop.rs:
crates/util/src/queue.rs:
crates/util/src/rng.rs:
crates/util/src/sync.rs:
