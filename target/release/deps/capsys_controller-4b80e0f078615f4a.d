/root/repo/target/release/deps/capsys_controller-4b80e0f078615f4a.d: crates/controller/src/lib.rs crates/controller/src/closed_loop.rs crates/controller/src/controller.rs crates/controller/src/online.rs crates/controller/src/profiler.rs

/root/repo/target/release/deps/capsys_controller-4b80e0f078615f4a: crates/controller/src/lib.rs crates/controller/src/closed_loop.rs crates/controller/src/controller.rs crates/controller/src/online.rs crates/controller/src/profiler.rs

crates/controller/src/lib.rs:
crates/controller/src/closed_loop.rs:
crates/controller/src/controller.rs:
crates/controller/src/online.rs:
crates/controller/src/profiler.rs:
