/root/repo/target/release/deps/exp_fig5-8f9fc8470ca9d322.d: crates/bench/src/bin/exp_fig5.rs

/root/repo/target/release/deps/exp_fig5-8f9fc8470ca9d322: crates/bench/src/bin/exp_fig5.rs

crates/bench/src/bin/exp_fig5.rs:
