/root/repo/target/release/deps/capsys_queries-ea453aadf8e12a40.d: crates/queries/src/lib.rs

/root/repo/target/release/deps/capsys_queries-ea453aadf8e12a40: crates/queries/src/lib.rs

crates/queries/src/lib.rs:
