/root/repo/target/release/deps/exp_table3-0eaf65ee76c0cefd.d: crates/bench/src/bin/exp_table3.rs

/root/repo/target/release/deps/exp_table3-0eaf65ee76c0cefd: crates/bench/src/bin/exp_table3.rs

crates/bench/src/bin/exp_table3.rs:
