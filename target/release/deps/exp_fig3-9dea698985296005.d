/root/repo/target/release/deps/exp_fig3-9dea698985296005.d: crates/bench/src/bin/exp_fig3.rs

/root/repo/target/release/deps/exp_fig3-9dea698985296005: crates/bench/src/bin/exp_fig3.rs

crates/bench/src/bin/exp_fig3.rs:
