/root/repo/target/release/deps/exp_ablation-c834210f1945e6c0.d: crates/bench/src/bin/exp_ablation.rs

/root/repo/target/release/deps/exp_ablation-c834210f1945e6c0: crates/bench/src/bin/exp_ablation.rs

crates/bench/src/bin/exp_ablation.rs:
