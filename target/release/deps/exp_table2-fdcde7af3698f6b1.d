/root/repo/target/release/deps/exp_table2-fdcde7af3698f6b1.d: crates/bench/src/bin/exp_table2.rs

/root/repo/target/release/deps/exp_table2-fdcde7af3698f6b1: crates/bench/src/bin/exp_table2.rs

crates/bench/src/bin/exp_table2.rs:
