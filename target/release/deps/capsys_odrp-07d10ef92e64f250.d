/root/repo/target/release/deps/capsys_odrp-07d10ef92e64f250.d: crates/odrp/src/lib.rs crates/odrp/src/config.rs crates/odrp/src/objective.rs crates/odrp/src/solver.rs

/root/repo/target/release/deps/capsys_odrp-07d10ef92e64f250: crates/odrp/src/lib.rs crates/odrp/src/config.rs crates/odrp/src/objective.rs crates/odrp/src/solver.rs

crates/odrp/src/lib.rs:
crates/odrp/src/config.rs:
crates/odrp/src/objective.rs:
crates/odrp/src/solver.rs:
