/root/repo/target/release/deps/exp_fig2-6dfa4eefc05b3541.d: crates/bench/src/bin/exp_fig2.rs

/root/repo/target/release/deps/exp_fig2-6dfa4eefc05b3541: crates/bench/src/bin/exp_fig2.rs

crates/bench/src/bin/exp_fig2.rs:
