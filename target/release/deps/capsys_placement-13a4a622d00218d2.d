/root/repo/target/release/deps/capsys_placement-13a4a622d00218d2.d: crates/placement/src/lib.rs

/root/repo/target/release/deps/libcapsys_placement-13a4a622d00218d2.rlib: crates/placement/src/lib.rs

/root/repo/target/release/deps/libcapsys_placement-13a4a622d00218d2.rmeta: crates/placement/src/lib.rs

crates/placement/src/lib.rs:
