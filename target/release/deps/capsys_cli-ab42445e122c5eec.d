/root/repo/target/release/deps/capsys_cli-ab42445e122c5eec.d: src/bin/capsys-cli.rs

/root/repo/target/release/deps/capsys_cli-ab42445e122c5eec: src/bin/capsys-cli.rs

src/bin/capsys-cli.rs:
