/root/repo/target/release/deps/exp_fig7-17725ae78e37562d.d: crates/bench/src/bin/exp_fig7.rs

/root/repo/target/release/deps/exp_fig7-17725ae78e37562d: crates/bench/src/bin/exp_fig7.rs

crates/bench/src/bin/exp_fig7.rs:
