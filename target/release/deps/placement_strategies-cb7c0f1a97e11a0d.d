/root/repo/target/release/deps/placement_strategies-cb7c0f1a97e11a0d.d: crates/bench/benches/placement_strategies.rs

/root/repo/target/release/deps/placement_strategies-cb7c0f1a97e11a0d: crates/bench/benches/placement_strategies.rs

crates/bench/benches/placement_strategies.rs:
