/root/repo/target/release/deps/caps_search-123594478976b464.d: crates/bench/benches/caps_search.rs

/root/repo/target/release/deps/caps_search-123594478976b464: crates/bench/benches/caps_search.rs

crates/bench/benches/caps_search.rs:
