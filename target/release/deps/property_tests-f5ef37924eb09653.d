/root/repo/target/release/deps/property_tests-f5ef37924eb09653.d: tests/property_tests.rs

/root/repo/target/release/deps/property_tests-f5ef37924eb09653: tests/property_tests.rs

tests/property_tests.rs:
