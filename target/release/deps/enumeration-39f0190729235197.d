/root/repo/target/release/deps/enumeration-39f0190729235197.d: crates/bench/benches/enumeration.rs

/root/repo/target/release/deps/enumeration-39f0190729235197: crates/bench/benches/enumeration.rs

crates/bench/benches/enumeration.rs:
