/root/repo/target/release/deps/exp_fig2-129fceb9176336a0.d: crates/bench/src/bin/exp_fig2.rs

/root/repo/target/release/deps/exp_fig2-129fceb9176336a0: crates/bench/src/bin/exp_fig2.rs

crates/bench/src/bin/exp_fig2.rs:
