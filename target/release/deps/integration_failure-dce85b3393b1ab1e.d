/root/repo/target/release/deps/integration_failure-dce85b3393b1ab1e.d: tests/integration_failure.rs

/root/repo/target/release/deps/integration_failure-dce85b3393b1ab1e: tests/integration_failure.rs

tests/integration_failure.rs:
