/root/repo/target/release/deps/exp_fig9-29445f7eb49a722e.d: crates/bench/src/bin/exp_fig9.rs

/root/repo/target/release/deps/exp_fig9-29445f7eb49a722e: crates/bench/src/bin/exp_fig9.rs

crates/bench/src/bin/exp_fig9.rs:
