/root/repo/target/release/deps/capsys_ds2-cc921275454a5654.d: crates/ds2/src/lib.rs

/root/repo/target/release/deps/capsys_ds2-cc921275454a5654: crates/ds2/src/lib.rs

crates/ds2/src/lib.rs:
