/root/repo/target/release/deps/exp_fig10b-2cbb8941f8587122.d: crates/bench/src/bin/exp_fig10b.rs

/root/repo/target/release/deps/exp_fig10b-2cbb8941f8587122: crates/bench/src/bin/exp_fig10b.rs

crates/bench/src/bin/exp_fig10b.rs:
