/root/repo/target/release/deps/capsys_core-b048c732976ba74f.d: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/cost.rs crates/core/src/error.rs crates/core/src/parallel.rs crates/core/src/pareto.rs crates/core/src/partitioned.rs crates/core/src/search.rs

/root/repo/target/release/deps/capsys_core-b048c732976ba74f: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/cost.rs crates/core/src/error.rs crates/core/src/parallel.rs crates/core/src/pareto.rs crates/core/src/partitioned.rs crates/core/src/search.rs

crates/core/src/lib.rs:
crates/core/src/autotune.rs:
crates/core/src/cost.rs:
crates/core/src/error.rs:
crates/core/src/parallel.rs:
crates/core/src/pareto.rs:
crates/core/src/partitioned.rs:
crates/core/src/search.rs:
