/root/repo/target/release/deps/capsys_sim-c05d3e65d30fc13e.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/metrics.rs

/root/repo/target/release/deps/libcapsys_sim-c05d3e65d30fc13e.rlib: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/metrics.rs

/root/repo/target/release/deps/libcapsys_sim-c05d3e65d30fc13e.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/metrics.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/metrics.rs:
