/root/repo/target/release/deps/exp_table3-64cf0f31f1777e68.d: crates/bench/src/bin/exp_table3.rs

/root/repo/target/release/deps/exp_table3-64cf0f31f1777e68: crates/bench/src/bin/exp_table3.rs

crates/bench/src/bin/exp_table3.rs:
