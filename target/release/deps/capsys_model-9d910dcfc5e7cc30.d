/root/repo/target/release/deps/capsys_model-9d910dcfc5e7cc30.d: crates/model/src/lib.rs crates/model/src/cluster.rs crates/model/src/enumerate.rs crates/model/src/error.rs crates/model/src/json.rs crates/model/src/load.rs crates/model/src/logical.rs crates/model/src/operator.rs crates/model/src/physical.rs crates/model/src/placement.rs crates/model/src/rates.rs crates/model/src/skew.rs

/root/repo/target/release/deps/libcapsys_model-9d910dcfc5e7cc30.rlib: crates/model/src/lib.rs crates/model/src/cluster.rs crates/model/src/enumerate.rs crates/model/src/error.rs crates/model/src/json.rs crates/model/src/load.rs crates/model/src/logical.rs crates/model/src/operator.rs crates/model/src/physical.rs crates/model/src/placement.rs crates/model/src/rates.rs crates/model/src/skew.rs

/root/repo/target/release/deps/libcapsys_model-9d910dcfc5e7cc30.rmeta: crates/model/src/lib.rs crates/model/src/cluster.rs crates/model/src/enumerate.rs crates/model/src/error.rs crates/model/src/json.rs crates/model/src/load.rs crates/model/src/logical.rs crates/model/src/operator.rs crates/model/src/physical.rs crates/model/src/placement.rs crates/model/src/rates.rs crates/model/src/skew.rs

crates/model/src/lib.rs:
crates/model/src/cluster.rs:
crates/model/src/enumerate.rs:
crates/model/src/error.rs:
crates/model/src/json.rs:
crates/model/src/load.rs:
crates/model/src/logical.rs:
crates/model/src/operator.rs:
crates/model/src/physical.rs:
crates/model/src/placement.rs:
crates/model/src/rates.rs:
crates/model/src/skew.rs:
