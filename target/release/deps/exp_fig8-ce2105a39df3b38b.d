/root/repo/target/release/deps/exp_fig8-ce2105a39df3b38b.d: crates/bench/src/bin/exp_fig8.rs

/root/repo/target/release/deps/exp_fig8-ce2105a39df3b38b: crates/bench/src/bin/exp_fig8.rs

crates/bench/src/bin/exp_fig8.rs:
