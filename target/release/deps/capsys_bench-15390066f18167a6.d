/root/repo/target/release/deps/capsys_bench-15390066f18167a6.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libcapsys_bench-15390066f18167a6.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libcapsys_bench-15390066f18167a6.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
