/root/repo/target/release/deps/exp_table2-a28b1a4f7f3c2c3b.d: crates/bench/src/bin/exp_table2.rs

/root/repo/target/release/deps/exp_table2-a28b1a4f7f3c2c3b: crates/bench/src/bin/exp_table2.rs

crates/bench/src/bin/exp_table2.rs:
