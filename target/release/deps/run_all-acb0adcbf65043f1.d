/root/repo/target/release/deps/run_all-acb0adcbf65043f1.d: crates/bench/src/bin/run_all.rs

/root/repo/target/release/deps/run_all-acb0adcbf65043f1: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
