/root/repo/target/release/deps/exp_fig10b-ee34419747e96ba0.d: crates/bench/src/bin/exp_fig10b.rs

/root/repo/target/release/deps/exp_fig10b-ee34419747e96ba0: crates/bench/src/bin/exp_fig10b.rs

crates/bench/src/bin/exp_fig10b.rs:
