/root/repo/target/release/deps/integration_pipeline-2e5b87ec9ffdd7bc.d: tests/integration_pipeline.rs

/root/repo/target/release/deps/integration_pipeline-2e5b87ec9ffdd7bc: tests/integration_pipeline.rs

tests/integration_pipeline.rs:
