/root/repo/target/release/deps/capsys_odrp-084dfefbdafaf835.d: crates/odrp/src/lib.rs crates/odrp/src/config.rs crates/odrp/src/objective.rs crates/odrp/src/solver.rs

/root/repo/target/release/deps/libcapsys_odrp-084dfefbdafaf835.rlib: crates/odrp/src/lib.rs crates/odrp/src/config.rs crates/odrp/src/objective.rs crates/odrp/src/solver.rs

/root/repo/target/release/deps/libcapsys_odrp-084dfefbdafaf835.rmeta: crates/odrp/src/lib.rs crates/odrp/src/config.rs crates/odrp/src/objective.rs crates/odrp/src/solver.rs

crates/odrp/src/lib.rs:
crates/odrp/src/config.rs:
crates/odrp/src/objective.rs:
crates/odrp/src/solver.rs:
