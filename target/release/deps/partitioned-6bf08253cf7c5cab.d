/root/repo/target/release/deps/partitioned-6bf08253cf7c5cab.d: crates/bench/benches/partitioned.rs

/root/repo/target/release/deps/partitioned-6bf08253cf7c5cab: crates/bench/benches/partitioned.rs

crates/bench/benches/partitioned.rs:
