/root/repo/target/release/deps/exp_table4-e2505f5b97b45c19.d: crates/bench/src/bin/exp_table4.rs

/root/repo/target/release/deps/exp_table4-e2505f5b97b45c19: crates/bench/src/bin/exp_table4.rs

crates/bench/src/bin/exp_table4.rs:
