/root/repo/target/release/deps/capsys_controller-82a589284f931477.d: crates/controller/src/lib.rs crates/controller/src/closed_loop.rs crates/controller/src/controller.rs crates/controller/src/online.rs crates/controller/src/profiler.rs

/root/repo/target/release/deps/libcapsys_controller-82a589284f931477.rlib: crates/controller/src/lib.rs crates/controller/src/closed_loop.rs crates/controller/src/controller.rs crates/controller/src/online.rs crates/controller/src/profiler.rs

/root/repo/target/release/deps/libcapsys_controller-82a589284f931477.rmeta: crates/controller/src/lib.rs crates/controller/src/closed_loop.rs crates/controller/src/controller.rs crates/controller/src/online.rs crates/controller/src/profiler.rs

crates/controller/src/lib.rs:
crates/controller/src/closed_loop.rs:
crates/controller/src/controller.rs:
crates/controller/src/online.rs:
crates/controller/src/profiler.rs:
