/root/repo/target/release/deps/golden_determinism-d77de6f391c02257.d: tests/golden_determinism.rs tests/golden/q1_spec.json tests/golden/q1_caps_plan.json

/root/repo/target/release/deps/golden_determinism-d77de6f391c02257: tests/golden_determinism.rs tests/golden/q1_spec.json tests/golden/q1_caps_plan.json

tests/golden_determinism.rs:
tests/golden/q1_spec.json:
tests/golden/q1_caps_plan.json:
