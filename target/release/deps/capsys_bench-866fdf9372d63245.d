/root/repo/target/release/deps/capsys_bench-866fdf9372d63245.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/capsys_bench-866fdf9372d63245: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
