/root/repo/target/release/deps/cost_model-2ad036f90001f512.d: crates/bench/benches/cost_model.rs

/root/repo/target/release/deps/cost_model-2ad036f90001f512: crates/bench/benches/cost_model.rs

crates/bench/benches/cost_model.rs:
