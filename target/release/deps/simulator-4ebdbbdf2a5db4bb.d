/root/repo/target/release/deps/simulator-4ebdbbdf2a5db4bb.d: crates/bench/benches/simulator.rs

/root/repo/target/release/deps/simulator-4ebdbbdf2a5db4bb: crates/bench/benches/simulator.rs

crates/bench/benches/simulator.rs:
