/root/repo/target/release/deps/exp_fig9-0360fbb38a3c26e0.d: crates/bench/src/bin/exp_fig9.rs

/root/repo/target/release/deps/exp_fig9-0360fbb38a3c26e0: crates/bench/src/bin/exp_fig9.rs

crates/bench/src/bin/exp_fig9.rs:
