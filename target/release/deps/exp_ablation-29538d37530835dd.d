/root/repo/target/release/deps/exp_ablation-29538d37530835dd.d: crates/bench/src/bin/exp_ablation.rs

/root/repo/target/release/deps/exp_ablation-29538d37530835dd: crates/bench/src/bin/exp_ablation.rs

crates/bench/src/bin/exp_ablation.rs:
