/root/repo/target/release/deps/exp_fig7-c27df835f42b07fd.d: crates/bench/src/bin/exp_fig7.rs

/root/repo/target/release/deps/exp_fig7-c27df835f42b07fd: crates/bench/src/bin/exp_fig7.rs

crates/bench/src/bin/exp_fig7.rs:
