/root/repo/target/release/deps/exp_fig10a-540ac3dc7a1e9863.d: crates/bench/src/bin/exp_fig10a.rs

/root/repo/target/release/deps/exp_fig10a-540ac3dc7a1e9863: crates/bench/src/bin/exp_fig10a.rs

crates/bench/src/bin/exp_fig10a.rs:
