/root/repo/target/release/deps/exp_fig10a-0d5b4933ed7246f1.d: crates/bench/src/bin/exp_fig10a.rs

/root/repo/target/release/deps/exp_fig10a-0d5b4933ed7246f1: crates/bench/src/bin/exp_fig10a.rs

crates/bench/src/bin/exp_fig10a.rs:
