/root/repo/target/release/deps/capsys_ds2-384526c55e433ecf.d: crates/ds2/src/lib.rs

/root/repo/target/release/deps/libcapsys_ds2-384526c55e433ecf.rlib: crates/ds2/src/lib.rs

/root/repo/target/release/deps/libcapsys_ds2-384526c55e433ecf.rmeta: crates/ds2/src/lib.rs

crates/ds2/src/lib.rs:
