/root/repo/target/release/deps/exp_fig5-179fa6a028b4f707.d: crates/bench/src/bin/exp_fig5.rs

/root/repo/target/release/deps/exp_fig5-179fa6a028b4f707: crates/bench/src/bin/exp_fig5.rs

crates/bench/src/bin/exp_fig5.rs:
