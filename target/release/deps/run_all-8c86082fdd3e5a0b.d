/root/repo/target/release/deps/run_all-8c86082fdd3e5a0b.d: crates/bench/src/bin/run_all.rs

/root/repo/target/release/deps/run_all-8c86082fdd3e5a0b: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
