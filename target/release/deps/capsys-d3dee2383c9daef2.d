/root/repo/target/release/deps/capsys-d3dee2383c9daef2.d: src/lib.rs src/spec.rs

/root/repo/target/release/deps/capsys-d3dee2383c9daef2: src/lib.rs src/spec.rs

src/lib.rs:
src/spec.rs:
