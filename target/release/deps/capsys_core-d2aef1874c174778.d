/root/repo/target/release/deps/capsys_core-d2aef1874c174778.d: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/cost.rs crates/core/src/error.rs crates/core/src/parallel.rs crates/core/src/pareto.rs crates/core/src/partitioned.rs crates/core/src/search.rs

/root/repo/target/release/deps/libcapsys_core-d2aef1874c174778.rlib: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/cost.rs crates/core/src/error.rs crates/core/src/parallel.rs crates/core/src/pareto.rs crates/core/src/partitioned.rs crates/core/src/search.rs

/root/repo/target/release/deps/libcapsys_core-d2aef1874c174778.rmeta: crates/core/src/lib.rs crates/core/src/autotune.rs crates/core/src/cost.rs crates/core/src/error.rs crates/core/src/parallel.rs crates/core/src/pareto.rs crates/core/src/partitioned.rs crates/core/src/search.rs

crates/core/src/lib.rs:
crates/core/src/autotune.rs:
crates/core/src/cost.rs:
crates/core/src/error.rs:
crates/core/src/parallel.rs:
crates/core/src/pareto.rs:
crates/core/src/partitioned.rs:
crates/core/src/search.rs:
