/root/repo/target/release/deps/integration_plan_space-e04aeab558aa7f33.d: tests/integration_plan_space.rs

/root/repo/target/release/deps/integration_plan_space-e04aeab558aa7f33: tests/integration_plan_space.rs

tests/integration_plan_space.rs:
