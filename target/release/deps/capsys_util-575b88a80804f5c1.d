/root/repo/target/release/deps/capsys_util-575b88a80804f5c1.d: crates/util/src/lib.rs crates/util/src/bench.rs crates/util/src/json.rs crates/util/src/prop.rs crates/util/src/queue.rs crates/util/src/rng.rs crates/util/src/sync.rs

/root/repo/target/release/deps/capsys_util-575b88a80804f5c1: crates/util/src/lib.rs crates/util/src/bench.rs crates/util/src/json.rs crates/util/src/prop.rs crates/util/src/queue.rs crates/util/src/rng.rs crates/util/src/sync.rs

crates/util/src/lib.rs:
crates/util/src/bench.rs:
crates/util/src/json.rs:
crates/util/src/prop.rs:
crates/util/src/queue.rs:
crates/util/src/rng.rs:
crates/util/src/sync.rs:
