/root/repo/target/release/deps/odrp_solver-e332bf5cdfe914b8.d: crates/bench/benches/odrp_solver.rs

/root/repo/target/release/deps/odrp_solver-e332bf5cdfe914b8: crates/bench/benches/odrp_solver.rs

crates/bench/benches/odrp_solver.rs:
