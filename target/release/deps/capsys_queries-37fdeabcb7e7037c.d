/root/repo/target/release/deps/capsys_queries-37fdeabcb7e7037c.d: crates/queries/src/lib.rs

/root/repo/target/release/deps/libcapsys_queries-37fdeabcb7e7037c.rlib: crates/queries/src/lib.rs

/root/repo/target/release/deps/libcapsys_queries-37fdeabcb7e7037c.rmeta: crates/queries/src/lib.rs

crates/queries/src/lib.rs:
