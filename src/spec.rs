//! JSON deployment specs: describe a query, a cluster, and a strategy in
//! one document and run it through the CAPSys pipeline.
//!
//! This powers the `capsys-cli` binary, and doubles as a stable,
//! serializable surface for driving CAPSys from other tools. Example
//! spec:
//!
//! ```json
//! {
//!   "query": { "builtin": "q1-sliding" },
//!   "cluster": { "workers": 4, "spec": "r5d.xlarge", "slots": 4 },
//!   "rate": "auto",
//!   "strategy": "caps",
//!   "simulate_secs": 120.0
//! }
//! ```
//!
//! Custom queries spell out operators and edges:
//!
//! ```json
//! { "query": { "custom": {
//!     "name": "my-pipeline",
//!     "operators": [
//!       { "name": "src", "kind": "source", "parallelism": 2,
//!         "cpu_per_record": 1e-5, "state_bytes_per_record": 0,
//!         "out_bytes_per_record": 100, "selectivity": 1.0 },
//!       { "name": "sink", "kind": "sink", "parallelism": 1,
//!         "cpu_per_record": 1e-5, "state_bytes_per_record": 0,
//!         "out_bytes_per_record": 0, "selectivity": 1.0 }
//!     ],
//!     "edges": [ { "from": "src", "to": "sink", "pattern": "hash" } ],
//!     "source_mix": { "src": 1.0 }
//! } } }
//! ```

use std::collections::HashMap;

use capsys_core::SearchConfig;
use capsys_model::{
    Cluster, ConnectionPattern, LogicalGraph, OperatorKind, ResourceProfile, WorkerSpec,
};
use capsys_placement::{
    CapsStrategy, FlinkDefault, FlinkEvenly, PlacementContext, PlacementStrategy,
};
use capsys_queries::Query;
use capsys_sim::{SimConfig, Simulation};
use capsys_util::json::{obj, opt, req, FromJson, Json, JsonError, ToJson};
use capsys_util::rng::{SeedableRng, SmallRng};

/// Top-level deployment spec.
#[derive(Debug, Clone)]
pub struct DeploymentSpec {
    /// The query to deploy.
    pub query: QuerySpec,
    /// The worker cluster.
    pub cluster: ClusterSpec,
    /// Aggregate source rate: a number, or `"auto"` for the §3.1
    /// capacity-matching methodology.
    pub rate: RateSpec,
    /// Placement strategy: `caps` (default), `default`, or `evenly`.
    pub strategy: String,
    /// Simulated seconds (with a 25 % warm-up); 0 skips simulation.
    pub simulate_secs: f64,
    /// Seed for randomized strategies and simulator noise.
    pub seed: u64,
}

impl FromJson for DeploymentSpec {
    fn from_json(v: &Json) -> Result<DeploymentSpec, JsonError> {
        Ok(DeploymentSpec {
            query: req(v, "query")?,
            cluster: req(v, "cluster")?,
            rate: opt(v, "rate", RateSpec::Auto)?,
            strategy: opt(v, "strategy", "caps".to_string())?,
            simulate_secs: opt(v, "simulate_secs", 120.0)?,
            seed: opt(v, "seed", 0)?,
        })
    }
}

/// Query selection: a built-in paper query or a custom dataflow.
///
/// JSON form: `{"builtin": "q1-sliding"}` or `{"custom": {...}}`.
#[derive(Debug, Clone)]
pub enum QuerySpec {
    /// One of the six paper queries, e.g. `"q1-sliding"`.
    Builtin(String),
    /// A custom dataflow.
    Custom(CustomQuery),
}

impl FromJson for QuerySpec {
    fn from_json(v: &Json) -> Result<QuerySpec, JsonError> {
        match (v.get("builtin"), v.get("custom")) {
            (Some(b), None) => Ok(QuerySpec::Builtin(String::from_json(b)?)),
            (None, Some(c)) => Ok(QuerySpec::Custom(CustomQuery::from_json(c)?)),
            _ => Err(JsonError::msg(
                "query must be {\"builtin\": name} or {\"custom\": {...}}",
            )),
        }
    }
}

/// A custom dataflow description.
#[derive(Debug, Clone)]
pub struct CustomQuery {
    /// Query name.
    pub name: String,
    /// Operators, in id order.
    pub operators: Vec<OperatorSpec>,
    /// Edges between operators, by name.
    pub edges: Vec<EdgeSpec>,
    /// Fraction of the total rate per source operator name.
    pub source_mix: HashMap<String, f64>,
}

impl FromJson for CustomQuery {
    fn from_json(v: &Json) -> Result<CustomQuery, JsonError> {
        Ok(CustomQuery {
            name: req(v, "name")?,
            operators: req(v, "operators")?,
            edges: req(v, "edges")?,
            source_mix: req(v, "source_mix")?,
        })
    }
}

/// One operator of a custom dataflow.
#[derive(Debug, Clone)]
pub struct OperatorSpec {
    /// Operator name, unique in the query.
    pub name: String,
    /// `source`, `stateless`, `window`, `join`, `inference`, `process`,
    /// or `sink`.
    pub kind: String,
    /// Number of parallel tasks.
    pub parallelism: usize,
    /// CPU seconds per record.
    pub cpu_per_record: f64,
    /// State-backend bytes per record (default 0).
    pub state_bytes_per_record: f64,
    /// Output bytes per record (default 0).
    pub out_bytes_per_record: f64,
    /// Output records per input record (default 1).
    pub selectivity: f64,
}

impl FromJson for OperatorSpec {
    fn from_json(v: &Json) -> Result<OperatorSpec, JsonError> {
        Ok(OperatorSpec {
            name: req(v, "name")?,
            kind: req(v, "kind")?,
            parallelism: req(v, "parallelism")?,
            cpu_per_record: req(v, "cpu_per_record")?,
            state_bytes_per_record: opt(v, "state_bytes_per_record", 0.0)?,
            out_bytes_per_record: opt(v, "out_bytes_per_record", 0.0)?,
            selectivity: opt(v, "selectivity", 1.0)?,
        })
    }
}

/// One edge of a custom dataflow.
#[derive(Debug, Clone)]
pub struct EdgeSpec {
    /// Upstream operator name.
    pub from: String,
    /// Downstream operator name.
    pub to: String,
    /// `forward`, `hash`, `rebalance`, or `broadcast` (default `hash`).
    pub pattern: String,
}

impl FromJson for EdgeSpec {
    fn from_json(v: &Json) -> Result<EdgeSpec, JsonError> {
        Ok(EdgeSpec {
            from: req(v, "from")?,
            to: req(v, "to")?,
            pattern: opt(v, "pattern", "hash".to_string())?,
        })
    }
}

/// Cluster description.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Number of workers.
    pub workers: usize,
    /// Instance preset: `r5d.xlarge`, `m5d.2xlarge` (default), or
    /// `c5d.4xlarge`.
    pub spec: String,
    /// Slots per worker.
    pub slots: usize,
}

impl FromJson for ClusterSpec {
    fn from_json(v: &Json) -> Result<ClusterSpec, JsonError> {
        Ok(ClusterSpec {
            workers: req(v, "workers")?,
            spec: opt(v, "spec", "m5d.2xlarge".to_string())?,
            slots: req(v, "slots")?,
        })
    }
}

/// Rate selection: a JSON number (fixed records/s) or a keyword string.
#[derive(Debug, Clone, Default)]
pub enum RateSpec {
    /// Match cluster capacity at 90 % utilization (§3.1 methodology).
    #[default]
    Auto,
    /// Explicit rate in records/s.
    Fixed(f64),
    /// A keyword string; only `"auto"` is accepted at run time.
    Keyword(String),
}

impl FromJson for RateSpec {
    fn from_json(v: &Json) -> Result<RateSpec, JsonError> {
        match v {
            Json::Num(n) => Ok(RateSpec::Fixed(*n)),
            Json::Str(s) => Ok(RateSpec::Keyword(s.clone())),
            _ => Err(JsonError::msg("rate must be a number or \"auto\"")),
        }
    }
}

/// The outcome of running a spec.
#[derive(Debug, Clone)]
pub struct SpecOutcome {
    /// The query name.
    pub query: String,
    /// Chosen aggregate rate, records/s.
    pub rate: f64,
    /// Strategy used.
    pub strategy: String,
    /// Task-to-worker assignment, by task id.
    pub assignment: Vec<usize>,
    /// Cost vector of the plan `[C_cpu, C_io, C_net]`.
    pub cost: [f64; 3],
    /// Simulated throughput (records/s), if simulation ran.
    pub throughput: Option<f64>,
    /// Simulated source backpressure fraction, if simulation ran.
    pub backpressure: Option<f64>,
    /// Simulated latency estimate in seconds, if simulation ran.
    pub latency: Option<f64>,
}

impl ToJson for SpecOutcome {
    fn to_json(&self) -> Json {
        obj(vec![
            ("query", self.query.to_json()),
            ("rate", self.rate.to_json()),
            ("strategy", self.strategy.to_json()),
            ("assignment", self.assignment.to_json()),
            ("cost", self.cost.to_json()),
            ("throughput", self.throughput.to_json()),
            ("backpressure", self.backpressure.to_json()),
            ("latency", self.latency.to_json()),
        ])
    }
}

impl FromJson for SpecOutcome {
    fn from_json(v: &Json) -> Result<SpecOutcome, JsonError> {
        Ok(SpecOutcome {
            query: req(v, "query")?,
            rate: req(v, "rate")?,
            strategy: req(v, "strategy")?,
            assignment: req(v, "assignment")?,
            cost: req(v, "cost")?,
            throughput: opt(v, "throughput", None)?,
            backpressure: opt(v, "backpressure", None)?,
            latency: opt(v, "latency", None)?,
        })
    }
}

/// Errors from spec parsing or execution.
#[derive(Debug)]
pub enum SpecError {
    /// JSON malformed or missing fields.
    Parse(JsonError),
    /// Semantically invalid spec.
    Invalid(String),
    /// Execution failure from an underlying crate.
    Run(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Parse(e) => write!(f, "spec parse error: {e}"),
            SpecError::Invalid(msg) => write!(f, "invalid spec: {msg}"),
            SpecError::Run(msg) => write!(f, "execution failed: {msg}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl DeploymentSpec {
    /// Parses a spec from JSON.
    pub fn from_json(json: &str) -> Result<DeploymentSpec, SpecError> {
        let value = Json::parse(json).map_err(SpecError::Parse)?;
        <DeploymentSpec as FromJson>::from_json(&value).map_err(SpecError::Parse)
    }

    /// Builds the query object.
    pub fn build_query(&self) -> Result<Query, SpecError> {
        match &self.query {
            QuerySpec::Builtin(name) => builtin_query(name),
            QuerySpec::Custom(c) => build_custom(c),
        }
    }

    /// Builds the cluster object.
    pub fn build_cluster(&self) -> Result<Cluster, SpecError> {
        let spec = match self.cluster.spec.as_str() {
            "r5d.xlarge" => WorkerSpec::r5d_xlarge(self.cluster.slots),
            "m5d.2xlarge" => WorkerSpec::m5d_2xlarge(self.cluster.slots),
            "c5d.4xlarge" => WorkerSpec::c5d_4xlarge(self.cluster.slots),
            other => {
                return Err(SpecError::Invalid(format!(
                    "unknown instance `{other}` (use r5d.xlarge, m5d.2xlarge, c5d.4xlarge)"
                )))
            }
        };
        Cluster::homogeneous(self.cluster.workers, spec)
            .map_err(|e| SpecError::Invalid(e.to_string()))
    }

    /// Runs the spec: plan, optionally simulate, report.
    pub fn run(&self) -> Result<SpecOutcome, SpecError> {
        let query = self.build_query()?;
        let cluster = self.build_cluster()?;
        let rate = match &self.rate {
            RateSpec::Fixed(r) if *r > 0.0 => *r,
            RateSpec::Fixed(r) => {
                return Err(SpecError::Invalid(format!(
                    "rate must be positive, got {r}"
                )))
            }
            RateSpec::Auto => query
                .capacity_rate(&cluster, 0.9)
                .map_err(|e| SpecError::Run(e.to_string()))?,
            RateSpec::Keyword(k) if k == "auto" => query
                .capacity_rate(&cluster, 0.9)
                .map_err(|e| SpecError::Run(e.to_string()))?,
            RateSpec::Keyword(k) => {
                return Err(SpecError::Invalid(format!("unknown rate keyword `{k}`")))
            }
        };

        let physical = query.physical();
        let loads = query
            .load_model_at(&physical, rate)
            .map_err(|e| SpecError::Run(e.to_string()))?;
        let ctx = PlacementContext {
            logical: query.logical(),
            physical: &physical,
            cluster: &cluster,
            loads: &loads,
        };
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let caps = CapsStrategy::new(SearchConfig::auto_tuned());
        let strategy: &dyn PlacementStrategy = match self.strategy.as_str() {
            "caps" => &caps,
            "default" => &FlinkDefault,
            "evenly" => &FlinkEvenly,
            other => {
                return Err(SpecError::Invalid(format!(
                    "unknown strategy `{other}` (use caps, default, evenly)"
                )))
            }
        };
        let plan = strategy
            .place(&ctx, &mut rng)
            .map_err(|e| SpecError::Run(e.to_string()))?;
        let model = capsys_core::CostModel::new(&physical, &cluster, &loads)
            .map_err(|e| SpecError::Run(e.to_string()))?;
        let cost = model.cost(&physical, &plan);

        let (throughput, backpressure, latency) = if self.simulate_secs > 0.0 {
            let schedules = query.schedules(rate);
            let config = SimConfig {
                duration: self.simulate_secs,
                warmup: self.simulate_secs * 0.25,
                seed: self.seed,
                ..SimConfig::default()
            };
            let mut sim = Simulation::new(
                query.logical(),
                &physical,
                &cluster,
                &plan,
                &schedules,
                config,
            )
            .map_err(|e| SpecError::Run(e.to_string()))?;
            let report = sim.run();
            (
                Some(report.avg_throughput),
                Some(report.avg_backpressure),
                Some(report.avg_latency),
            )
        } else {
            (None, None, None)
        };

        Ok(SpecOutcome {
            query: query.name().to_string(),
            rate,
            strategy: self.strategy.clone(),
            assignment: plan.assignment().iter().map(|w| w.0).collect(),
            cost: [cost.cpu, cost.io, cost.net],
            throughput,
            backpressure,
            latency,
        })
    }
}

/// Looks up one of the six paper queries by name.
pub fn builtin_query(name: &str) -> Result<Query, SpecError> {
    let normalized = name.to_lowercase().replace('_', "-");
    match normalized.as_str() {
        "q1-sliding" | "q1" => Ok(capsys_queries::q1_sliding()),
        "q2-join" | "q2" => Ok(capsys_queries::q2_join()),
        "q3-inf" | "q3" => Ok(capsys_queries::q3_inf()),
        "q4-join" | "q4" => Ok(capsys_queries::q4_join()),
        "q5-aggregate" | "q5" => Ok(capsys_queries::q5_aggregate()),
        "q6-session" | "q6" => Ok(capsys_queries::q6_session()),
        other => Err(SpecError::Invalid(format!(
            "unknown builtin query `{other}` (use q1-sliding..q6-session)"
        ))),
    }
}

fn parse_kind(kind: &str) -> Result<OperatorKind, SpecError> {
    Ok(match kind {
        "source" => OperatorKind::Source,
        "stateless" | "map" | "filter" => OperatorKind::Stateless,
        "window" => OperatorKind::Window,
        "join" => OperatorKind::Join,
        "inference" => OperatorKind::Inference,
        "process" => OperatorKind::Process,
        "sink" => OperatorKind::Sink,
        other => {
            return Err(SpecError::Invalid(format!(
                "unknown operator kind `{other}`"
            )))
        }
    })
}

fn parse_pattern(p: &str) -> Result<ConnectionPattern, SpecError> {
    Ok(match p {
        "forward" => ConnectionPattern::Forward,
        "hash" => ConnectionPattern::Hash,
        "rebalance" => ConnectionPattern::Rebalance,
        "broadcast" => ConnectionPattern::Broadcast,
        other => {
            return Err(SpecError::Invalid(format!(
                "unknown edge pattern `{other}`"
            )))
        }
    })
}

fn build_custom(c: &CustomQuery) -> Result<Query, SpecError> {
    let mut b = LogicalGraph::builder(c.name.clone());
    let mut ids = HashMap::new();
    for op in &c.operators {
        let profile = ResourceProfile::new(
            op.cpu_per_record,
            op.state_bytes_per_record,
            op.out_bytes_per_record,
            op.selectivity,
        );
        if !profile.is_valid() {
            return Err(SpecError::Invalid(format!(
                "operator `{}` has an invalid profile",
                op.name
            )));
        }
        let id = b.operator(
            op.name.clone(),
            parse_kind(&op.kind)?,
            op.parallelism,
            profile,
        );
        if ids.insert(op.name.clone(), id).is_some() {
            return Err(SpecError::Invalid(format!(
                "duplicate operator name `{}`",
                op.name
            )));
        }
    }
    for e in &c.edges {
        let from = *ids.get(&e.from).ok_or_else(|| {
            SpecError::Invalid(format!("edge from unknown operator `{}`", e.from))
        })?;
        let to = *ids
            .get(&e.to)
            .ok_or_else(|| SpecError::Invalid(format!("edge to unknown operator `{}`", e.to)))?;
        b.edge(from, to, parse_pattern(&e.pattern)?);
    }
    let logical = b.build().map_err(|e| SpecError::Invalid(e.to_string()))?;
    let mut mix = HashMap::new();
    for (name, frac) in &c.source_mix {
        let id = *ids.get(name).ok_or_else(|| {
            SpecError::Invalid(format!("source mix names unknown operator `{name}`"))
        })?;
        mix.insert(id, *frac);
    }
    Query::new(logical, mix).map_err(|e| SpecError::Invalid(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn builtin_spec(strategy: &str) -> String {
        format!(
            r#"{{
                "query": {{ "builtin": "q1-sliding" }},
                "cluster": {{ "workers": 4, "spec": "r5d.xlarge", "slots": 4 }},
                "rate": "auto",
                "strategy": "{strategy}",
                "simulate_secs": 30.0
            }}"#
        )
    }

    #[test]
    fn builtin_spec_round_trips() {
        let spec = DeploymentSpec::from_json(&builtin_spec("caps")).unwrap();
        let outcome = spec.run().unwrap();
        assert_eq!(outcome.query, "Q1-sliding");
        assert_eq!(outcome.assignment.len(), 16);
        assert!(outcome.throughput.unwrap() > 0.0);
        assert!(outcome.cost[0] <= 1.0);
        // Serializes cleanly and round-trips through the JSON layer.
        let json = outcome.to_json().to_string();
        assert!(json.contains("throughput"));
        let back = SpecOutcome::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back.assignment, outcome.assignment);
        assert_eq!(back.cost, outcome.cost);
    }

    #[test]
    fn all_strategies_run() {
        for s in ["caps", "default", "evenly"] {
            let spec = DeploymentSpec::from_json(&builtin_spec(s)).unwrap();
            let out = spec.run().unwrap();
            assert_eq!(out.strategy, s);
        }
        let spec = DeploymentSpec::from_json(&builtin_spec("bogus")).unwrap();
        assert!(matches!(spec.run(), Err(SpecError::Invalid(_))));
    }

    #[test]
    fn custom_query_spec_runs() {
        let json = r#"{
            "query": { "custom": {
                "name": "mini",
                "operators": [
                    { "name": "src", "kind": "source", "parallelism": 2,
                      "cpu_per_record": 1e-5, "out_bytes_per_record": 100 },
                    { "name": "agg", "kind": "window", "parallelism": 4,
                      "cpu_per_record": 4e-4, "state_bytes_per_record": 2000,
                      "out_bytes_per_record": 50, "selectivity": 0.2 },
                    { "name": "sink", "kind": "sink", "parallelism": 1,
                      "cpu_per_record": 1e-6 }
                ],
                "edges": [
                    { "from": "src", "to": "agg", "pattern": "hash" },
                    { "from": "agg", "to": "sink", "pattern": "rebalance" }
                ],
                "source_mix": { "src": 1.0 }
            } },
            "cluster": { "workers": 2, "spec": "m5d.2xlarge", "slots": 4 },
            "rate": 5000.0,
            "simulate_secs": 20.0
        }"#;
        let spec = DeploymentSpec::from_json(json).unwrap();
        let out = spec.run().unwrap();
        assert_eq!(out.query, "mini");
        assert_eq!(out.rate, 5000.0);
        assert_eq!(out.assignment.len(), 7);
    }

    #[test]
    fn invalid_specs_report_errors() {
        assert!(DeploymentSpec::from_json("{").is_err());
        let bad_query = r#"{
            "query": { "builtin": "q99" },
            "cluster": { "workers": 2, "slots": 4 }
        }"#;
        let spec = DeploymentSpec::from_json(bad_query).unwrap();
        assert!(matches!(spec.run(), Err(SpecError::Invalid(_))));
        let bad_instance = r#"{
            "query": { "builtin": "q1" },
            "cluster": { "workers": 2, "spec": "t2.micro", "slots": 4 }
        }"#;
        let spec = DeploymentSpec::from_json(bad_instance).unwrap();
        assert!(matches!(spec.run(), Err(SpecError::Invalid(_))));
        let bad_rate = r#"{
            "query": { "builtin": "q1" },
            "cluster": { "workers": 4, "spec": "r5d.xlarge", "slots": 4 },
            "rate": -5.0
        }"#;
        let spec = DeploymentSpec::from_json(bad_rate).unwrap();
        assert!(matches!(spec.run(), Err(SpecError::Invalid(_))));
    }

    #[test]
    fn builtin_lookup_accepts_aliases() {
        assert!(builtin_query("Q1").is_ok());
        assert!(builtin_query("q5_aggregate").is_ok());
        assert!(builtin_query("q6-session").is_ok());
        assert!(builtin_query("nope").is_err());
    }

    #[test]
    fn zero_simulate_skips_simulation() {
        let json = r#"{
            "query": { "builtin": "q1" },
            "cluster": { "workers": 4, "spec": "r5d.xlarge", "slots": 4 },
            "strategy": "caps",
            "simulate_secs": 0.0
        }"#;
        let out = DeploymentSpec::from_json(json).unwrap().run().unwrap();
        assert!(out.throughput.is_none());
        assert!(out.backpressure.is_none());
    }
}
