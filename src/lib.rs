//! CAPSys: contention-aware task placement for data stream processing.
//!
//! A from-scratch Rust reproduction of the EuroSys '25 paper
//! *"CAPSys: Contention-aware task placement for data stream processing"*
//! (Wang, Huang, Wang, Kalavri, Matta). This facade crate re-exports the
//! whole workspace:
//!
//! * [`model`] — dataflow graphs, clusters, placement plans, task loads.
//! * [`caps`] — the CAPS cost model, placement search, and auto-tuning
//!   (the paper's primary contribution, §4-5).
//! * [`sim`] — a contention-aware stream-processing simulator standing in
//!   for the paper's Apache Flink clusters.
//! * [`placement`] — baseline strategies (Flink `default` and `evenly`).
//! * [`ds2`] — the DS2 auto-scaling controller.
//! * [`odrp`] — the ODRP ILP placement baseline.
//! * [`queries`] — the paper's six evaluation queries.
//! * [`controller`] — the end-to-end CAPSys controller (profiling, DS2,
//!   placement, reconfiguration).
//!
//! # Quickstart
//!
//! ```
//! use capsys::prelude::*;
//!
//! // The paper's Q1-sliding query on a 4-worker, 16-slot cluster (§3.2).
//! let query = capsys::queries::q1_sliding();
//! let cluster = Cluster::homogeneous(4, WorkerSpec::r5d_xlarge(4)).unwrap();
//! let physical = query.physical();
//! let loads = query.load_model(&physical).unwrap();
//!
//! // Search for a contention-balanced placement with CAPS.
//! let caps = CapsSearch::new(query.logical(), &physical, &cluster, &loads).unwrap();
//! let outcome = caps.run(&SearchConfig::auto_tuned()).unwrap();
//! let plan = outcome.best_plan().expect("a feasible plan exists");
//! assert!(plan.validate(&physical, &cluster).is_ok());
//! ```

#![warn(missing_docs)]
pub mod spec;

pub use capsys_controller as controller;
pub use capsys_util as util;
pub use capsys_core as caps;
pub use capsys_ds2 as ds2;
pub use capsys_model as model;
pub use capsys_odrp as odrp;
pub use capsys_placement as placement;
pub use capsys_queries as queries;
pub use capsys_sim as sim;

/// Convenient glob-import of the most common types.
pub mod prelude {
    pub use capsys_core::{AutoTuner, CapsSearch, CostModel, CostVector, SearchConfig, Thresholds};
    pub use capsys_ds2::Ds2Controller;
    pub use capsys_model::{
        Cluster, ConnectionPattern, LoadModel, LogicalGraph, OperatorId, OperatorKind,
        PhysicalGraph, Placement, RateSchedule, ResourceProfile, TaskId, WorkerId, WorkerSpec,
    };
    pub use capsys_placement::{FlinkDefault, FlinkEvenly, PlacementStrategy};
    pub use capsys_queries::Query;
    pub use capsys_sim::{SimConfig, Simulation, SimulationReport};
}
