//! Command-line interface to the CAPSys reproduction.
//!
//! ```text
//! capsys-cli queries                 list the built-in paper queries
//! capsys-cli plan <spec.json>        place a deployment spec, print JSON
//! capsys-cli simulate <spec.json>    place + simulate, print JSON
//! capsys-cli show <query>            describe a built-in query
//! ```
//!
//! Specs are JSON documents; see [`capsys::spec`] for the format.

use std::process::ExitCode;

use capsys::spec::{builtin_query, DeploymentSpec};

fn usage() -> ExitCode {
    eprintln!(
        "usage: capsys-cli <command> [args]\n\
         \n\
         commands:\n\
         \x20 queries              list built-in queries\n\
         \x20 show <query>         describe a built-in query\n\
         \x20 plan <spec.json>     compute a placement (no simulation)\n\
         \x20 simulate <spec.json> compute a placement and simulate it\n\
         \n\
         spec format: see the `capsys::spec` module documentation"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("queries") => {
            for name in [
                "q1-sliding",
                "q2-join",
                "q3-inf",
                "q4-join",
                "q5-aggregate",
                "q6-session",
            ] {
                let q = builtin_query(name).expect("builtin exists");
                println!(
                    "{name:<14} {} operators, {} tasks",
                    q.logical().num_operators(),
                    q.logical().total_tasks()
                );
            }
            ExitCode::SUCCESS
        }
        Some("show") => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            match builtin_query(name) {
                Ok(q) => {
                    println!("{}", q.name());
                    for op in q.logical().operators() {
                        println!(
                            "  {:<18} {:?} p={} cpu={:.1}us/rec state={:.0}B/rec out={:.0}B/rec sel={}",
                            op.name,
                            op.kind,
                            op.parallelism,
                            op.profile.cpu_per_record * 1e6,
                            op.profile.state_bytes_per_record,
                            op.profile.out_bytes_per_record,
                            op.profile.selectivity
                        );
                    }
                    for e in q.logical().edges() {
                        println!(
                            "  {} -> {} ({:?})",
                            q.logical().operator(e.from).name,
                            q.logical().operator(e.to).name,
                            e.pattern
                        );
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some(cmd @ ("plan" | "simulate")) => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let json = match std::fs::read_to_string(path) {
                Ok(j) => j,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut spec = match DeploymentSpec::from_json(&json) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            if cmd == "plan" {
                spec.simulate_secs = 0.0;
            } else if spec.simulate_secs <= 0.0 {
                spec.simulate_secs = 120.0;
            }
            match spec.run() {
                Ok(outcome) => {
                    println!("{}", capsys_util::json::ToJson::to_json(&outcome).to_pretty());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
