#!/usr/bin/env bash
# Hermetic CI for the CAPSys workspace.
#
# Runs entirely offline: the workspace has no external crate
# dependencies (everything external was replaced by crates/util —
# see DESIGN.md "Hermetic build"). This script is the contract:
#
#   1. dependency guard — no non-capsys-* dependency may appear in any
#      Cargo.toml (including dev-dependencies and benches);
#   2. release build of every target;
#   3. full test suite (debug), including the determinism golden test;
#   4. determinism golden test again in release (debug/release parity);
#   5. one smoke bench end-to-end, emitting a timing result.
#
# Usage: scripts/ci.sh

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> [1/5] dependency guard: workspace-internal crates only"
# Collect every dependency key from every manifest. Dependency lines are
# `name = ...` or `name.workspace = true` inside a [*dependencies*]
# section; only capsys-* names are allowed.
violations=0
for manifest in Cargo.toml crates/*/Cargo.toml; do
    deps=$(awk '
        /^\[/ { in_deps = ($0 ~ /dependencies/) }
        in_deps && /^[A-Za-z0-9_-]+(\.workspace)? *=/ {
            split($0, parts, /[. =]/); print parts[1]
        }
    ' "$manifest")
    for dep in $deps; do
        case "$dep" in
            capsys-*) ;;
            *)
                echo "FORBIDDEN external dependency \`$dep\` in $manifest" >&2
                violations=$((violations + 1))
                ;;
        esac
    done
done
if [ "$violations" -ne 0 ]; then
    echo "dependency guard failed: $violations external dependencies" >&2
    echo "(the build environment is offline; add std-only code to crates/util instead)" >&2
    exit 1
fi
echo "    ok: all dependencies are capsys-* path crates"

echo "==> [2/5] cargo build --release (all targets)"
cargo build --release --workspace --all-targets

echo "==> [3/5] cargo test (debug, full workspace)"
cargo test -q --workspace

echo "==> [4/5] determinism golden test (release)"
cargo test -q --release --test golden_determinism

echo "==> [5/5] smoke bench (quick mode, end-to-end)"
CAPSYS_BENCH_QUICK=1 cargo bench -p capsys-bench --bench caps_search

echo "CI green."
