#!/usr/bin/env bash
# Hermetic CI for the CAPSys workspace.
#
# Runs entirely offline: the workspace has no external crate
# dependencies (everything external was replaced by crates/util —
# see DESIGN.md "Hermetic build"). This script is the contract:
#
#   1. tree guard — no build artifacts (target/) may be tracked;
#   2. dependency guard — no non-capsys-* dependency may appear in any
#      Cargo.toml (including dev-dependencies and benches);
#   3. release build of every target;
#   4. full test suite (debug), including the determinism golden test;
#   5. determinism golden test again in release (debug/release parity);
#   6. one smoke bench end-to-end, emitting a timing result;
#   7. chaos smoke — seeded fault injection + self-healing recovery,
#      including its own same-seed replay check;
#   8. search perf smoke — thread-scaling + auto-tune warm-start run that
#      writes BENCH_search.json and self-asserts (identical plan counts
#      across thread counts, warm tune never probing more than cold, and
#      a speedup floor gated on the machine's hardware threads);
#   9. recovery sweep — kill the controller after every journaled
#      decision (including between Prepare and Commit), recover from the
#      write-ahead journal, and diff the recovered trace and journal
#      byte-for-byte against the uninterrupted golden run; also checks
#      zombie fencing.
#
# Usage: scripts/ci.sh

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> [1/9] tree guard: no tracked build artifacts"
if git ls-files | grep -q '^target/'; then
    echo "FORBIDDEN: build artifacts under target/ are tracked" >&2
    echo "(run: git rm -r --cached target)" >&2
    exit 1
fi
echo "    ok: target/ is untracked"

echo "==> [2/9] dependency guard: workspace-internal crates only"
# Collect every dependency key from every manifest. Dependency lines are
# `name = ...` or `name.workspace = true` inside a [*dependencies*]
# section; only capsys-* names are allowed.
violations=0
for manifest in Cargo.toml crates/*/Cargo.toml; do
    deps=$(awk '
        /^\[/ { in_deps = ($0 ~ /dependencies/) }
        in_deps && /^[A-Za-z0-9_-]+(\.workspace)? *=/ {
            split($0, parts, /[. =]/); print parts[1]
        }
    ' "$manifest")
    for dep in $deps; do
        case "$dep" in
            capsys-*) ;;
            *)
                echo "FORBIDDEN external dependency \`$dep\` in $manifest" >&2
                violations=$((violations + 1))
                ;;
        esac
    done
done
if [ "$violations" -ne 0 ]; then
    echo "dependency guard failed: $violations external dependencies" >&2
    echo "(the build environment is offline; add std-only code to crates/util instead)" >&2
    exit 1
fi
echo "    ok: all dependencies are capsys-* path crates"

echo "==> [3/9] cargo build --release (all targets)"
cargo build --release --workspace --all-targets

echo "==> [4/9] cargo test (debug, full workspace)"
cargo test -q --workspace

echo "==> [5/9] determinism golden test (release)"
cargo test -q --release --test golden_determinism

echo "==> [6/9] smoke bench (quick mode, end-to-end)"
CAPSYS_BENCH_QUICK=1 cargo bench -p capsys-bench --bench caps_search

echo "==> [7/9] chaos smoke (fault injection + recovery, seed 7)"
cargo run --release -p capsys-bench --bin exp_chaos -- --seed 7 --quick

echo "==> [8/9] search perf smoke (thread scaling + warm-start, BENCH_search.json)"
# exp_perf asserts its own invariants (determinism across thread counts,
# warm-start probe economy, hardware-gated speedup floor) and validates
# the JSON it wrote; a malformed record fails this step.
cargo run --release -p capsys-bench --bin exp_perf -- --smoke

echo "==> [9/9] recovery sweep (kill-at-every-decision crash recovery, seed 7)"
# exp_recovery self-asserts: every kill point recovers to a
# byte-identical trace AND journal, the mid-reconfiguration kill rolls
# forward, a chaos-drawn wall-clock kill recovers, and a zombie
# controller is fenced.
cargo run --release -p capsys-bench --bin exp_recovery -- --seed 7 --smoke

echo "CI green."
