#!/usr/bin/env bash
# Hermetic CI for the CAPSys workspace.
#
# Runs entirely offline: the workspace has no external crate
# dependencies (everything external was replaced by crates/util —
# see DESIGN.md "Hermetic build"). This script is the contract:
#
#   1. tree guard — no build artifacts (target/) may be tracked;
#   2. dependency guard — no non-capsys-* dependency may appear in any
#      Cargo.toml (including dev-dependencies and benches);
#   3. panic lint — no unwrap()/expect(/panic! in non-test code under
#      crates/, outside the justified scripts/panic_allowlist.txt;
#   4. release build of every target;
#   5. full test suite (debug), including the determinism golden test;
#      then the capsys-util suite again in release with
#      -C overflow-checks=yes (the Fixed64 core must never wrap);
#   6. determinism golden test again in release (debug/release parity);
#   7. one smoke bench end-to-end, emitting a timing result;
#   8. chaos smoke — seeded fault injection + self-healing recovery
#      under three distinct seeds, each with a same-seed replay check;
#   9. search perf smoke — thread-scaling + auto-tune warm-start +
#      dead-state-memo run that writes BENCH_search.json and
#      self-asserts (identical plan counts across thread counts,
#      bit-exact stored costs, warm tune never probing more than cold,
#      memo firing on the symmetric topology without changing the plan
#      set, and a speedup floor that is explicitly marked skipped on
#      machines with < 4 hardware threads);
#  10. guard smoke — the reconfiguration safety governor under a
#      model-skew fault: governor-off regresses and stays regressed,
#      governor-on detects within one probation window, rolls back to
#      last-known-good, bounds oscillation, and replays identically;
#  11. recovery sweep — kill the controller after every journaled
#      decision (including between Prepare and Commit, and between a
#      governor Rollback and its Commit), recover from the write-ahead
#      journal, and diff the recovered trace and journal byte-for-byte
#      against the uninterrupted golden run, under three distinct seeds;
#      also checks zombie fencing; a fourth scenario journals an
#      incremental migration and sweeps kills across its
#      MigratePrepare/MigrateStep/MigrateCommit records;
#  12. migration smoke — whole-plan redeploy vs minimum-movement
#      incremental migration A/B on the same seeded crash: less state
#      moved, less downtime, less throughput lost, the journaled
#      target re-derived byte-identically through the exported
#      optimizer and within epsilon of the unconstrained optimum,
#      under three distinct seeds;
#  13. anytime search smoke — DFS vs MCTS backends under a shared node
#      budget (seeds 7/11/23), writing BENCH_anytime.json and
#      self-asserting that MCTS matches the DFS optimum bit-for-bit at
#      16 tasks, returns feasible plans at 256/1024 tasks where the
#      budgeted DFS exhausts with none, keeps every anytime curve
#      monotone non-increasing, and replays byte-identically under the
#      same seed;
#  14. hostile-workload smoke — seeded adversarial traffic
#      (seeds 7/11/23), writing BENCH_hostile.json and self-asserting
#      that the drift-aware governor performs zero rollbacks under pure
#      organic growth and flash crowds where the absolute-baseline
#      governor false-rollbacks on every flash seed, an injected true
#      regression is still rolled back within one probation window,
#      the shedding controller engages under sustained overload,
#      bounds backpressure, wins latency-gated goodput over the
#      unshedded baseline, releases once the crowd decays, and a
#      controller kill right after the first journaled Shed record
#      recovers byte-identically;
#  15. fleet smoke — sharded multi-tenant control plane
#      (seeds 7/11/23), writing BENCH_fleet.json and self-asserting
#      that with 6 tenants on a 120-worker heterogeneous fleet, a
#      shard controller killed mid-reconfiguration fails over to a
#      standby within the lease MTTR bound, a controller partitioned
#      past its lease is fenced as a zombie with zero split-brain
#      stamps, the arbiter recovers from its own WAL mid-run, every
#      shard's trace and journal replay byte-identically from journal
#      + recorded history, aggregate goodput stays within 10% of the
#      no-kill baseline, an over-subscribed tenant is rejected at
#      admission, and a same-seed re-run is byte-identical.
#
# Each step prints its own wall-clock time on completion.
#
# Usage: scripts/ci.sh

set -euo pipefail
cd "$(dirname "$0")/.."

CI_T0=$(date +%s)
STEP_T0=$CI_T0
step() {
    STEP_T0=$(date +%s)
    echo "==> [$1] $2"
}
step_done() {
    echo "    [done in $(($(date +%s) - STEP_T0))s]"
}

step "1/15" "tree guard: no tracked build artifacts"
if git ls-files | grep -q '^target/'; then
    echo "FORBIDDEN: build artifacts under target/ are tracked" >&2
    echo "(run: git rm -r --cached target)" >&2
    exit 1
fi
echo "    ok: target/ is untracked"
step_done

step "2/15" "dependency guard: workspace-internal crates only"
# Collect every dependency key from every manifest. Dependency lines are
# `name = ...` or `name.workspace = true` inside a [*dependencies*]
# section; only capsys-* names are allowed.
violations=0
for manifest in Cargo.toml crates/*/Cargo.toml; do
    deps=$(awk '
        /^\[/ { in_deps = ($0 ~ /dependencies/) }
        in_deps && /^[A-Za-z0-9_-]+(\.workspace)? *=/ {
            split($0, parts, /[. =]/); print parts[1]
        }
    ' "$manifest")
    for dep in $deps; do
        case "$dep" in
            capsys-*) ;;
            *)
                echo "FORBIDDEN external dependency \`$dep\` in $manifest" >&2
                violations=$((violations + 1))
                ;;
        esac
    done
done
if [ "$violations" -ne 0 ]; then
    echo "dependency guard failed: $violations external dependencies" >&2
    echo "(the build environment is offline; add std-only code to crates/util instead)" >&2
    exit 1
fi
echo "    ok: all dependencies are capsys-* path crates"
step_done

step "3/15" "panic lint: no unwrap/expect/panic! in non-test code"
# Library code must surface failures as Results — a panicking controller
# is the exact failure mode the robustness work guards against. Unit-test
# modules (everything from the first #[cfg(test)] down) and the justified
# files in scripts/panic_allowlist.txt are exempt.
allow_file="scripts/panic_allowlist.txt"
violations=0
for file in $(git ls-files | grep -E '^crates/[^/]+/src/.*\.rs$'); do
    skip=0
    while IFS= read -r prefix; do
        case "$prefix" in '' | \#*) continue ;; esac
        case "$file" in "$prefix"*)
            skip=1
            break
            ;;
        esac
    done <"$allow_file"
    [ "$skip" -eq 1 ] && continue
    hits=$(awk '/#\[cfg\(test\)\]/ { exit } { print NR": "$0 }' "$file" \
        | grep -vE '^[0-9]+:[[:space:]]*//' \
        | grep -E '\.unwrap\(\)|\.expect\(|panic!' || true)
    if [ -n "$hits" ]; then
        echo "PANIC-PRONE code in $file (not in $allow_file):" >&2
        echo "$hits" >&2
        violations=$((violations + 1))
    fi
done
if [ "$violations" -ne 0 ]; then
    echo "panic lint failed in $violations file(s)" >&2
    echo "(return a Result, or justify an allowlist entry)" >&2
    exit 1
fi
echo "    ok: non-test library code is panic-free"
step_done

step "4/15" "cargo build --release (all targets)"
cargo build --release --workspace --all-targets
step_done

step "5/15" "cargo test (debug, full workspace)"
cargo test -q --workspace
step_done

step "5b/15" "fixed-point overflow checks (capsys-util, release + overflow-checks)"
# The Fixed64 core promises saturating/checked arithmetic, never a
# silent two's-complement wrap. Release builds normally disable
# overflow checks, so any unchecked `+`/`-`/`*` on a raw mantissa would
# pass plain release tests and still wrap in production; this run turns
# the checks back on so such an op aborts the suite instead.
RUSTFLAGS="${RUSTFLAGS:-} -C overflow-checks=yes" \
    cargo test -q --release -p capsys-util --target-dir target/overflow-checks
step_done

step "6/15" "determinism golden test (release)"
cargo test -q --release --test golden_determinism
step_done

step "7/15" "smoke bench (quick mode, end-to-end)"
CAPSYS_BENCH_QUICK=1 cargo bench -p capsys-bench --bench caps_search
step_done

step "8/15" "chaos smoke (fault injection + recovery, seeds 7/11/23)"
for seed in 7 11 23; do
    cargo run --release -p capsys-bench --bin exp_chaos -- --seed "$seed" --quick
done
step_done

step "9/15" "search perf smoke (thread scaling + warm-start, BENCH_search.json)"
# exp_perf asserts its own invariants (determinism across thread counts,
# warm-start probe economy, hardware-gated speedup floor) and validates
# the JSON it wrote; a malformed record fails this step.
cargo run --release -p capsys-bench --bin exp_perf -- --smoke
step_done

step "10/15" "guard smoke (safety governor vs model skew, seed 7)"
# exp_guard self-asserts: without the governor the stale-model regression
# persists; with it, the regression is detected within one probation
# window, rolled back to last-known-good, throughput recovers, churn
# stays within the rollback cap, and same-seed runs replay identically.
cargo run --release -p capsys-bench --bin exp_guard -- --seed 7 --quick
step_done

step "11/15" "recovery sweep (kill-at-every-decision crash recovery, seeds 7/11/23)"
# exp_recovery self-asserts: every kill point recovers to a
# byte-identical trace AND journal, the mid-reconfiguration kill rolls
# forward (for scaling Prepares, governor Rollbacks, and mid-wave
# migrations alike), a chaos-drawn wall-clock kill recovers, and a
# zombie controller is fenced.
for seed in 7 11 23; do
    cargo run --release -p capsys-bench --bin exp_recovery -- --seed "$seed" --smoke
done
step_done

step "12/15" "migration smoke (incremental vs whole-plan A/B, seeds 7/11/23)"
# exp_migrate self-asserts: the incremental arm moves strictly fewer
# bytes, pauses strictly fewer task-seconds, and loses strictly less
# throughput area than the whole-plan arm on the same crash; the
# journaled two-phase wave protocol is complete and minimal; the
# migration target re-derives byte-identically and lands within
# epsilon of the cost optimum; same-seed runs replay identically.
for seed in 7 11 23; do
    cargo run --release -p capsys-bench --bin exp_migrate -- --seed "$seed" --smoke
done
step_done

step "13/15" "anytime search smoke (DFS vs MCTS, BENCH_anytime.json, seeds 7/11/23)"
# exp_search self-asserts: MCTS == DFS optimum at 16 tasks (Fixed64 bit
# equality, every seed), MCTS feasible within the budget at 256/1024
# tasks where the DFS reports budget exhaustion with zero plans,
# monotone anytime curves, and a byte-identical same-seed replay; it
# also validates the BENCH_anytime.json it wrote.
cargo run --release -p capsys-bench --bin exp_search -- --smoke
step_done

step "14/15" "hostile-workload smoke (governor drift A/B + overload shedding, seeds 7/11/23)"
# exp_hostile self-asserts: zero drift-aware rollbacks under pure
# growth and flash crowds (absolute baseline false-rollbacks on every
# flash seed), a true regression still caught within one probation
# window, shedding engages/bounds backpressure/wins goodput/releases
# under an 8x flash crowd, every shed change is journaled, and the
# whole hostile run replays byte-identically after a controller kill;
# it also validates the BENCH_hostile.json it wrote.
cargo run --release -p capsys-bench --bin exp_hostile -- --smoke
step_done

step "15/15" "fleet smoke (sharded control plane + lease-fenced failover, seeds 7/11/23)"
# exp_fleet self-asserts: a shard controller killed mid-reconfiguration
# fails over to a standby within the lease MTTR bound, a partitioned
# controller is fenced as a zombie (zero split-brain stamps), the
# arbiter recovers from its own WAL mid-run, every shard's trace and
# journal replay byte-identically from journal + recorded history,
# aggregate goodput stays within 10% of the no-kill baseline, the
# over-subscribed tenant is rejected at admission, and a same-seed
# re-run is byte-identical; it also validates the BENCH_fleet.json it
# wrote.
for seed in 7 11 23; do
    cargo run --release -p capsys-bench --bin exp_fleet -- --seed "$seed" --smoke
done
step_done

echo "CI green in $(($(date +%s) - CI_T0))s."
