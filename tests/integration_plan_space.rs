//! Integration: plan-space structure on the paper's real queries.

use capsys::caps::{CapsSearch, SearchConfig, Thresholds};
use capsys::model::{count_plans, enumerate_plans, Cluster, WorkerSpec};
use capsys::queries::{q1_sliding, q2_join, q3_inf};

fn study_cluster() -> Cluster {
    Cluster::homogeneous(4, WorkerSpec::r5d_xlarge(4)).unwrap()
}

#[test]
fn paper_plan_counts_hold() {
    // §3.2 / §3.3: 80, 665, and 950 distinct plans on the 16-slot cluster.
    let c = study_cluster();
    assert_eq!(count_plans(&q1_sliding().physical(), &c).unwrap(), 80);
    assert_eq!(count_plans(&q2_join().physical(), &c).unwrap(), 665);
    assert_eq!(count_plans(&q3_inf().physical(), &c).unwrap(), 950);
}

#[test]
fn exhaustive_search_agrees_with_enumeration_on_q1() {
    let c = study_cluster();
    let q = q1_sliding();
    let physical = q.physical();
    let loads = q.load_model(&physical).unwrap();
    let search = CapsSearch::new(q.logical(), &physical, &c, &loads).unwrap();
    let out = search
        .run(&SearchConfig {
            max_plans: 1 << 20,
            ..SearchConfig::exhaustive()
        })
        .unwrap();
    assert_eq!(out.stats.plans_found, 80);
    // Every enumerated plan appears exactly once (canonical keys match).
    let mut search_keys: Vec<_> = out
        .feasible
        .iter()
        .map(|s| s.plan.canonical_key(&physical, 4))
        .collect();
    let mut enum_keys: Vec<_> = enumerate_plans(&physical, &c, usize::MAX)
        .unwrap()
        .iter()
        .map(|p| p.canonical_key(&physical, 4))
        .collect();
    search_keys.sort();
    enum_keys.sort();
    assert_eq!(search_keys, enum_keys);
}

#[test]
fn threshold_pruning_is_exact_on_q3() {
    // The pruned search must find exactly the plans whose cost satisfies
    // the thresholds — no more, no fewer (§4.4.1 soundness).
    let c = study_cluster();
    let q = q3_inf();
    let physical = q.physical();
    let loads = q.load_model(&physical).unwrap();
    let search = CapsSearch::new(q.logical(), &physical, &c, &loads).unwrap();
    let all = search
        .run(&SearchConfig {
            max_plans: 1 << 20,
            ..SearchConfig::exhaustive()
        })
        .unwrap();
    for th in [
        Thresholds::new(0.5, 1.0, 1.0),
        Thresholds::new(0.2, 0.8, 0.9),
    ] {
        let expected = all.feasible.iter().filter(|s| s.cost.within(&th)).count();
        let pruned = search
            .run(&SearchConfig {
                max_plans: 1 << 20,
                ..SearchConfig::with_thresholds(th)
            })
            .unwrap();
        assert_eq!(pruned.stats.plans_found, expected, "thresholds {th:?}");
        assert!(pruned.stats.nodes <= all.stats.nodes);
    }
}

#[test]
fn reordering_reduces_nodes_under_tight_thresholds() {
    let c = study_cluster();
    let q = q3_inf();
    let physical = q.physical();
    let loads = q.load_model(&physical).unwrap();
    let search = CapsSearch::new(q.logical(), &physical, &c, &loads).unwrap();
    let th = Thresholds::new(0.15, f64::INFINITY, f64::INFINITY);
    let plain = search
        .run(&SearchConfig {
            reorder: false,
            max_plans: 1,
            ..SearchConfig::with_thresholds(th)
        })
        .unwrap();
    let reordered = search
        .run(&SearchConfig {
            reorder: true,
            max_plans: 1,
            ..SearchConfig::with_thresholds(th)
        })
        .unwrap();
    assert_eq!(plain.stats.plans_found, reordered.stats.plans_found);
    assert!(
        reordered.stats.nodes < plain.stats.nodes,
        "reordering should prune earlier: {} vs {}",
        reordered.stats.nodes,
        plain.stats.nodes
    );
}

#[test]
fn parallel_search_is_deterministic_in_results() {
    let c = study_cluster();
    let q = q2_join();
    let physical = q.physical();
    let loads = q.load_model(&physical).unwrap();
    let search = CapsSearch::new(q.logical(), &physical, &c, &loads).unwrap();
    let th = Thresholds::new(0.4, 0.4, 0.9);
    let seq = search
        .run(&SearchConfig {
            max_plans: 1 << 20,
            ..SearchConfig::with_thresholds(th)
        })
        .unwrap();
    let par = search
        .run(&SearchConfig {
            max_plans: 1 << 20,
            threads: 4,
            ..SearchConfig::with_thresholds(th)
        })
        .unwrap();
    assert_eq!(seq.stats.plans_found, par.stats.plans_found);
    let best_seq = seq.best_scored().unwrap().cost;
    let best_par = par.best_scored().unwrap().cost;
    assert!((best_seq.max_component() - best_par.max_component()).abs() < 1e-9);
}
