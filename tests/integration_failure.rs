//! Integration: worker failure, detection, and CAPS-based recovery.
//!
//! Not an experiment from the paper, but the scenario an *adaptive*
//! resource controller exists for: a worker dies, throughput collapses,
//! and the controller re-places the job on the surviving workers using
//! the `free_slots` search extension.

use capsys::caps::{CapsSearch, SearchConfig};
use capsys::controller::{ClosedLoop, ClosedLoopTrace, LadderRung, RecoveryConfig};
use capsys::ds2::Ds2Config;
use capsys::model::{Cluster, RateSchedule, WorkerId, WorkerSpec};
use capsys::placement::{CapsStrategy, PlacementContext, PlacementStrategy};
use capsys::queries::q1_sliding;
use capsys::sim::{FaultEvent, FaultKind, FaultPlan, SimConfig, Simulation};
use capsys_util::rng::SmallRng;
use capsys_util::rng::SeedableRng;

#[test]
fn caps_replacement_recovers_from_worker_failure() {
    // 6 workers, 16 tasks: enough slack to survive losing one worker.
    let cluster = Cluster::homogeneous(6, WorkerSpec::r5d_xlarge(4)).unwrap();
    let query = q1_sliding();
    let physical = query.physical();
    let rate = query.capacity_rate(&cluster, 0.55).unwrap();
    let loads = query.load_model_at(&physical, rate).unwrap();

    // Initial CAPS deployment.
    let ctx = PlacementContext {
        logical: query.logical(),
        physical: &physical,
        cluster: &cluster,
        loads: &loads,
    };
    let mut rng = SmallRng::seed_from_u64(1);
    let plan = CapsStrategy::default().place(&ctx, &mut rng).unwrap();
    let schedules = query.schedules(rate);
    let mut sim = Simulation::new(
        query.logical(),
        &physical,
        &cluster,
        &plan,
        &schedules,
        SimConfig {
            duration: 1.0,
            warmup: 0.0,
            ..SimConfig::default()
        },
    )
    .unwrap();
    let healthy = sim.advance(30.0, 10.0);
    assert!(healthy.meets_target(0.95), "healthy run below target");

    // A worker hosting at least one task dies.
    let victim = WorkerId(plan.worker_of(capsys::model::TaskId(0)).0);
    sim.fail_worker(victim);
    let degraded = sim.advance(30.0, 5.0);
    assert!(
        degraded.avg_throughput < 0.9 * rate || degraded.avg_backpressure > 0.3,
        "failure had no visible effect: tput {} bp {}",
        degraded.avg_throughput,
        degraded.avg_backpressure
    );

    // Recovery: re-place on the survivors (failed worker gets 0 slots).
    let mut free: Vec<usize> = cluster.workers().iter().map(|w| w.spec.slots).collect();
    free[victim.0] = 0;
    let search = CapsSearch::new(query.logical(), &physical, &cluster, &loads).unwrap();
    let outcome = search
        .run(&SearchConfig {
            free_slots: Some(free),
            ..SearchConfig::auto_tuned()
        })
        .unwrap();
    let recovery_plan = outcome
        .best_plan()
        .expect("survivors can host the job")
        .clone();
    recovery_plan.validate(&physical, &cluster).unwrap();
    assert!(
        recovery_plan.tasks_on(victim).is_empty(),
        "recovery plan still uses the failed worker"
    );

    // Redeploy (restart-from-savepoint analogue) with the victim still
    // down and verify the job meets its target again.
    let mut sim2 = Simulation::new(
        query.logical(),
        &physical,
        &cluster,
        &recovery_plan,
        &schedules,
        SimConfig {
            duration: 1.0,
            warmup: 0.0,
            ..SimConfig::default()
        },
    )
    .unwrap();
    sim2.fail_worker(victim);
    let recovered = sim2.advance(40.0, 10.0);
    assert!(
        recovered.meets_target(0.93),
        "recovery below target: {} of {}",
        recovered.avg_throughput,
        rate
    );
}

/// Runs the self-healing closed loop against a scripted crash of the
/// worker hosting task 0 and returns (victim, target rate, trace).
fn chaos_loop_run(seed: u64) -> (WorkerId, f64, ClosedLoopTrace) {
    let query = q1_sliding();
    let cluster = Cluster::homogeneous(6, WorkerSpec::r5d_xlarge(4)).unwrap();
    let target = query.capacity_rate(&cluster, 0.5).unwrap();
    let strategy = CapsStrategy::default();
    let loop_ = ClosedLoop::new(
        &query,
        &cluster,
        &strategy,
        Ds2Config {
            activation_period: 60.0,
            policy_interval: 5.0,
            max_parallelism: 8,
            headroom: 1.0,
        },
        SimConfig {
            duration: 1.0,
            warmup: 0.0,
            ..SimConfig::default()
        },
        RateSchedule::Constant(target),
        seed,
    )
    .unwrap();
    // Crash a worker the initial placement actually uses, 60s in.
    let victim = loop_.placement().worker_of(capsys::model::TaskId(0));
    let plan = FaultPlan {
        events: vec![FaultEvent {
            time: 60.0,
            kind: FaultKind::Crash(victim),
        }],
        metric_noise: 0.0,
        controller_kill: None,
        model_skew: None,
        decider_faults: vec![],
    };
    let trace = loop_
        .with_fault_plan(plan)
        .unwrap()
        .with_recovery(RecoveryConfig::default())
        .run(300.0)
        .expect("closed loop survives a worker crash");
    (victim, target, trace)
}

#[test]
fn closed_loop_detects_crash_and_recovers_throughput() {
    let (victim, target, trace) = chaos_loop_run(7);

    // The detector declared exactly the crashed worker down and the
    // ladder's first rung (full CAPS) re-placed the job.
    assert_eq!(trace.recovery_events.len(), 1, "expected one recovery");
    let ev = &trace.recovery_events[0];
    assert_eq!(ev.worker, victim);
    assert!(
        ev.detected_at > 60.0 && ev.detected_at <= 90.0,
        "detection at {} outside (60, 90]",
        ev.detected_at
    );
    assert_eq!(ev.rung, LadderRung::Caps);
    assert!(ev.time_to_recover >= ev.detection_lag);

    // After recovery settles the job tracks >= 95% of its target.
    let from = ev.recovered_at + 60.0;
    let tp = trace.avg_throughput(from, 300.0);
    assert!(
        tp >= 0.95 * target,
        "post-recovery throughput {tp} below 95% of {target}"
    );
    // The outage itself was visible: some throughput was lost.
    assert!(trace.throughput_loss_area(0.0, 300.0) > 0.0);
}

#[test]
fn closed_loop_chaos_runs_replay_identically() {
    let (_, _, a) = chaos_loop_run(7);
    let (_, _, b) = chaos_loop_run(7);
    assert_eq!(a.recovery_events, b.recovery_events);
    assert_eq!(a.events, b.events);
    assert_eq!(a.points, b.points);
}

#[test]
fn free_slots_search_never_uses_excluded_workers() {
    let cluster = Cluster::homogeneous(4, WorkerSpec::r5d_xlarge(8)).unwrap();
    let query = q1_sliding();
    let physical = query.physical();
    let loads = query.load_model_at(&physical, 8000.0).unwrap();
    let search = CapsSearch::new(query.logical(), &physical, &cluster, &loads).unwrap();
    let outcome = search
        .run(&SearchConfig {
            free_slots: Some(vec![0, 8, 8, 8]),
            max_plans: 128,
            ..SearchConfig::auto_tuned()
        })
        .unwrap();
    assert!(!outcome.feasible.is_empty());
    for scored in &outcome.feasible {
        assert!(scored.plan.tasks_on(WorkerId(0)).is_empty());
    }
}
