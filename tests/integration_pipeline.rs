//! Integration: the full CAPSys pipeline (profile → DS2 → CAPS → sim)
//! across the evaluation queries.

use capsys::controller::{profile_query, CapsysController, ProfilerConfig};
use capsys::model::{Cluster, WorkerSpec};
use capsys::queries::{all_queries, q2_join, q6_session};
use capsys::sim::{SimConfig, Simulation};

#[test]
fn profiling_recovers_profiles_for_all_queries() {
    for query in all_queries() {
        let report = profile_query(&query, &ProfilerConfig::default())
            .unwrap_or_else(|e| panic!("{} profiling failed: {e}", query.name()));
        assert!(
            report.backpressure < 0.05,
            "{}: probe run saturated ({:.1}%)",
            query.name(),
            report.backpressure * 100.0
        );
        for (op, measured) in query.logical().operators().iter().zip(&report.profiles) {
            let truth = op.profile;
            if truth.cpu_per_record > 1e-9 {
                let rel =
                    (measured.cpu_per_record - truth.cpu_per_record).abs() / truth.cpu_per_record;
                assert!(
                    rel < 0.25,
                    "{}/{}: cpu measured {} vs true {}",
                    query.name(),
                    op.name,
                    measured.cpu_per_record,
                    truth.cpu_per_record
                );
            }
        }
    }
}

#[test]
fn planned_deployments_sustain_their_targets() {
    // The full pipeline must produce deployments that actually hit the
    // requested rate when simulated with the ground-truth profiles.
    let cluster = Cluster::homogeneous(4, WorkerSpec::m5d_2xlarge(8)).unwrap();
    for query in [q2_join(), q6_session()] {
        let target = query.capacity_rate(&cluster, 0.6).unwrap();
        let controller = CapsysController::default();
        let deployment = controller.plan(&query, &cluster, target).unwrap();
        deployment
            .placement
            .validate(&deployment.physical, &cluster)
            .unwrap();

        let planned = query
            .with_parallelism(&deployment.logical.parallelism_vector())
            .unwrap();
        let physical = planned.physical();
        let schedules = planned.schedules(target);
        let mut sim = Simulation::new(
            planned.logical(),
            &physical,
            &cluster,
            &deployment.placement,
            &schedules,
            SimConfig::short(),
        )
        .unwrap();
        let report = sim.run();
        assert!(
            report.meets_target(0.9),
            "{}: planned deployment reached {:.0} of {:.0}",
            query.name(),
            report.avg_throughput,
            target
        );
    }
}

#[test]
fn plan_reuses_profiles_across_rates() {
    // Profiling runs once (§5.1); replanning at a different rate reuses it.
    let cluster = Cluster::homogeneous(4, WorkerSpec::m5d_2xlarge(8)).unwrap();
    let query = q2_join();
    let controller = CapsysController::default();
    let profile = profile_query(&query, &controller.config.profiler).unwrap();
    let low = controller
        .plan_with_profiles(&query, &cluster, 20_000.0, profile.clone())
        .unwrap();
    let high = controller
        .plan_with_profiles(&query, &cluster, 60_000.0, profile)
        .unwrap();
    assert!(
        high.slots_used > low.slots_used,
        "higher rate should need more slots: {} vs {}",
        high.slots_used,
        low.slots_used
    );
}
