//! Property-based tests on the core invariants, spanning crates.

use std::collections::HashMap;

use capsys::caps::{CapsSearch, CostModel, SearchConfig, Thresholds};
use capsys::model::{
    count_plans, enumerate_plans, Cluster, ConnectionPattern, LoadModel, LogicalGraph, OperatorId,
    OperatorKind, PhysicalGraph, Placement, RateSchedule, ResourceProfile, WorkerId, WorkerSpec,
};
use capsys::sim::{SimConfig, Simulation};
use proptest::prelude::*;

/// Strategy: a random linear dataflow with 2-4 operators and bounded
/// parallelism, plus a cluster that always fits it.
fn arb_problem() -> impl Strategy<Value = (LogicalGraph, Cluster)> {
    let op_count = 2usize..=4;
    op_count
        .prop_flat_map(|n| {
            let pars = proptest::collection::vec(1usize..=4, n);
            let cpus = proptest::collection::vec(1e-5f64..2e-3, n);
            let ios = proptest::collection::vec(0.0f64..5000.0, n);
            let outs = proptest::collection::vec(1.0f64..1000.0, n);
            let sels = proptest::collection::vec(0.1f64..1.5, n);
            (pars, cpus, ios, outs, sels, 2usize..=4, 2usize..=6)
        })
        .prop_map(|(pars, cpus, ios, outs, sels, workers, extra_slots)| {
            let mut b = LogicalGraph::builder("prop");
            let n = pars.len();
            let mut prev = None;
            for i in 0..n {
                let kind = if i == 0 {
                    OperatorKind::Source
                } else if i + 1 == n {
                    OperatorKind::Sink
                } else {
                    OperatorKind::Stateless
                };
                let sel = if i + 1 == n { 1.0 } else { sels[i] };
                let id = b.operator(
                    format!("op{i}"),
                    kind,
                    pars[i],
                    ResourceProfile::new(cpus[i], ios[i], outs[i], sel),
                );
                if let Some(p) = prev {
                    b.edge(p, id, ConnectionPattern::Hash);
                }
                prev = Some(id);
            }
            let g = b.build().expect("valid linear graph");
            let total = g.total_tasks();
            let slots = total.div_ceil(workers) + extra_slots;
            let cluster = Cluster::homogeneous(workers, WorkerSpec::new(slots, 2.0, 1e8, 1e9))
                .expect("valid cluster");
            (g, cluster)
        })
}

fn loads_for(g: &LogicalGraph, physical: &PhysicalGraph, rate: f64) -> LoadModel {
    let rates: HashMap<OperatorId, f64> = g.sources().into_iter().map(|s| (s, rate)).collect();
    LoadModel::derive(g, physical, &rates).expect("load model")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn costs_stay_in_unit_interval((g, cluster) in arb_problem()) {
        let physical = PhysicalGraph::expand(&g);
        let loads = loads_for(&g, &physical, 1000.0);
        let model = CostModel::new(&physical, &cluster, &loads).expect("model");
        for plan in enumerate_plans(&physical, &cluster, 200).expect("plans") {
            let c = model.cost(&physical, &plan);
            prop_assert!(c.cpu >= -1e-9 && c.cpu <= 1.0 + 1e-9, "C_cpu {}", c.cpu);
            prop_assert!(c.io >= -1e-9 && c.io <= 1.0 + 1e-9, "C_io {}", c.io);
            prop_assert!(c.net >= -1e-9 && c.net <= 1.0 + 1e-9, "C_net {}", c.net);
        }
    }

    #[test]
    fn search_matches_cost_filter((g, cluster) in arb_problem()) {
        let physical = PhysicalGraph::expand(&g);
        let loads = loads_for(&g, &physical, 1000.0);
        let search = CapsSearch::new(&g, &physical, &cluster, &loads).expect("search");
        let all = search
            .run(&SearchConfig { max_plans: 1 << 20, ..SearchConfig::exhaustive() })
            .expect("exhaustive");
        prop_assert_eq!(all.stats.plans_found, count_plans(&physical, &cluster).expect("count"));
        let th = Thresholds::new(0.5, 0.6, 0.9);
        let expected = all.feasible.iter().filter(|s| s.cost.within(&th)).count();
        let pruned = search
            .run(&SearchConfig { max_plans: 1 << 20, ..SearchConfig::with_thresholds(th) })
            .expect("pruned search");
        prop_assert_eq!(pruned.stats.plans_found, expected);
    }

    #[test]
    fn incremental_costs_match_model((g, cluster) in arb_problem()) {
        let physical = PhysicalGraph::expand(&g);
        let loads = loads_for(&g, &physical, 1000.0);
        let search = CapsSearch::new(&g, &physical, &cluster, &loads).expect("search");
        let model = search.cost_model();
        let out = search
            .run(&SearchConfig { max_plans: 128, ..SearchConfig::exhaustive() })
            .expect("search runs");
        for s in &out.feasible {
            let exact = model.cost(&physical, &s.plan);
            prop_assert!((exact.cpu - s.cost.cpu).abs() < 1e-9);
            prop_assert!((exact.io - s.cost.io).abs() < 1e-9);
            prop_assert!((exact.net - s.cost.net).abs() < 1e-9,
                "net {} vs {}", exact.net, s.cost.net);
        }
    }

    #[test]
    fn enumerated_plans_are_valid_and_distinct((g, cluster) in arb_problem()) {
        let physical = PhysicalGraph::expand(&g);
        let plans = enumerate_plans(&physical, &cluster, 500).expect("plans");
        prop_assert!(!plans.is_empty());
        let mut keys: Vec<_> = plans
            .iter()
            .map(|p| {
                p.validate(&physical, &cluster).expect("valid");
                p.canonical_key(&physical, cluster.num_workers())
            })
            .collect();
        let before = keys.len();
        keys.sort();
        keys.dedup();
        prop_assert_eq!(keys.len(), before, "duplicate plans");
    }

    #[test]
    fn simulation_conserves_records((g, cluster) in arb_problem()) {
        // With all selectivities forced to 1, admitted = sunk + in flight.
        let pars = g.parallelism_vector();
        let mut b = LogicalGraph::builder("conserve");
        let mut prev = None;
        for (i, op) in g.operators().iter().enumerate() {
            let id = b.operator(
                op.name.clone(),
                op.kind,
                pars[i],
                ResourceProfile::new(op.profile.cpu_per_record, 0.0, 10.0, 1.0),
            );
            if let Some(p) = prev {
                b.edge(p, id, ConnectionPattern::Hash);
            }
            prev = Some(id);
        }
        let g = b.build().expect("rebuild");
        let physical = PhysicalGraph::expand(&g);
        let plans = enumerate_plans(&physical, &cluster, 1).expect("plans");
        let mut schedules = HashMap::new();
        for s in g.sources() {
            schedules.insert(s, RateSchedule::Constant(500.0));
        }
        let mut sim = Simulation::new(
            &g,
            &physical,
            &cluster,
            &plans[0],
            &schedules,
            SimConfig { duration: 20.0, warmup: 5.0, ..SimConfig::default() },
        )
        .expect("simulation");
        sim.run();
        let balance = sim.total_admitted() - sim.total_sunk() - sim.in_flight();
        prop_assert!(
            balance.abs() < 1e-6 * sim.total_admitted().max(1.0),
            "lost {balance} records"
        );
        for (q, cap) in sim.queue_occupancies().iter().zip(sim.queue_capacities()) {
            prop_assert!(*q >= -1e-9 && *q <= cap + 1e-9);
        }
    }

    #[test]
    fn canonical_key_invariant_under_worker_permutation(
        (g, cluster) in arb_problem(),
        seed in 0u64..1000,
    ) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let physical = PhysicalGraph::expand(&g);
        let plans = enumerate_plans(&physical, &cluster, 50).expect("plans");
        let plan = &plans[seed as usize % plans.len()];
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut perm: Vec<usize> = (0..cluster.num_workers()).collect();
        perm.shuffle(&mut rng);
        let permuted = Placement::new(
            plan.assignment().iter().map(|w| WorkerId(perm[w.0])).collect(),
        );
        prop_assert!(plan.is_equivalent(&permuted, &physical, cluster.num_workers()));
    }
}
