//! Property-based tests on the core invariants, spanning crates.
//!
//! Runs on the in-repo harness (`capsys_util::prop`): cases are
//! generated from per-test seeds, failures print the failing seed
//! (replay with `CAPSYS_PROP_SEED=<seed> cargo test <name>`), and
//! inputs shrink toward minimal counterexamples.

use std::collections::HashMap;

use capsys::caps::{CapsSearch, CostModel, SearchConfig, Thresholds};
use capsys::model::{
    count_plans, enumerate_plans, Cluster, ConnectionPattern, LoadModel, LogicalGraph, OperatorId,
    OperatorKind, PhysicalGraph, Placement, RateSchedule, ResourceProfile, WorkerId, WorkerSpec,
};
use capsys::sim::{SimConfig, Simulation};
use capsys_util::forall;
use capsys_util::prop::{floats, ints, vec_of, Config, FloatStrategy, IntStrategy, VecStrategy};
use capsys_util::rng::{SeedableRng, SliceRandom, SmallRng};

/// Per-operator profile draw: (parallelism, cpu/rec, state B/rec,
/// out B/rec, selectivity).
type OpDraw = (usize, f64, f64, f64, f64);

/// Strategy for the operator list of a random linear dataflow with 2-4
/// operators and bounded parallelism; shrinks by dropping operators and
/// lowering parallelism.
fn arb_ops() -> VecStrategy<(
    IntStrategy<usize>,
    FloatStrategy,
    FloatStrategy,
    FloatStrategy,
    FloatStrategy,
)> {
    vec_of(
        (
            ints(1usize..=4),
            floats(1e-5..2e-3),
            floats(0.0..5000.0),
            floats(1.0..1000.0),
            floats(0.1..1.5),
        ),
        2..=4,
    )
}

/// Builds the logical graph and a cluster that always fits it, mirroring
/// the original proptest `arb_problem` strategy.
fn build_problem(ops: &[OpDraw], workers: usize, extra_slots: usize) -> (LogicalGraph, Cluster) {
    let n = ops.len();
    let mut b = LogicalGraph::builder("prop");
    let mut prev = None;
    for (i, &(par, cpu, io, out, sel)) in ops.iter().enumerate() {
        let kind = if i == 0 {
            OperatorKind::Source
        } else if i + 1 == n {
            OperatorKind::Sink
        } else {
            OperatorKind::Stateless
        };
        let sel = if i + 1 == n { 1.0 } else { sel };
        let id = b.operator(
            format!("op{i}"),
            kind,
            par,
            ResourceProfile::new(cpu, io, out, sel),
        );
        if let Some(p) = prev {
            b.edge(p, id, ConnectionPattern::Hash);
        }
        prev = Some(id);
    }
    let g = b.build().expect("valid linear graph");
    let total = g.total_tasks();
    let slots = total.div_ceil(workers) + extra_slots;
    let cluster = Cluster::homogeneous(workers, WorkerSpec::new(slots, 2.0, 1e8, 1e9))
        .expect("valid cluster");
    (g, cluster)
}

fn loads_for(g: &LogicalGraph, physical: &PhysicalGraph, rate: f64) -> LoadModel {
    let rates: HashMap<OperatorId, f64> = g.sources().into_iter().map(|s| (s, rate)).collect();
    LoadModel::derive(g, physical, &rates).expect("load model")
}

fn cases() -> Config {
    Config::default().cases(24)
}

#[test]
fn costs_stay_in_unit_interval() {
    forall!(cases(), (
        ops in arb_ops(),
        workers in ints(2usize..=4),
        extra_slots in ints(2usize..=6),
    ) => {
        let (g, cluster) = build_problem(ops, *workers, *extra_slots);
        let physical = PhysicalGraph::expand(&g);
        let loads = loads_for(&g, &physical, 1000.0);
        let model = CostModel::new(&physical, &cluster, &loads).expect("model");
        for plan in enumerate_plans(&physical, &cluster, 200).expect("plans") {
            let c = model.cost(&physical, &plan);
            assert!(c.cpu >= -1e-9 && c.cpu <= 1.0 + 1e-9, "C_cpu {}", c.cpu);
            assert!(c.io >= -1e-9 && c.io <= 1.0 + 1e-9, "C_io {}", c.io);
            assert!(c.net >= -1e-9 && c.net <= 1.0 + 1e-9, "C_net {}", c.net);
        }
    });
}

#[test]
fn search_matches_cost_filter() {
    forall!(cases(), (
        ops in arb_ops(),
        workers in ints(2usize..=4),
        extra_slots in ints(2usize..=6),
    ) => {
        let (g, cluster) = build_problem(ops, *workers, *extra_slots);
        let physical = PhysicalGraph::expand(&g);
        let loads = loads_for(&g, &physical, 1000.0);
        let search = CapsSearch::new(&g, &physical, &cluster, &loads).expect("search");
        let all = search
            .run(&SearchConfig { max_plans: 1 << 20, ..SearchConfig::exhaustive() })
            .expect("exhaustive");
        assert_eq!(
            all.stats.plans_found,
            count_plans(&physical, &cluster).expect("count")
        );
        let th = Thresholds::new(0.5, 0.6, 0.9);
        let expected = all.feasible.iter().filter(|s| s.cost.within(&th)).count();
        let pruned = search
            .run(&SearchConfig { max_plans: 1 << 20, ..SearchConfig::with_thresholds(th) })
            .expect("pruned search");
        assert_eq!(pruned.stats.plans_found, expected);
    });
}

#[test]
fn incremental_costs_match_model() {
    forall!(cases(), (
        ops in arb_ops(),
        workers in ints(2usize..=4),
        extra_slots in ints(2usize..=6),
    ) => {
        let (g, cluster) = build_problem(ops, *workers, *extra_slots);
        let physical = PhysicalGraph::expand(&g);
        let loads = loads_for(&g, &physical, 1000.0);
        let search = CapsSearch::new(&g, &physical, &cluster, &loads).expect("search");
        let model = search.cost_model();
        let out = search
            .run(&SearchConfig { max_plans: 128, ..SearchConfig::exhaustive() })
            .expect("search runs");
        for s in &out.feasible {
            let exact = model.cost(&physical, &s.plan);
            assert!((exact.cpu - s.cost.cpu).abs() < 1e-9);
            assert!((exact.io - s.cost.io).abs() < 1e-9);
            assert!(
                (exact.net - s.cost.net).abs() < 1e-9,
                "net {} vs {}",
                exact.net,
                s.cost.net
            );
        }
    });
}

#[test]
fn enumerated_plans_are_valid_and_distinct() {
    forall!(cases(), (
        ops in arb_ops(),
        workers in ints(2usize..=4),
        extra_slots in ints(2usize..=6),
    ) => {
        let (g, cluster) = build_problem(ops, *workers, *extra_slots);
        let physical = PhysicalGraph::expand(&g);
        let plans = enumerate_plans(&physical, &cluster, 500).expect("plans");
        assert!(!plans.is_empty());
        let mut keys: Vec<_> = plans
            .iter()
            .map(|p| {
                p.validate(&physical, &cluster).expect("valid");
                p.canonical_key(&physical, cluster.num_workers())
            })
            .collect();
        let before = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), before, "duplicate plans");
    });
}

#[test]
fn simulation_conserves_records() {
    forall!(cases(), (
        ops in arb_ops(),
        workers in ints(2usize..=4),
        extra_slots in ints(2usize..=6),
    ) => {
        // With all selectivities forced to 1, admitted = sunk + in flight.
        let (g, cluster) = build_problem(ops, *workers, *extra_slots);
        let pars = g.parallelism_vector();
        let mut b = LogicalGraph::builder("conserve");
        let mut prev = None;
        for (i, op) in g.operators().iter().enumerate() {
            let id = b.operator(
                op.name.clone(),
                op.kind,
                pars[i],
                ResourceProfile::new(op.profile.cpu_per_record, 0.0, 10.0, 1.0),
            );
            if let Some(p) = prev {
                b.edge(p, id, ConnectionPattern::Hash);
            }
            prev = Some(id);
        }
        let g = b.build().expect("rebuild");
        let physical = PhysicalGraph::expand(&g);
        let plans = enumerate_plans(&physical, &cluster, 1).expect("plans");
        let mut schedules = HashMap::new();
        for s in g.sources() {
            schedules.insert(s, RateSchedule::Constant(500.0));
        }
        let mut sim = Simulation::new(
            &g,
            &physical,
            &cluster,
            &plans[0],
            &schedules,
            SimConfig { duration: 20.0, warmup: 5.0, ..SimConfig::default() },
        )
        .expect("simulation");
        sim.run();
        let balance = sim.total_admitted() - sim.total_sunk() - sim.in_flight();
        assert!(
            balance.abs() < 1e-6 * sim.total_admitted().max(1.0),
            "lost {balance} records"
        );
        for (q, cap) in sim.queue_occupancies().iter().zip(sim.queue_capacities()) {
            assert!(*q >= -1e-9 && *q <= cap + 1e-9);
        }
    });
}

#[test]
fn fault_plans_are_pure_functions_of_their_seed() {
    use capsys::sim::{ChaosConfig, FaultPlan};
    forall!(cases(), (
        seed in ints(0u64..100_000),
        workers in ints(2usize..=8),
        crashes in ints(0usize..=3),
        stragglers in ints(0usize..=3),
    ) => {
        let cfg = ChaosConfig {
            seed: *seed,
            crashes: *crashes,
            stragglers: *stragglers,
            metric_noise: 0.05,
            ..ChaosConfig::default()
        };
        let a = FaultPlan::generate(&cfg, *workers).expect("plan generates");
        let b = FaultPlan::generate(&cfg, *workers).expect("plan generates");
        assert_eq!(a, b, "same seed must yield the same schedule");
        a.validate(*workers).expect("generated plan is valid");
        for w in a.events.windows(2) {
            assert!(w[0].time <= w[1].time, "events must be time-sorted");
        }
        // Shifting past the horizon leaves only the noise.
        let empty = a.shifted(1e9);
        assert!(empty.events.is_empty());
    });
}

#[test]
fn chaos_recovery_replays_identically_per_seed() {
    use capsys::controller::{ClosedLoop, RecoveryConfig};
    use capsys::ds2::Ds2Config;
    use capsys::queries::q1_sliding;
    use capsys::sim::{ChaosConfig, FaultPlan};

    // Full closed-loop runs are comparatively expensive; a few seeds
    // suffice to catch nondeterminism in the detect/re-place path.
    forall!(Config::default().cases(3), (
        seed in ints(0u64..1_000),
    ) => {
        let query = q1_sliding();
        let cluster = Cluster::homogeneous(6, WorkerSpec::r5d_xlarge(4)).expect("cluster");
        let target = query.capacity_rate(&cluster, 0.5).expect("rate");
        let chaos = ChaosConfig {
            seed: *seed,
            horizon: 200.0,
            crash_downtime: (200.0, 200.0),
            metric_noise: 0.02,
            ..ChaosConfig::default()
        };
        let strategy = capsys::placement::CapsStrategy::default();
        let run = || {
            let plan = FaultPlan::generate(&chaos, cluster.num_workers()).expect("fault plan");
            ClosedLoop::new(
                &query,
                &cluster,
                &strategy,
                Ds2Config {
                    activation_period: 60.0,
                    policy_interval: 5.0,
                    max_parallelism: 8,
                    headroom: 1.0,
                },
                SimConfig { duration: 1.0, warmup: 0.0, ..SimConfig::default() },
                RateSchedule::Constant(target),
                *seed,
            )
            .expect("closed loop")
            .with_fault_plan(plan)
            .expect("fault plan installs")
            .with_recovery(RecoveryConfig::default())
            .run(200.0)
            .expect("loop survives chaos")
        };
        let t1 = run();
        let t2 = run();
        assert_eq!(t1.recovery_events, t2.recovery_events, "recovery events diverged");
        assert_eq!(t1.events, t2.events, "scaling events diverged");
        assert_eq!(t1.points, t2.points, "metric traces diverged");
    });
}

#[test]
fn canonical_key_invariant_under_worker_permutation() {
    forall!(cases(), (
        ops in arb_ops(),
        workers in ints(2usize..=4),
        extra_slots in ints(2usize..=6),
        seed in ints(0u64..1000),
    ) => {
        let (g, cluster) = build_problem(ops, *workers, *extra_slots);
        let physical = PhysicalGraph::expand(&g);
        let plans = enumerate_plans(&physical, &cluster, 50).expect("plans");
        let plan = &plans[*seed as usize % plans.len()];
        let mut rng = SmallRng::seed_from_u64(*seed);
        let mut perm: Vec<usize> = (0..cluster.num_workers()).collect();
        perm.shuffle(&mut rng);
        let permuted = Placement::new(
            plan.assignment().iter().map(|w| WorkerId(perm[w.0])).collect(),
        );
        assert!(plan.is_equivalent(&permuted, &physical, cluster.num_workers()));
    });
}
