//! A panicking search worker must surface as `CapsError::SearchPanicked`
//! — not hang the sibling threads or poison the process.
//!
//! This lives in its own integration-test binary (own process) because
//! it sets the `CAPSYS_TEST_PANIC_SEARCH` fault-injection variable,
//! which would make *every* concurrently running multi-threaded search
//! in the same process panic.

use capsys::caps::{CapsError, CapsSearch, SearchConfig};
use capsys::model::{Cluster, WorkerSpec};
use capsys::queries::q3_inf;

#[test]
fn worker_panic_propagates_as_error() {
    // Safety note: the test binary is single-test, so no other thread
    // races this env write.
    std::env::set_var("CAPSYS_TEST_PANIC_SEARCH", "1");

    let query = q3_inf();
    let cluster = Cluster::homogeneous(4, WorkerSpec::r5d_xlarge(4)).expect("cluster");
    let physical = query.physical();
    let loads = query.load_model(&physical).expect("loads");
    let search = CapsSearch::new(query.logical(), &physical, &cluster, &loads).expect("search");

    let config = SearchConfig {
        threads: 4,
        ..SearchConfig::exhaustive()
    };
    match search.run(&config) {
        Err(CapsError::SearchPanicked) => {}
        other => panic!("expected SearchPanicked, got {other:?}"),
    }

    // The search object survives a worker panic: with the fault cleared
    // the very next run completes normally (no poisoned shared state).
    std::env::remove_var("CAPSYS_TEST_PANIC_SEARCH");
    let out = search.run(&config).expect("search recovers after a panic");
    assert!(out.stats.plans_found > 0);
}
