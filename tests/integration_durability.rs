//! End-to-end durability through the public `capsys` API: a controller
//! killed mid-run recovers from its write-ahead journal to a
//! byte-identical trace, and a superseded (zombie) controller is fenced.

use capsys::controller::{ClosedLoop, ClosedLoopTrace, ControllerError, DecisionJournal,
    RecoveryConfig};
use capsys::ds2::Ds2Config;
use capsys::placement::CapsStrategy;
use capsys::prelude::*;
use capsys::sim::{EpochFence, FaultEvent, FaultKind, FaultPlan, KillPoint};

fn ds2() -> Ds2Config {
    Ds2Config {
        activation_period: 60.0,
        policy_interval: 5.0,
        max_parallelism: 8,
        headroom: 1.0,
    }
}

fn sim() -> SimConfig {
    SimConfig {
        duration: 1.0,
        warmup: 0.0,
        ..SimConfig::default()
    }
}

/// Runs the crash scenario (worker hosting task 0 dies at t=60s) with a
/// journal and an optional controller kill.
fn run_scenario(kill: Option<KillPoint>) -> (Result<ClosedLoopTrace, ControllerError>, String) {
    let query = capsys::queries::q1_sliding();
    let cluster = Cluster::homogeneous(6, WorkerSpec::r5d_xlarge(4)).unwrap();
    let rate = query.capacity_rate(&cluster, 0.5).unwrap();
    let strategy = CapsStrategy::default();
    let loop_ = ClosedLoop::new(
        &query,
        &cluster,
        &strategy,
        ds2(),
        sim(),
        RateSchedule::Constant(rate),
        7,
    )
    .unwrap();
    let victim = loop_.placement().worker_of(TaskId(0));
    let mut plan = FaultPlan::new(vec![FaultEvent {
        time: 60.0,
        kind: FaultKind::Crash(victim),
    }])
    .unwrap();
    if let Some(k) = kill {
        plan = plan.with_controller_kill(k).unwrap();
    }
    let (journal, buf) = DecisionJournal::in_memory();
    let result = loop_
        .with_fault_plan(plan)
        .unwrap()
        .with_recovery(RecoveryConfig::default())
        .with_journal(journal)
        .unwrap()
        .run(240.0);
    (result, buf.text())
}

fn recover_scenario(journal_text: &str) -> (ClosedLoopTrace, String) {
    let query = capsys::queries::q1_sliding();
    let cluster = Cluster::homogeneous(6, WorkerSpec::r5d_xlarge(4)).unwrap();
    let rate = query.capacity_rate(&cluster, 0.5).unwrap();
    let strategy = CapsStrategy::default();
    let loop_ = ClosedLoop::recover_from_journal(
        &query,
        &cluster,
        &strategy,
        ds2(),
        sim(),
        RateSchedule::Constant(rate),
        journal_text,
    )
    .unwrap();
    let victim = loop_.placement().worker_of(TaskId(0));
    let plan = FaultPlan::new(vec![FaultEvent {
        time: 60.0,
        kind: FaultKind::Crash(victim),
    }])
    .unwrap();
    let (journal, buf) = DecisionJournal::in_memory();
    let trace = loop_
        .with_fault_plan(plan)
        .unwrap()
        .with_recovery(RecoveryConfig::default())
        .with_journal(journal)
        .unwrap()
        .run(240.0)
        .unwrap();
    (trace, buf.text())
}

#[test]
fn killed_controller_recovers_exactly_via_public_api() {
    let (baseline, golden_journal) = run_scenario(None);
    let golden = baseline.unwrap().to_json().to_string();
    let records = golden_journal.lines().count() as u64;
    assert!(records >= 3, "scenario journaled too little ({records})");
    // Kill after the second record — in this scenario that is inside the
    // first reconfiguration's two-phase window.
    let (killed, partial) = run_scenario(Some(KillPoint::AfterRecord(1)));
    assert!(
        matches!(killed, Err(ControllerError::ControllerKilled { .. })),
        "kill did not fire"
    );
    assert!(partial.lines().count() < golden_journal.lines().count());
    let (trace, rewritten) = recover_scenario(&partial);
    assert_eq!(trace.to_json().to_string(), golden, "recovered trace diverged");
    assert_eq!(rewritten, golden_journal, "recovered journal diverged");
}

#[test]
fn zombie_controller_is_fenced_via_public_api() {
    let query = capsys::queries::q1_sliding().with_parallelism(&[1, 1, 1, 1]).unwrap();
    let cluster = Cluster::homogeneous(4, WorkerSpec::m5d_2xlarge(8)).unwrap();
    let rate = capsys::queries::q1_sliding().capacity_rate(&cluster, 0.5).unwrap();
    let strategy = CapsStrategy::default();
    let fence = EpochFence::new();
    let build = || {
        ClosedLoop::new(
            &query,
            &cluster,
            &strategy,
            Ds2Config {
                activation_period: 20.0,
                ..ds2()
            },
            sim(),
            RateSchedule::Constant(rate),
            7,
        )
        .unwrap()
        .with_fence(fence.clone())
    };
    // The first controller scales live, advancing the shared fence.
    let trace = build().run(120.0).unwrap();
    assert!(trace.num_scalings() >= 1, "scenario never scaled");
    let current = fence.current();
    assert!(current >= 1);
    // A second controller with the same (stale) view of the world must
    // be rejected at its first deployment, with the fence unmoved.
    match build().run(120.0) {
        Err(ControllerError::FencedEpoch { attempted, current: c }) => {
            assert!(attempted <= current);
            assert_eq!(c, current);
        }
        other => panic!("expected FencedEpoch, got {other:?}"),
    }
    assert_eq!(fence.current(), current, "a fenced zombie moved the fence");
}
