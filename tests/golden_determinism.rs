//! Determinism golden test: a fixed seed and a fixed query must produce
//! a byte-identical placement plan and cost JSON —
//!
//! * across repeated runs in the same process,
//! * across `--test-threads=1` vs the default parallel test harness
//!   (no global state: each run below is self-contained),
//! * across debug vs release (`scripts/ci.sh` runs the suite in both
//!   profiles; all arithmetic is plain `f64` ops in fixed order),
//! * and across commits, via the golden file under `tests/golden/`.
//!
//! If a change intentionally alters placement results, regenerate with:
//!
//! ```text
//! cargo run --bin capsys-cli -- plan tests/golden/q1_spec.json \
//!     > tests/golden/q1_caps_plan.json
//! ```

use capsys::spec::DeploymentSpec;
use capsys_util::json::{Json, ToJson};

/// The pinned deployment spec (also stored at `tests/golden/q1_spec.json`
/// so the CLI can regenerate the golden file).
const SPEC: &str = include_str!("golden/q1_spec.json");

/// The expected pretty-printed outcome JSON.
const GOLDEN: &str = include_str!("golden/q1_caps_plan.json");

fn run_outcome_json() -> String {
    let spec = DeploymentSpec::from_json(SPEC).expect("golden spec parses");
    let outcome = spec.run().expect("golden spec runs");
    outcome.to_json().to_pretty()
}

#[test]
fn fixed_seed_plan_is_byte_identical_across_runs() {
    let first = run_outcome_json();
    let second = run_outcome_json();
    assert_eq!(first, second, "same-process runs diverged");
}

#[test]
fn fixed_seed_plan_matches_committed_golden() {
    let got = run_outcome_json();
    // The golden file ends with a newline (shell redirect); the encoder
    // output does not. Compare trimmed-of-trailing-newline bytes.
    assert_eq!(
        got.trim_end_matches('\n'),
        GOLDEN.trim_end_matches('\n'),
        "placement plan or cost JSON changed; if intentional, regenerate \
         tests/golden/q1_caps_plan.json (see module docs)"
    );
}

#[test]
fn golden_file_is_valid_json_with_expected_shape() {
    let v = Json::parse(GOLDEN).expect("golden parses");
    assert_eq!(v.get("query").unwrap().as_str(), Some("Q1-sliding"));
    assert_eq!(v.get("assignment").unwrap().as_array().unwrap().len(), 16);
    let cost = v.get("cost").unwrap().as_array().unwrap();
    assert_eq!(cost.len(), 3);
    for c in cost {
        let c = c.as_f64().unwrap();
        assert!((0.0..=1.0).contains(&c), "cost component {c} out of range");
    }
}

#[test]
fn memo_on_and_off_plans_are_byte_identical() {
    // The dead-state memo only skips subtrees proven to hold no
    // feasible plan, so the golden pipeline must emit byte-identical
    // output with the memo on (the default) and off — and both must
    // match the committed golden file.
    use capsys::caps::{CostModel, SearchConfig};
    use capsys::model::{Cluster, WorkerSpec};
    use capsys::placement::{CapsStrategy, PlacementContext, PlacementStrategy};
    use capsys::queries::q1_sliding;
    use capsys_util::rng::{SeedableRng, SmallRng};

    // The same problem the golden spec pins (q1_spec.json).
    let query = q1_sliding();
    let cluster = Cluster::homogeneous(4, WorkerSpec::r5d_xlarge(4)).expect("cluster");
    let rate = query.capacity_rate(&cluster, 0.9).expect("rate");
    let physical = query.physical();
    let loads = query.load_model_at(&physical, rate).expect("loads");
    let ctx = PlacementContext {
        logical: query.logical(),
        physical: &physical,
        cluster: &cluster,
        loads: &loads,
    };
    let model = CostModel::new(&physical, &cluster, &loads).expect("model");
    let run = |memo: bool| {
        let config = SearchConfig::auto_tuned();
        let config = if memo { config } else { config.without_memo() };
        let plan = CapsStrategy::new(config)
            .place(&ctx, &mut SmallRng::seed_from_u64(42))
            .expect("plan");
        let cost = model.cost(&physical, &plan);
        let assignment = Json::Arr(
            plan.assignment()
                .iter()
                .map(|w| Json::Num(w.0 as f64))
                .collect(),
        );
        let cost = Json::Arr(vec![
            Json::Num(cost.cpu),
            Json::Num(cost.io),
            Json::Num(cost.net),
        ]);
        Json::Arr(vec![assignment, cost]).to_pretty()
    };
    let on = run(true);
    assert_eq!(on, run(false), "memo changed the golden pipeline output");

    // Cross-check against the committed golden record.
    let golden = Json::parse(GOLDEN).expect("golden parses");
    let got = Json::parse(&on).expect("output parses");
    assert_eq!(
        got.as_array().unwrap()[0],
        *golden.get("assignment").unwrap(),
        "memo-on assignment diverged from the committed golden file"
    );
    assert_eq!(
        got.as_array().unwrap()[1],
        *golden.get("cost").unwrap(),
        "memo-on cost diverged from the committed golden file"
    );
}

#[test]
fn simulation_is_deterministic_for_fixed_seed() {
    let simulate = |secs: f64| {
        let mut spec = DeploymentSpec::from_json(SPEC).expect("spec parses");
        spec.simulate_secs = secs;
        let outcome = spec.run().expect("spec runs");
        outcome.to_json().to_string()
    };
    assert_eq!(simulate(30.0), simulate(30.0), "seeded simulation diverged");
}
