//! Determinism golden test: a fixed seed and a fixed query must produce
//! a byte-identical placement plan and cost JSON —
//!
//! * across repeated runs in the same process,
//! * across `--test-threads=1` vs the default parallel test harness
//!   (no global state: each run below is self-contained),
//! * across debug vs release (`scripts/ci.sh` runs the suite in both
//!   profiles; all arithmetic is plain `f64` ops in fixed order),
//! * and across commits, via the golden file under `tests/golden/`.
//!
//! If a change intentionally alters placement results, regenerate with:
//!
//! ```text
//! cargo run --bin capsys-cli -- plan tests/golden/q1_spec.json \
//!     > tests/golden/q1_caps_plan.json
//! ```

use capsys::spec::DeploymentSpec;
use capsys_util::json::{Json, ToJson};

/// The pinned deployment spec (also stored at `tests/golden/q1_spec.json`
/// so the CLI can regenerate the golden file).
const SPEC: &str = include_str!("golden/q1_spec.json");

/// The expected pretty-printed outcome JSON.
const GOLDEN: &str = include_str!("golden/q1_caps_plan.json");

fn run_outcome_json() -> String {
    let spec = DeploymentSpec::from_json(SPEC).expect("golden spec parses");
    let outcome = spec.run().expect("golden spec runs");
    outcome.to_json().to_pretty()
}

#[test]
fn fixed_seed_plan_is_byte_identical_across_runs() {
    let first = run_outcome_json();
    let second = run_outcome_json();
    assert_eq!(first, second, "same-process runs diverged");
}

#[test]
fn fixed_seed_plan_matches_committed_golden() {
    let got = run_outcome_json();
    // The golden file ends with a newline (shell redirect); the encoder
    // output does not. Compare trimmed-of-trailing-newline bytes.
    assert_eq!(
        got.trim_end_matches('\n'),
        GOLDEN.trim_end_matches('\n'),
        "placement plan or cost JSON changed; if intentional, regenerate \
         tests/golden/q1_caps_plan.json (see module docs)"
    );
}

#[test]
fn golden_file_is_valid_json_with_expected_shape() {
    let v = Json::parse(GOLDEN).expect("golden parses");
    assert_eq!(v.get("query").unwrap().as_str(), Some("Q1-sliding"));
    assert_eq!(v.get("assignment").unwrap().as_array().unwrap().len(), 16);
    let cost = v.get("cost").unwrap().as_array().unwrap();
    assert_eq!(cost.len(), 3);
    for c in cost {
        let c = c.as_f64().unwrap();
        assert!((0.0..=1.0).contains(&c), "cost component {c} out of range");
    }
}

#[test]
fn simulation_is_deterministic_for_fixed_seed() {
    let simulate = |secs: f64| {
        let mut spec = DeploymentSpec::from_json(SPEC).expect("spec parses");
        spec.simulate_secs = secs;
        let outcome = spec.run().expect("spec runs");
        outcome.to_json().to_string()
    };
    assert_eq!(simulate(30.0), simulate(30.0), "seeded simulation diverged");
}
