//! Differential battery for the exact fixed-point cost core.
//!
//! Three layers of agreement, each on randomly generated problems with
//! shrinking (`capsys_util::prop`; replay a failure with
//! `CAPSYS_PROP_SEED=<seed> cargo test <name>`):
//!
//! 1. The `Fixed64` accumulator itself: accumulate + undo in *any*
//!    order returns to the starting value **bit-exactly**, and
//!    `mul_int` distributes exactly over addition — the algebraic facts
//!    the search's incremental load bookkeeping rests on.
//! 2. The search: every stored plan's cost, produced by incremental
//!    accumulate/undo down the DFS, equals a from-scratch recost of the
//!    same plan **bit-for-bit** (`==` on the raw `f64` bits, not an
//!    epsilon).
//! 3. The legacy path: the fixed-point costs agree with a pure-`f64`
//!    recomputation from the raw `LoadModel` within `1e-9` relative,
//!    so the quantized core is a refinement of the old arithmetic, not
//!    a different model.

use std::collections::HashMap;

use capsys::caps::{CapsSearch, CostModel, SearchConfig, Thresholds};
use capsys::model::{
    enumerate_plans, Cluster, ConnectionPattern, LoadModel, LogicalGraph, OperatorId, OperatorKind,
    PhysicalGraph, Placement, ResourceProfile, WorkerId, WorkerSpec,
};
use capsys_util::fixed::Fixed64;
use capsys_util::forall;
use capsys_util::prop::{floats, ints, vec_of, Config, FloatStrategy, IntStrategy, VecStrategy};
use capsys_util::rng::{SeedableRng, SliceRandom, SmallRng};

/// One quantization step of the Q31.32 representation.
const Q: f64 = 1.0 / (1u64 << 32) as f64;

/// Per-operator draw: (parallelism, cpu/rec, state B/rec, out B/rec,
/// selectivity). CPU per record is kept high enough that the CPU load
/// spread stays well clear of the quantization floor (see
/// `legacy_cost_tolerance`).
type OpDraw = (usize, f64, f64, f64, f64);

fn arb_ops() -> VecStrategy<(
    IntStrategy<usize>,
    FloatStrategy,
    FloatStrategy,
    FloatStrategy,
    FloatStrategy,
)> {
    vec_of(
        (
            ints(1usize..=4),
            floats(1e-4..5e-3),
            floats(0.0..5000.0),
            floats(1.0..1000.0),
            floats(0.1..1.5),
        ),
        2..=4,
    )
}

fn build_problem(ops: &[OpDraw], workers: usize, extra_slots: usize) -> (LogicalGraph, Cluster) {
    let n = ops.len();
    let mut b = LogicalGraph::builder("fxdiff");
    let mut prev = None;
    for (i, &(par, cpu, io, out, sel)) in ops.iter().enumerate() {
        let kind = if i == 0 {
            OperatorKind::Source
        } else if i + 1 == n {
            OperatorKind::Sink
        } else {
            OperatorKind::Stateless
        };
        let sel = if i + 1 == n { 1.0 } else { sel };
        let id = b.operator(
            format!("op{i}"),
            kind,
            par,
            ResourceProfile::new(cpu, io, out, sel),
        );
        if let Some(p) = prev {
            b.edge(p, id, ConnectionPattern::Hash);
        }
        prev = Some(id);
    }
    let g = b.build().expect("valid linear graph");
    let total = g.total_tasks();
    let slots = total.div_ceil(workers) + extra_slots;
    let cluster = Cluster::homogeneous(workers, WorkerSpec::new(slots, 2.0, 1e8, 1e9))
        .expect("valid cluster");
    (g, cluster)
}

fn loads_for(g: &LogicalGraph, physical: &PhysicalGraph, rate: f64) -> LoadModel {
    let rates: HashMap<OperatorId, f64> = g.sources().into_iter().map(|s| (s, rate)).collect();
    LoadModel::derive(g, physical, &rates).expect("load model")
}

fn cases() -> Config {
    Config::default().cases(24)
}

// --- Layer 1: the accumulator algebra -----------------------------------

#[test]
fn accumulate_and_undo_return_exactly_to_start() {
    forall!(cases(), (
        raw in vec_of(floats(-1e6..1e6), 1..=64),
        seed in ints(0u64..1_000_000),
    ) => {
        let vals: Vec<Fixed64> = raw.iter().map(|&x| Fixed64::from_f64(x)).collect();

        // Any fold order produces the same bits: integer addition is
        // associative and commutative, unlike f64 addition.
        let mut sorted = vals.clone();
        sorted.sort_by_key(|v| v.to_bits());
        let reference = sorted.iter().fold(Fixed64::ZERO, |a, &b| a + b);
        let mut acc = vals.iter().fold(Fixed64::ZERO, |a, &b| a + b);
        assert_eq!(acc.to_bits(), reference.to_bits(), "fold order changed the sum");

        // Undoing every element in a random order lands exactly on
        // zero, and redoing lands exactly on the sum — the invariant
        // the DFS relies on when it unwinds a placement row.
        let mut rng = SmallRng::seed_from_u64(*seed);
        let mut order: Vec<usize> = (0..vals.len()).collect();
        order.shuffle(&mut rng);
        for &i in &order {
            acc -= vals[i];
        }
        assert_eq!(acc.to_bits(), Fixed64::ZERO.to_bits(), "undo drifted off zero");
        for &i in &order {
            acc += vals[i];
        }
        assert_eq!(acc.to_bits(), reference.to_bits(), "redo drifted off the sum");
    });
}

#[test]
fn mul_int_distributes_exactly_over_addition() {
    forall!(cases(), (
        raw in vec_of(floats(0.0..1e5), 1..=32),
        k in ints(0i64..=16),
    ) => {
        // The network accumulator charges `rate × remote_channels`; the
        // search adds and removes such terms one channel at a time, so
        // k·(a+b) must equal k·a + k·b on the bit level.
        let vals: Vec<Fixed64> = raw.iter().map(|&x| Fixed64::from_f64(x)).collect();
        let term_sum = vals
            .iter()
            .fold(Fixed64::ZERO, |a, v| a + v.mul_int(*k));
        let sum_term = vals
            .iter()
            .fold(Fixed64::ZERO, |a, &v| a + v)
            .mul_int(*k);
        assert_eq!(term_sum.to_bits(), sum_term.to_bits());
    });
}

// --- Layer 2: incremental search cost == from-scratch recost, bit-exact --

/// Asserts every stored plan's cost vector is bit-identical to a
/// from-scratch recost by the model.
fn assert_bit_exact(search: &CapsSearch, physical: &PhysicalGraph, config: &SearchConfig) {
    let out = search.run(config).expect("search runs");
    let model = search.cost_model();
    for s in &out.feasible {
        let exact = model.cost(physical, &s.plan);
        for (got, want) in [
            (s.cost.cpu, exact.cpu),
            (s.cost.io, exact.io),
            (s.cost.net, exact.net),
        ] {
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "incremental cost {got:?} != recost {want:?} for {:?}",
                s.plan
            );
        }
    }
}

#[test]
fn incremental_search_costs_are_bit_identical_to_recost() {
    forall!(cases(), (
        ops in arb_ops(),
        workers in ints(2usize..=4),
        extra_slots in ints(2usize..=6),
    ) => {
        let (g, cluster) = build_problem(ops, *workers, *extra_slots);
        let physical = PhysicalGraph::expand(&g);
        let loads = loads_for(&g, &physical, 1000.0);
        let search = CapsSearch::new(&g, &physical, &cluster, &loads).expect("search");
        // Exhaustive exercises pure accumulate/undo; the thresholded
        // run exercises it under bound pruning; multi-threaded under
        // work stealing. All must store bit-exact costs.
        assert_bit_exact(&search, &physical, &SearchConfig {
            max_plans: 128,
            ..SearchConfig::exhaustive()
        });
        assert_bit_exact(&search, &physical, &SearchConfig {
            max_plans: 128,
            ..SearchConfig::with_thresholds(Thresholds::new(0.8, 0.8, 0.9))
        });
        assert_bit_exact(&search, &physical, &SearchConfig {
            max_plans: 128,
            threads: 4,
            ..SearchConfig::with_thresholds(Thresholds::new(0.8, 0.8, 0.9))
        });
    });
}

// --- Layer 3: agreement with the legacy pure-f64 path --------------------

/// The pre-fixed-point cost arithmetic: plain `f64` sums over the raw
/// `LoadModel`, normalized against the `f64` view of the load bounds.
fn legacy_cost(
    model: &CostModel,
    loads: &LoadModel,
    physical: &PhysicalGraph,
    plan: &Placement,
) -> [f64; 3] {
    let workers = model.num_workers();
    let mut worst = [0.0f64; 3];
    for w in 0..workers {
        let mut acc = [0.0f64; 3];
        for t in plan.tasks_on(WorkerId(w)) {
            let tl = loads.load(t);
            acc[0] += tl.cpu;
            acc[1] += tl.io;
            let fanout = physical.downstream(t).count();
            if fanout > 0 {
                let remote = physical
                    .downstream(t)
                    .filter(|ch| plan.worker_of(ch.to) != WorkerId(w))
                    .count();
                acc[2] += tl.net / fanout as f64 * remote as f64;
            }
        }
        for dim in 0..3 {
            worst[dim] = worst[dim].max(acc[dim]);
        }
    }
    let b = model.bounds();
    [0, 1, 2].map(|dim| {
        let denom = b.max[dim] - b.min[dim];
        if denom <= 0.0 {
            0.0
        } else {
            (worst[dim] - b.min[dim]) / denom
        }
    })
}

/// Agreement tolerance per dimension: `1e-9` relative, widened only by
/// the provable quantization bound. Each ingested load is within `Q/2`
/// of its `f64` source, so a bottleneck built from `n` tasks differs
/// from the `f64` sum by at most `(n + 2)·Q` before normalization
/// (the `+2` covers the quantized `L_min`/`L_max` bounds).
fn tolerance(num_tasks: usize, denom: f64) -> f64 {
    let quant = (num_tasks as f64 + 2.0) * Q / denom.max(Q);
    1e-9f64.max(quant)
}

#[test]
fn fixed_point_costs_agree_with_legacy_f64_path() {
    forall!(cases(), (
        ops in arb_ops(),
        workers in ints(2usize..=4),
        extra_slots in ints(2usize..=6),
    ) => {
        let (g, cluster) = build_problem(ops, *workers, *extra_slots);
        let physical = PhysicalGraph::expand(&g);
        let loads = loads_for(&g, &physical, 1000.0);
        let model = CostModel::new(&physical, &cluster, &loads).expect("model");
        let b = model.bounds();
        for plan in enumerate_plans(&physical, &cluster, 200).expect("plans") {
            let fx = model.cost(&physical, &plan);
            let legacy = legacy_cost(&model, &loads, &physical, &plan);
            for (dim, got) in [fx.cpu, fx.io, fx.net].into_iter().enumerate() {
                let denom = b.max[dim] - b.min[dim];
                let tol = tolerance(physical.num_tasks(), denom);
                assert!(
                    (got - legacy[dim]).abs() <= tol,
                    "dim {dim}: fixed {got} vs legacy {} (tol {tol}, denom {denom})",
                    legacy[dim]
                );
            }
        }
    });
}
