//! Integration: CAPS beats random placement in end-to-end simulation,
//! and the closed loop converges — the paper's headline claims in
//! miniature.

use capsys::controller::ClosedLoop;
use capsys::ds2::Ds2Config;
use capsys::model::{Cluster, RateSchedule, WorkerSpec};
use capsys::placement::{CapsStrategy, FlinkDefault, PlacementContext, PlacementStrategy};
use capsys::queries::{q1_sliding, q3_inf};
use capsys::sim::{SimConfig, Simulation};
use capsys_util::rng::SmallRng;
use capsys_util::rng::SeedableRng;

#[test]
fn caps_throughput_dominates_random_average() {
    let query = q1_sliding();
    let cluster = Cluster::homogeneous(4, WorkerSpec::r5d_xlarge(4)).unwrap();
    let physical = query.physical();
    let rate = query.capacity_rate(&cluster, 0.92).unwrap();
    let loads = query.load_model_at(&physical, rate).unwrap();
    let ctx = PlacementContext {
        logical: query.logical(),
        physical: &physical,
        cluster: &cluster,
        loads: &loads,
    };

    let run = |plan: &capsys::model::Placement, seed: u64| {
        let schedules = query.schedules(rate);
        let mut sim = Simulation::new(
            query.logical(),
            &physical,
            &cluster,
            plan,
            &schedules,
            SimConfig {
                duration: 60.0,
                warmup: 15.0,
                seed,
                ..SimConfig::default()
            },
        )
        .unwrap();
        sim.run().avg_throughput
    };

    let mut rng = SmallRng::seed_from_u64(0);
    let caps_plan = CapsStrategy::default().place(&ctx, &mut rng).unwrap();
    let caps_tp = run(&caps_plan, 1);

    let mut random_tps = Vec::new();
    for seed in 0..8 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let plan = FlinkDefault.place(&ctx, &mut rng).unwrap();
        random_tps.push(run(&plan, seed + 10));
    }
    let random_avg: f64 = random_tps.iter().sum::<f64>() / random_tps.len() as f64;
    assert!(
        caps_tp > random_avg,
        "CAPS {caps_tp:.0} should beat the random average {random_avg:.0}"
    );
    // CAPS should essentially hit the target (it is achievable: 3 of 80
    // plans meet it).
    assert!(
        caps_tp >= 0.95 * rate,
        "CAPS reached only {caps_tp:.0} of {rate:.0}"
    );
}

#[test]
fn closed_loop_with_caps_converges_and_tracks_rate_changes() {
    let cluster = Cluster::homogeneous(6, WorkerSpec::r5d_xlarge(8)).unwrap();
    let query = q3_inf().with_parallelism(&[1, 1, 1, 1, 1]).unwrap();
    let schedule = RateSchedule::Steps(vec![(0.0, 900.0), (200.0, 1800.0)]);
    let strategy = CapsStrategy::default();
    let loop_ = ClosedLoop::new(
        &query,
        &cluster,
        &strategy,
        Ds2Config {
            activation_period: 30.0,
            policy_interval: 5.0,
            ..Ds2Config::default()
        },
        SimConfig {
            duration: 1.0,
            warmup: 0.0,
            ..SimConfig::default()
        },
        schedule,
        5,
    )
    .unwrap();
    let trace = loop_.run(400.0).unwrap();
    assert!(
        trace.num_scalings() >= 2,
        "must scale for the ramp and the step"
    );
    // Both phases tracked in their second halves.
    let early = trace.avg_throughput(120.0, 200.0);
    assert!(early >= 0.9 * 900.0, "phase 1 throughput {early:.0}");
    let late = trace.avg_throughput(320.0, 400.0);
    assert!(late >= 0.9 * 1800.0, "phase 2 throughput {late:.0}");
    // No runaway over-provisioning: inference needs ~5 tasks at 1800.
    let final_tasks: usize = trace.final_parallelism.iter().sum();
    assert!(
        final_tasks <= 16,
        "over-provisioned: {:?}",
        trace.final_parallelism
    );
}
