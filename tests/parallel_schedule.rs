//! Schedule-independence properties of the work-stealing parallel search.
//!
//! The parallel runtime (crates/core/src/parallel.rs) splits subtrees
//! adaptively and merges per-thread results under a total order, so the
//! *set* of feasible plans and every search statistic that is a function
//! of the explored space must be identical across thread counts and
//! steal schedules. These tests drive that invariant over random
//! problems on the in-repo property harness (replay failures with
//! `CAPSYS_PROP_SEED=<seed> cargo test <name>`).

use std::collections::HashMap;

use capsys::caps::{CapsSearch, SearchConfig, Thresholds};
use capsys::model::{
    count_plans, Cluster, ConnectionPattern, LoadModel, LogicalGraph, OperatorId, OperatorKind,
    PhysicalGraph, ResourceProfile, WorkerSpec,
};
use capsys_util::forall;
use capsys_util::prop::{floats, ints, vec_of, Config, FloatStrategy, IntStrategy, VecStrategy};

/// Per-operator profile draw: (parallelism, cpu/rec, state B/rec,
/// out B/rec, selectivity).
type OpDraw = (usize, f64, f64, f64, f64);

fn arb_ops() -> VecStrategy<(
    IntStrategy<usize>,
    FloatStrategy,
    FloatStrategy,
    FloatStrategy,
    FloatStrategy,
)> {
    vec_of(
        (
            ints(1usize..=4),
            floats(1e-5..2e-3),
            floats(0.0..5000.0),
            floats(1.0..1000.0),
            floats(0.1..1.5),
        ),
        2..=4,
    )
}

fn build_problem(ops: &[OpDraw], workers: usize, extra_slots: usize) -> (LogicalGraph, Cluster) {
    let n = ops.len();
    let mut b = LogicalGraph::builder("sched");
    let mut prev = None;
    for (i, &(par, cpu, io, out, sel)) in ops.iter().enumerate() {
        let kind = if i == 0 {
            OperatorKind::Source
        } else if i + 1 == n {
            OperatorKind::Sink
        } else {
            OperatorKind::Stateless
        };
        let sel = if i + 1 == n { 1.0 } else { sel };
        let id = b.operator(
            format!("op{i}"),
            kind,
            par,
            ResourceProfile::new(cpu, io, out, sel),
        );
        if let Some(p) = prev {
            b.edge(p, id, ConnectionPattern::Hash);
        }
        prev = Some(id);
    }
    let g = b.build().expect("valid linear graph");
    let total = g.total_tasks();
    let slots = total.div_ceil(workers) + extra_slots;
    let cluster = Cluster::homogeneous(workers, WorkerSpec::new(slots, 2.0, 1e8, 1e9))
        .expect("valid cluster");
    (g, cluster)
}

fn loads_for(g: &LogicalGraph, physical: &PhysicalGraph, rate: f64) -> LoadModel {
    let rates: HashMap<OperatorId, f64> = g.sources().into_iter().map(|s| (s, rate)).collect();
    LoadModel::derive(g, physical, &rates).expect("load model")
}

/// Canonical fingerprint of an outcome: the sorted multiset of plan
/// assignments. Sequential search reports plans in DFS order while the
/// parallel merge orders them by cost; the *set* is the invariant.
fn plan_set(out: &capsys::caps::SearchOutcome) -> Vec<Vec<usize>> {
    let mut set: Vec<Vec<usize>> = out
        .feasible
        .iter()
        .map(|s| s.plan.assignment().iter().map(|w| w.0).collect())
        .collect();
    set.sort();
    set
}

fn cases() -> Config {
    Config::default().cases(16)
}

#[test]
fn plan_set_identical_across_thread_counts_and_runs() {
    forall!(cases(), (
        ops in arb_ops(),
        workers in ints(2usize..=4),
        extra_slots in ints(2usize..=6),
    ) => {
        let (g, cluster) = build_problem(ops, *workers, *extra_slots);
        let physical = PhysicalGraph::expand(&g);
        let loads = loads_for(&g, &physical, 1000.0);
        let search = CapsSearch::new(&g, &physical, &cluster, &loads).expect("search");
        let th = Thresholds::new(0.6, 0.7, 1.0);
        let run = |threads: usize| {
            search
                .run(&SearchConfig {
                    threads,
                    max_plans: 1 << 20,
                    ..SearchConfig::with_thresholds(th)
                })
                .expect("search runs")
        };
        let base = run(1);
        let base_set = plan_set(&base);
        for threads in [2usize, 4, 8] {
            let out = run(threads);
            assert_eq!(
                out.stats.plans_found, base.stats.plans_found,
                "plans_found diverged at {threads} threads"
            );
            assert_eq!(
                plan_set(&out),
                base_set,
                "plan set diverged at {threads} threads"
            );
        }
        // Repeated runs at the same thread count take different steal
        // schedules (OS timing); the outcome must not notice.
        let again = run(4);
        assert_eq!(plan_set(&again), base_set, "plan set varied across runs");
        assert_eq!(again.stats.plans_found, base.stats.plans_found);
    });
}

#[test]
fn capped_store_identical_across_thread_counts() {
    // With a small `max_plans` cap the store truncates under the
    // cost-then-assignment total order; the surviving set must still be
    // a pure function of the explored space, not of the merge order.
    forall!(cases(), (
        ops in arb_ops(),
        workers in ints(2usize..=4),
        extra_slots in ints(2usize..=6),
    ) => {
        let (g, cluster) = build_problem(ops, *workers, *extra_slots);
        let physical = PhysicalGraph::expand(&g);
        let loads = loads_for(&g, &physical, 1000.0);
        let search = CapsSearch::new(&g, &physical, &cluster, &loads).expect("search");
        let run = |threads: usize| {
            search
                .run(&SearchConfig {
                    threads,
                    max_plans: 12,
                    ..SearchConfig::exhaustive()
                })
                .expect("search runs")
        };
        let base = run(1);
        let base_set = plan_set(&base);
        for threads in [2usize, 4, 8] {
            let out = run(threads);
            assert_eq!(out.stats.plans_found, base.stats.plans_found);
            assert_eq!(
                plan_set(&out),
                base_set,
                "capped store diverged at {threads} threads"
            );
        }
    });
}

#[test]
fn incumbent_prune_survivors_identical_across_thread_counts() {
    forall!(cases(), (
        ops in arb_ops(),
        workers in ints(2usize..=4),
        extra_slots in ints(2usize..=6),
    ) => {
        let (g, cluster) = build_problem(ops, *workers, *extra_slots);
        let physical = PhysicalGraph::expand(&g);
        let loads = loads_for(&g, &physical, 1000.0);
        let search = CapsSearch::new(&g, &physical, &cluster, &loads).expect("search");
        let run = |threads: usize| {
            search
                .run(
                    &SearchConfig {
                        threads,
                        max_plans: 1 << 20,
                        ..SearchConfig::exhaustive()
                    }
                    .incumbent_pruned(),
                )
                .expect("search runs")
        };
        let base_set = plan_set(&run(1));
        assert!(!base_set.is_empty(), "some plan always exists");
        for threads in [2usize, 4, 8] {
            assert_eq!(
                plan_set(&run(threads)),
                base_set,
                "incumbent-pruned survivors diverged at {threads} threads"
            );
        }
    });
}

#[test]
fn memo_on_and_off_agree_across_seeds_and_thread_counts() {
    // The dead-state memo may only skip subtrees that contain no
    // feasible leaf, so switching it off must change *nothing* about
    // the outcome: same plans_found, same stored plan set, same best
    // cost — at every thread count, on every generated problem.
    forall!(cases(), (
        ops in arb_ops(),
        workers in ints(2usize..=4),
        extra_slots in ints(2usize..=6),
    ) => {
        let (g, cluster) = build_problem(ops, *workers, *extra_slots);
        let physical = PhysicalGraph::expand(&g);
        let loads = loads_for(&g, &physical, 1000.0);
        let search = CapsSearch::new(&g, &physical, &cluster, &loads).expect("search");
        // Tight thresholds so dead subtrees actually exist.
        let th = Thresholds::new(0.5, 0.6, 0.9);
        let run = |threads: usize, memo: bool| {
            let config = SearchConfig {
                threads,
                max_plans: 64,
                ..SearchConfig::with_thresholds(th)
            };
            let config = if memo { config } else { config.without_memo() };
            search.run(&config).expect("search runs")
        };
        for threads in [1usize, 2, 4] {
            let on = run(threads, true);
            let off = run(threads, false);
            assert_eq!(
                on.stats.plans_found, off.stats.plans_found,
                "memo changed plans_found at {threads} threads"
            );
            assert_eq!(
                plan_set(&on),
                plan_set(&off),
                "memo changed the stored plan set at {threads} threads"
            );
            match (on.best_scored(), off.best_scored()) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.plan, b.plan, "memo changed the best plan");
                    for (x, y) in [
                        (a.cost.cpu, b.cost.cpu),
                        (a.cost.io, b.cost.io),
                        (a.cost.net, b.cost.net),
                    ] {
                        assert_eq!(x.to_bits(), y.to_bits(), "memo changed the best cost");
                    }
                }
                _ => panic!("memo changed best-plan existence at {threads} threads"),
            }
            assert_eq!(off.stats.memo_hits, 0, "memo-off run reported hits");
            if threads == 1 {
                // Sequential node counts are deterministic; the memo can
                // only remove work, never add it.
                assert!(
                    on.stats.nodes <= off.stats.nodes,
                    "memo increased sequential node count"
                );
            }
        }
    });
}

#[test]
fn memo_fires_on_symmetric_topology_without_changing_outcome() {
    // A chain of identical operators is where cross-layer
    // transpositions actually occur: equal exact loads make states
    // reached through different prefixes coincide. The memo must fire
    // (nonzero hits sequentially) and still be invisible in the result
    // at every thread count.
    let mut b = LogicalGraph::builder("sym");
    let profile = ResourceProfile::new(0.001, 0.0, 100.0, 1.0);
    let src = b.operator("src", OperatorKind::Source, 2, profile);
    let mut prev = src;
    for i in 1..=6 {
        let op = b.operator(
            format!("map{i}"),
            OperatorKind::Stateless,
            2,
            profile,
        );
        b.edge(prev, op, ConnectionPattern::Hash);
        prev = op;
    }
    let sink = b.operator("sink", OperatorKind::Sink, 2, profile);
    b.edge(prev, sink, ConnectionPattern::Hash);
    let g = b.build().expect("graph");
    let physical = PhysicalGraph::expand(&g);
    let cluster = Cluster::homogeneous(2, WorkerSpec::r5d_xlarge(8)).expect("cluster");
    let loads = loads_for(&g, &physical, 1000.0);
    let search = CapsSearch::new(&g, &physical, &cluster, &loads).expect("search");
    let th = Thresholds::new(f64::INFINITY, f64::INFINITY, 0.4);
    let run = |threads: usize, memo: bool| {
        let config = SearchConfig {
            threads,
            max_plans: 64,
            ..SearchConfig::with_thresholds(th)
        };
        let config = if memo { config } else { config.without_memo() };
        search.run(&config).expect("search runs")
    };
    let seq_on = run(1, true);
    let seq_off = run(1, false);
    assert!(
        seq_on.stats.memo_hits > 0,
        "memo never fired on a symmetric chain"
    );
    assert!(
        seq_on.stats.nodes < seq_off.stats.nodes,
        "memo hits must shrink the sequential tree"
    );
    assert_eq!(seq_on.stats.plans_found, seq_off.stats.plans_found);
    assert_eq!(plan_set(&seq_on), plan_set(&seq_off));
    for threads in [2usize, 4] {
        let on = run(threads, true);
        let off = run(threads, false);
        assert_eq!(on.stats.plans_found, seq_on.stats.plans_found);
        assert_eq!(plan_set(&on), plan_set(&seq_on), "memo-on diverged at {threads} threads");
        assert_eq!(plan_set(&off), plan_set(&seq_on), "memo-off diverged at {threads} threads");
    }
}

#[test]
fn starved_single_prefix_is_resplit_across_threads() {
    // A source with parallelism 1 yields exactly one depth-1 prefix, so
    // the whole tree lands on one seed unit: without adaptive
    // re-splitting every other thread would starve. The search must
    // still visit the full space and agree with the sequential count.
    let mut b = LogicalGraph::builder("starve");
    let src = b.operator(
        "src",
        OperatorKind::Source,
        1,
        ResourceProfile::new(1e-4, 0.0, 100.0, 1.0),
    );
    let mid = b.operator(
        "wide",
        OperatorKind::Stateless,
        6,
        ResourceProfile::new(5e-4, 1000.0, 100.0, 1.0),
    );
    let sink = b.operator(
        "sink",
        OperatorKind::Sink,
        2,
        ResourceProfile::new(1e-4, 0.0, 10.0, 1.0),
    );
    b.edge(src, mid, ConnectionPattern::Hash);
    b.edge(mid, sink, ConnectionPattern::Hash);
    let g = b.build().expect("graph");
    let physical = PhysicalGraph::expand(&g);
    let cluster = Cluster::homogeneous(4, WorkerSpec::new(4, 2.0, 1e8, 1e9)).expect("cluster");
    let loads = loads_for(&g, &physical, 1000.0);
    let search = CapsSearch::new(&g, &physical, &cluster, &loads).expect("search");

    let config = |threads: usize| SearchConfig {
        threads,
        max_plans: 1 << 20,
        // Keep the operator order fixed so the source (parallelism 1)
        // stays the outermost layer and really produces a single prefix.
        reorder: false,
        ..SearchConfig::exhaustive()
    };
    let seq = search.run(&config(1)).expect("sequential");
    let total = count_plans(&physical, &cluster).expect("count");
    assert_eq!(seq.stats.plans_found, total);
    for threads in [4usize, 8] {
        let par = search.run(&config(threads)).expect("parallel");
        assert_eq!(
            par.stats.plans_found, total,
            "starved schedule lost plans at {threads} threads"
        );
        assert_eq!(plan_set(&par), plan_set(&seq));
    }
}
